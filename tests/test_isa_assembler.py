"""Unit tests for the Intel-syntax assembler/parser."""

import pytest

from repro.isa.assembler import (
    parse_instruction,
    parse_program,
    render_program,
)
from repro.isa.operands import (
    ImmediateOperand,
    LabelOperand,
    MemoryOperand,
    RegisterOperand,
)

# the paper's Figure 3, verbatim (modulo the CMOVNBE alias)
FIGURE3 = """
OR RAX, 468722461
AND RAX, 0b111111000000
LOCK SUB byte ptr [R14 + RAX], 35
JNS .bb1
JMP .bb2
.bb1: AND RCX, 0b111111000000
REX SUB byte ptr [R14 + RCX], AL
CMOVNBE EBX, EBX
OR DX, 30415
JMP .bb2
.bb2: AND RBX, 1276527841
AND RDX, 0b111111000000
CMOVBE RCX, qword ptr [R14 + RDX]
CMP BX, AX
"""


class TestParseInstruction:
    def test_reg_imm(self):
        instr = parse_instruction("OR RAX, 468722461")
        assert instr.mnemonic == "OR"
        assert instr.operands == (RegisterOperand("RAX"), ImmediateOperand(468722461))

    def test_binary_immediate(self):
        instr = parse_instruction("AND RAX, 0b111111000000")
        assert instr.operands[1] == ImmediateOperand(0xFC0)

    def test_hex_immediate(self):
        instr = parse_instruction("MOV RBX, 0xFF")
        assert instr.operands[1] == ImmediateOperand(255)

    def test_negative_immediate(self):
        instr = parse_instruction("CMP RAX, -5")
        assert instr.operands[1] == ImmediateOperand(-5)

    def test_lock_prefix(self):
        instr = parse_instruction("LOCK SUB byte ptr [R14 + RAX], 35")
        assert instr.lock
        assert instr.operands[0] == MemoryOperand("R14", "RAX", 0, 8)

    def test_rex_prefix_ignored(self):
        instr = parse_instruction("REX SUB byte ptr [R14 + RCX], AL")
        assert not instr.lock
        assert instr.mnemonic == "SUB"

    def test_memory_displacement(self):
        instr = parse_instruction("MOV RAX, qword ptr [R14 + RBX + 64]")
        assert instr.operands[1] == MemoryOperand("R14", "RBX", 64, 64)

    def test_memory_negative_displacement(self):
        instr = parse_instruction("MOV RAX, qword ptr [R14 - 8]")
        assert instr.operands[1] == MemoryOperand("R14", None, -8, 64)

    def test_label_operand(self):
        instr = parse_instruction("JNS .bb1")
        assert instr.operands == (LabelOperand("bb1"),)

    def test_condition_alias(self):
        instr = parse_instruction("CMOVNBE EBX, EBX")
        assert instr.mnemonic == "CMOVA"  # canonicalized alias

    def test_lea(self):
        instr = parse_instruction("LEA RAX, [R14 + RBX + 4]")
        assert instr.mnemonic == "LEA"

    def test_unknown_operand(self):
        with pytest.raises(ValueError):
            parse_instruction("MOV RAX, garbage!!")


class TestParseProgram:
    def test_figure3_roundtrip(self):
        program = parse_program(FIGURE3)
        program.validate_dag()
        assert program.num_instructions == 14
        assert [b.name for b in program.blocks] == ["entry", "bb1", "bb2"]
        # rendering and re-parsing is a fixpoint
        text = render_program(program)
        reparsed = parse_program(text)
        assert render_program(reparsed) == text

    def test_comments_ignored(self):
        program = parse_program(
            """
            # a comment line
            MOV RAX, 1  ; trailing comment
            NOP          # another
            """
        )
        assert program.num_instructions == 2

    def test_label_with_inline_instruction(self):
        program = parse_program(".bb1: NOP")
        assert program.blocks[0].name == "bb1"
        assert program.num_instructions == 1

    def test_terminators_split(self):
        program = parse_program(
            """
            JNS .end
            NOP
        .end: NOP
            """
        )
        # the NOP after the branch lands in an implicit fallthrough block
        assert len(program.blocks) == 3
        assert program.blocks[0].terminators[0].mnemonic == "JNS"

    def test_call_stays_in_body(self):
        program = parse_program(
            """
            CALL .func
            NOP
        .func: RET
            """
        )
        entry = program.blocks[0]
        assert [i.mnemonic for i in entry.body] == ["CALL", "NOP"]


class TestRenderProgram:
    def test_numbered_rendering(self):
        program = parse_program("MOV RAX, 1\nNOP")
        text = render_program(program, numbered=True)
        lines = text.splitlines()
        assert lines[0].strip().startswith("1 ")
        assert len(lines) == 2

    def test_binary_mask_rendered_as_decimal(self):
        program = parse_program("AND RAX, 0b111111000000")
        assert "4032" in render_program(program)
