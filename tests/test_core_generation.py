"""Tests for test-case generation (§5.1) and input generation (§5.2)."""

import pytest

from repro.isa.instruction_set import instruction_subset
from repro.emulator.machine import Emulator
from repro.emulator.state import SandboxLayout
from repro.core.config import GeneratorConfig
from repro.core.generator import TestCaseGenerator
from repro.core.input_gen import InputGenerator


@pytest.fixture
def layout():
    return SandboxLayout()


def generate_programs(subsets, count=10, seed=0, config=None, layout=None):
    generator = TestCaseGenerator(
        instruction_subset(subsets), config, layout, seed=seed
    )
    return [generator.generate() for _ in range(count)]


class TestGeneratorStructure:
    def test_programs_are_dags(self, layout):
        for program in generate_programs(["AR", "MEM", "CB"], layout=layout):
            program.validate_dag()

    def test_block_count_respected(self, layout):
        config = GeneratorConfig(basic_blocks=4)
        for program in generate_programs(
            ["AR", "CB"], config=config, layout=layout
        ):
            assert len(program.blocks) == 4

    def test_instruction_budget(self, layout):
        config = GeneratorConfig(instructions_per_test=10, memory_accesses=0)
        for program in generate_programs(
            ["AR"], config=config, layout=layout
        ):
            body = sum(len(block.body) for block in program.blocks)
            assert body == 10  # no instrumentation without memory/div

    def test_memory_quota(self, layout):
        config = GeneratorConfig(instructions_per_test=8, memory_accesses=3)
        for program in generate_programs(
            ["AR", "MEM"], config=config, layout=layout, count=20
        ):
            memory_ops = sum(
                1
                for instruction in program.all_instructions()
                if instruction.is_load or instruction.is_store
            )
            assert memory_ops == 3

    def test_register_pool_respected(self, layout):
        pool = {"RAX", "RBX", "RCX", "RDX", "R14", "RSP"}  # + fixed regs
        for program in generate_programs(["AR", "MEM", "CB"], layout=layout):
            for instruction in program.all_instructions():
                used = set(instruction.registers_read()) | set(
                    instruction.registers_written()
                )
                assert used <= pool, str(instruction)

    def test_no_control_flow_without_cb(self, layout):
        for program in generate_programs(["AR", "MEM"], layout=layout):
            assert not any(
                instruction.is_control_flow
                for instruction in program.all_instructions()
            )

    def test_deterministic_per_seed(self, layout):
        from repro.isa.assembler import render_program

        first = generate_programs(["AR", "MEM", "CB"], seed=5, layout=layout)
        second = generate_programs(["AR", "MEM", "CB"], seed=5, layout=layout)
        assert [render_program(p) for p in first] == [
            render_program(p) for p in second
        ]


class TestInstrumentation:
    def test_memory_operands_masked(self, layout):
        """Every memory operand's index register is AND-masked right
        before the access (the paper's sandboxing instrumentation)."""
        for program in generate_programs(["AR", "MEM"], layout=layout, count=20):
            for block in program.blocks:
                for position, instruction in enumerate(block.body):
                    for operand, _, _ in instruction.memory_accesses():
                        if operand.index is None:
                            continue
                        preceding = [str(i) for i in block.body[:position]]
                        assert any(
                            text.startswith(f"AND {operand.index},")
                            for text in preceding
                        ), f"unmasked access: {instruction}"

    def test_generated_programs_never_fault(self, layout):
        """Instrumentation guarantees fault-free execution (§5.1 step 4)."""
        input_gen = InputGenerator(seed=1, layout=layout)
        programs = generate_programs(
            ["AR", "MEM", "VAR", "CB"], count=30, seed=7, layout=layout
        )
        for program in programs:
            emulator = Emulator(program, layout)
            for input_data in input_gen.generate(5):
                emulator.run(input_data)  # must not raise

    def test_accesses_stay_in_sandbox(self, layout):
        input_gen = InputGenerator(seed=2, layout=layout)
        for program in generate_programs(
            ["AR", "MEM"], count=15, seed=3, layout=layout
        ):
            emulator = Emulator(program, layout)
            for input_data in input_gen.generate(3):
                for result in emulator.run(input_data):
                    for access in result.mem_accesses:
                        assert layout.contains(access.address, access.size)

    def test_division_guards_present(self, layout):
        programs = generate_programs(
            ["AR", "VAR"],
            count=30,
            seed=1,
            config=GeneratorConfig(instructions_per_test=6),
            layout=layout,
        )
        divisions = 0
        for program in programs:
            instructions = list(program.all_instructions())
            for position, instruction in enumerate(instructions):
                if instruction.mnemonic in ("DIV", "IDIV"):
                    divisions += 1
                    preceding = [str(i) for i in instructions[:position]]
                    assert "MOV RDX, 0" in preceding
        assert divisions > 0, "no divisions sampled; increase count"

    def test_two_page_sandbox_mask(self, layout):
        config = GeneratorConfig(sandbox_pages=2)
        generator = TestCaseGenerator(
            instruction_subset(["AR", "MEM"]), config, layout, seed=0
        )
        assert generator._address_mask() == 2 * 4096 - 64

    def test_offset_keeps_accesses_inside(self, layout):
        config = GeneratorConfig(sandbox_pages=2, randomize_offset=True)
        generator = TestCaseGenerator(
            instruction_subset(["AR", "MEM"]), config, layout, seed=0
        )
        input_gen = InputGenerator(seed=2, entropy_bits=32, layout=layout)
        for _ in range(10):
            program = generator.generate()
            emulator = Emulator(program, layout)
            for input_data in input_gen.generate(2):
                emulator.run(input_data)  # no SandboxViolation

    def test_grown_config(self):
        config = GeneratorConfig(instructions_per_test=10, basic_blocks=2,
                                 memory_accesses=2)
        grown = config.grown()
        assert grown.instructions_per_test == 15
        assert grown.basic_blocks == 3
        assert grown.memory_accesses == 3


class TestInputGenerator:
    def test_entropy_masking(self, layout):
        generator = InputGenerator(seed=0, entropy_bits=2, layout=layout)
        for input_data in generator.generate(20):
            for value in input_data.registers.values():
                assert value % 64 == 0
                assert value < 4 << 6

    def test_memory_filled(self, layout):
        generator = InputGenerator(seed=0, entropy_bits=2, layout=layout)
        input_data = generator.generate_one()
        assert len(input_data.memory) == layout.size
        words = {
            int.from_bytes(input_data.memory[i : i + 8], "little")
            for i in range(0, 64, 8)
        }
        assert words <= {0, 64, 128, 192}

    def test_deterministic_per_seed(self, layout):
        a = InputGenerator(seed=3, layout=layout).generate(5)
        b = InputGenerator(seed=3, layout=layout).generate(5)
        assert [x.fingerprint() for x in a] == [x.fingerprint() for x in b]

    def test_explicit_input_seed(self, layout):
        generator = InputGenerator(seed=0, layout=layout)
        a = generator.generate_one(input_seed=77)
        b = generator.generate_one(input_seed=77)
        assert a.fingerprint() == b.fingerprint()

    def test_higher_entropy_more_values(self, layout):
        low = InputGenerator(seed=0, entropy_bits=1, layout=layout)
        high = InputGenerator(seed=0, entropy_bits=16, layout=layout)
        low_values = {v for i in low.generate(30) for v in i.registers.values()}
        high_values = {v for i in high.generate(30) for v in i.registers.values()}
        assert len(high_values) > len(low_values)

    def test_entropy_bounds_validated(self, layout):
        with pytest.raises(ValueError):
            InputGenerator(entropy_bits=0, layout=layout)
        with pytest.raises(ValueError):
            InputGenerator(entropy_bits=64, layout=layout)

    def test_default_layout_not_shared(self):
        """Regression: the default SandboxLayout must be built per
        generator (a dataclass default would be one class-level
        instance shared by every generator)."""
        assert InputGenerator().layout is not InputGenerator().layout

    def test_flags_randomized(self, layout):
        generator = InputGenerator(seed=0, layout=layout)
        flags = {
            flag: {input_data.flags[flag] for input_data in generator.generate(30)}
            for flag in ("SF", "ZF", "CF")
        }
        for flag, values in flags.items():
            assert values == {True, False}, flag

    def test_effectiveness_improves_with_lower_entropy(self, layout):
        """The paper's CH2 trade-off: less entropy, more trace collisions."""
        from repro.contracts import get_contract
        from repro.core.analyzer import RelationalAnalyzer
        from repro.isa.assembler import parse_program

        program = parse_program(
            "AND RBX, 0b111111000000\nMOV RAX, qword ptr [R14 + RBX]"
        )
        contract = get_contract("CT-SEQ")
        analyzer = RelationalAnalyzer()
        scores = {}
        for bits in (1, 10):
            generator = InputGenerator(seed=5, entropy_bits=bits, layout=layout)
            inputs = generator.generate(20)
            ctraces = [
                contract.collect_trace(program, input_data, layout)
                for input_data in inputs
            ]
            classes, singles = analyzer.build_classes(ctraces)
            scores[bits] = sum(c.size for c in classes) / 20
        assert scores[1] >= scores[10]
