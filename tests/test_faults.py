"""Chaos suite: deterministic fault injection and the resilience it
exercises.

The invariant under test everywhere: injected infrastructure faults
(torn cache entries, failed checkpoint publishes, killed workers,
dropped connections) degrade gracefully — counted, retried, requeued —
and never change what a campaign *reports*. Report digests under a
fault plan must be byte-identical to fault-free runs.
"""

import multiprocessing
import os
import threading
import time

import pytest

from repro import api, faults
from repro.core.campaign import merge_reports
from repro.core.fuzzer import FuzzingReport
from repro.core.journal import CampaignJournal
from repro.core.patterns import PatternCoverage
from repro.core.trace_cache import PersistentTraceCache
from repro.service import (
    CampaignService,
    ConnectionLost,
    JobSpec,
    ServiceBusy,
    ServiceClient,
    ServiceServer,
    ServiceState,
)

KEY = ("fp", None, "digest", ("CT-SEQ", 250, 1))


def quick_options(**overrides):
    values = dict(
        subsets="AR",
        contract="CT-SEQ",
        cpu="skylake-v4-patched",
        num_test_cases=6,
        inputs_per_test_case=8,
        seed=3,
    )
    values.update(overrides)
    return api.EngineOptions(**values)


def plan(spec, seed=0, token_dir=None):
    return faults.FaultPlan.parse(spec, seed=seed, token_dir=token_dir)


# -- the fault plan itself ---------------------------------------------


class TestFaultPlan:
    def test_parse_round_trip(self):
        p = plan("trace_cache.torn=0.5,journal.publish=0.25:3")
        assert p.rules["trace_cache.torn"].rate == 0.5
        assert p.rules["journal.publish"].count == 3
        assert faults.FaultPlan.parse(p.to_spec()).to_spec() == p.to_spec()

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            plan("flux.capacitor=1")

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            plan("sweep.unit=1.5")

    def test_decisions_are_a_pure_function_of_the_seed(self):
        first = plan("journal.publish=0.5", seed=42)
        pattern_a = [first.should_fire("journal.publish") for _ in range(64)]
        second = plan("journal.publish=0.5", seed=42)
        pattern_b = [second.should_fire("journal.publish") for _ in range(64)]
        assert pattern_a == pattern_b
        assert any(pattern_a) and not all(pattern_a)
        different = plan("journal.publish=0.5", seed=43)
        assert pattern_a != [
            different.should_fire("journal.publish") for _ in range(64)
        ]

    def test_rate_one_always_fires_and_count_caps_it(self):
        p = plan("trace_cache.write=1:2")
        fired = [p.should_fire("trace_cache.write") for _ in range(5)]
        assert fired == [True, True, False, False, False]
        assert p.fired("trace_cache.write") == 2

    def test_token_dir_makes_the_budget_cross_plan(self, tmp_path):
        first = plan("sweep.unit=1:1", token_dir=str(tmp_path))
        second = plan("sweep.unit=1:1", token_dir=str(tmp_path))
        assert first.should_fire("sweep.unit")
        # the sibling (another process in real runs) finds the token
        # already claimed and must not fire
        assert not second.should_fire("sweep.unit")
        tokens = [
            name for name in os.listdir(tmp_path)
            if name.endswith(".token")
        ]
        assert len(tokens) == 1

    def test_hooks_are_noops_without_a_plan(self):
        assert faults.active_plan() is None
        assert not faults.should_fire("trace_cache.write")
        faults.inject_oserror("journal.publish")  # must not raise
        assert faults.corrupt("trace_cache.torn", b"intact") == b"intact"

    def test_env_activation(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_SPEC, "trace_cache.read=1")
        monkeypatch.setenv(faults.ENV_SEED, "9")
        active = faults.active_plan()
        assert active is not None
        assert active.seed == 9
        assert active.should_fire("trace_cache.read")
        monkeypatch.delenv(faults.ENV_SPEC)
        assert faults.active_plan() is None

    def test_injected_context_manager_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_SPEC, "trace_cache.read=1")
        with faults.injected(plan("journal.publish=1")) as installed:
            assert faults.active_plan() is installed
            assert not faults.should_fire("trace_cache.read")
        assert faults.active_plan() is not installed


class TestRetryPolicy:
    def test_delay_is_capped_jittered_and_deterministic(self):
        policy = faults.RetryPolicy(
            attempts=5, base_delay=0.1, max_delay=0.4, jitter=0.5, seed=1
        )
        delays = [policy.delay(n) for n in range(5)]
        raw = [0.1, 0.2, 0.4, 0.4, 0.4]
        for measured, ceiling in zip(delays, raw):
            assert ceiling / 2 <= measured <= ceiling
        assert delays == [policy.delay(n) for n in range(5)]

    def test_call_retries_then_succeeds(self):
        sleeps = []
        policy = faults.RetryPolicy(
            attempts=3, base_delay=0.01, sleep=sleeps.append
        )
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "ok"

        assert policy.call(flaky) == "ok"
        assert len(attempts) == 3
        assert len(sleeps) == 2

    def test_call_reraises_after_the_budget(self):
        policy = faults.RetryPolicy(
            attempts=2, base_delay=0.01, sleep=lambda _s: None
        )
        with pytest.raises(OSError, match="always"):
            policy.call(lambda: (_ for _ in ()).throw(OSError("always")))


# -- graceful degradation at each seam ---------------------------------


class TestTraceCacheFaults:
    def test_write_faults_are_counted_not_fatal(self, tmp_path):
        cache = PersistentTraceCache(str(tmp_path))
        with faults.injected(plan("trace_cache.write=1")):
            cache.put(KEY, ("trace", "log"))
        assert cache.stats.disk_write_errors == 1
        assert cache.stats.disk_writes == 0
        # the memory tier still serves the entry
        assert cache.get(KEY) == ("trace", "log")

    def test_consecutive_failures_degrade_the_disk_tier(self, tmp_path):
        cache = PersistentTraceCache(str(tmp_path))
        with faults.injected(plan("trace_cache.write=1")):
            for index in range(PersistentTraceCache.DEGRADE_AFTER + 3):
                cache.put((f"fp{index}", None, "d", ("CT-SEQ", 250, 1)),
                          ("trace", "log"))
        assert cache.disk_degraded
        # degraded: later puts stop touching the disk, so the error
        # count freezes at the threshold
        assert (
            cache.stats.disk_write_errors
            == PersistentTraceCache.DEGRADE_AFTER
        )

    def test_the_write_retry_absorbs_a_transient_fault(self, tmp_path):
        cache = PersistentTraceCache(str(tmp_path))
        with faults.injected(plan("trace_cache.write=1:1")):
            cache.put(KEY, ("trace", "log"))
        # the single injected failure was retried away: no error counted
        assert cache.stats.disk_write_errors == 0
        assert cache.stats.disk_writes == 1
        assert not cache.disk_degraded

    def test_a_successful_write_resets_the_degrade_counter(self, tmp_path):
        no_retry = faults.RetryPolicy(attempts=1, base_delay=0.01)
        cache = PersistentTraceCache(str(tmp_path), write_retry=no_retry)
        with faults.injected(plan("trace_cache.write=1:1")):
            cache.put(("a", None, "d", ("CT-SEQ", 250, 1)), ("t", "l"))
            cache.put(("b", None, "d", ("CT-SEQ", 250, 1)), ("t", "l"))
        assert cache.stats.disk_write_errors == 1
        assert cache.stats.disk_writes == 1
        assert not cache.disk_degraded
        assert cache._consecutive_write_failures == 0

    def test_torn_entries_degrade_to_misses(self, tmp_path):
        writer = PersistentTraceCache(str(tmp_path))
        with faults.injected(plan("trace_cache.torn=1")):
            writer.put(KEY, ("trace", "log"))
        assert writer.stats.disk_writes == 1  # the torn write "succeeded"
        reader = PersistentTraceCache(str(tmp_path))
        assert reader.get(KEY) is None
        assert reader.stats.misses == 1

    def test_read_faults_degrade_to_misses(self, tmp_path):
        PersistentTraceCache(str(tmp_path)).put(KEY, ("trace", "log"))
        reader = PersistentTraceCache(str(tmp_path))
        with faults.injected(plan("trace_cache.read=1")):
            assert reader.get(KEY) is None
        assert reader.get(KEY) == ("trace", "log")  # entry was intact

    def test_gc_faults_skip_the_pass(self, tmp_path):
        cache = PersistentTraceCache(str(tmp_path), max_bytes=1)
        cache.put(KEY, ("trace", "log"))
        with faults.injected(plan("trace_cache.gc=1")):
            assert cache.gc() == (0, 0)
        assert cache.stats.disk_write_errors >= 1

    def test_write_errors_surface_in_the_fuzzing_report(self, tmp_path):
        options = quick_options(cache=True, cache_dir=str(tmp_path))
        with faults.injected(plan("trace_cache.write=1")):
            faulty = api.run_fuzz(options)
        assert faulty.trace_cache_disk_write_errors > 0
        clean = api.run_fuzz(
            quick_options(cache=True, cache_dir=str(tmp_path / "clean"))
        )
        assert clean.trace_cache_disk_write_errors == 0
        # degradation is invisible to the outcome
        assert faulty.found == clean.found
        assert faulty.test_cases == clean.test_cases
        assert faulty.inputs_tested == clean.inputs_tested

    def test_merge_sums_disk_write_errors(self):
        left = FuzzingReport(coverage=PatternCoverage())
        left.trace_cache_disk_write_errors = 2
        right = FuzzingReport(coverage=PatternCoverage())
        right.trace_cache_disk_write_errors = 3
        merged, _winner = merge_reports([left, right])
        assert merged.trace_cache_disk_write_errors == 5


class TestJournalFaults:
    def test_failed_publish_is_a_skipped_checkpoint(self, tmp_path):
        journal = CampaignJournal(str(tmp_path))
        journal.open({"kind": "test"})
        report = FuzzingReport(coverage=PatternCoverage())
        with faults.injected(plan("journal.publish=1:1")):
            assert journal.record(0, 0, report) is False
            assert journal.record(0, 1, report) is True
        assert journal.publish_errors == 1
        assert set(journal.completed()) == {(0, 1)}


# -- the acceptance gate: chaos run == clean run -----------------------


@pytest.mark.parametrize("arch", ["x86_64", "aarch64"])
def test_chaos_sweep_digest_matches_fault_free_run(
    arch, tmp_path, monkeypatch
):
    """A journaled work-stealing sweep under torn cache entries, a
    failed journal publish, and one killed worker completes with a
    report digest byte-identical to a fault-free run (ISSUE acceptance
    criterion)."""

    def run(faulted: bool):
        label = "faulty" if faulted else "clean"
        root = tmp_path / label
        if faulted:
            monkeypatch.setenv(
                faults.ENV_SPEC,
                "trace_cache.torn=0.5,trace_cache.write=0.25,"
                "journal.publish=1:1,sweep.unit=1:1",
            )
            monkeypatch.setenv(faults.ENV_SEED, "1234")
            monkeypatch.setenv(
                faults.ENV_TOKEN_DIR, str(root / "tokens")
            )
        else:
            monkeypatch.delenv(faults.ENV_SPEC, raising=False)
            monkeypatch.delenv(faults.ENV_TOKEN_DIR, raising=False)
        report = api.run_sweep(
            quick_options(
                arch=arch,
                num_test_cases=8,
                cache=True,
                cache_dir=str(root / "cache"),
            ),
            workers=2,
            shards=4,
            schedule="work-stealing",
            journal_dir=str(root / "journal"),
        )
        return report

    faulty = run(faulted=True)
    # the faults really happened: the worker-kill token was claimed,
    # and the skipped checkpoint left fewer records than units
    assert os.path.exists(
        tmp_path / "faulty" / "tokens" / "sweep.unit-0.token"
    )
    records = [
        name
        for name in os.listdir(tmp_path / "faulty" / "journal")
        if name.startswith("shard-")
    ]
    assert len(records) == 3  # 4 units, exactly one publish injected away
    monkeypatch.delenv(faults.ENV_SEED, raising=False)
    clean = run(faulted=False)
    assert faulty.report_digest() == clean.report_digest()
    assert (
        faulty.results[0].campaign.merged.test_cases
        == clean.results[0].campaign.merged.test_cases
    )


# -- job lifecycle: cancel, deadline, backpressure ---------------------


def _drain(service, job_id):
    events = list(service.results(job_id))
    return events, service.status(job_id)


def _wait_no_children(timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return True
        time.sleep(0.1)
    return False


class TestCancellation:
    def test_cancel_lands_in_the_cancelled_state(self):
        service = CampaignService()
        try:
            job_id = service.submit(
                JobSpec(
                    kind="fuzz",
                    options=quick_options(
                        num_test_cases=100000, inputs_per_test_case=10
                    ),
                )
            )
            stream = service.results(job_id)
            next(stream)  # the job is running
            service.cancel(job_id)
            events = list(stream)
            status = service.status(job_id)
        finally:
            service.shutdown()
        assert status["state"] == "cancelled"
        assert events[-1]["event"] == "done"
        assert events[-1]["state"] == "cancelled"
        # cancel() stays idempotent on the finished job
        assert service.cancel(job_id)["state"] == "cancelled"

    def test_cancelled_campaign_leaves_no_worker_processes(self):
        service = CampaignService()
        try:
            job_id = service.submit(
                JobSpec(
                    kind="campaign",
                    options=quick_options(
                        num_test_cases=100000, inputs_per_test_case=10
                    ),
                    workers=2,
                    shards=2,
                )
            )
            stream = service.results(job_id)
            next(stream)
            service.cancel(job_id)
            list(stream)
            status = service.status(job_id)
        finally:
            service.shutdown()
        assert status["state"] == "cancelled"
        assert _wait_no_children(), "campaign workers were orphaned"

    def test_deadline_expiry_lands_in_the_timeout_state(self):
        service = CampaignService()
        try:
            job_id = service.submit(
                JobSpec(
                    kind="fuzz",
                    options=quick_options(
                        num_test_cases=100000, inputs_per_test_case=10
                    ),
                    deadline_s=0.3,
                )
            )
            events, status = _drain(service, job_id)
        finally:
            service.shutdown()
        assert status["state"] == "timeout"
        assert events[-1]["state"] == "timeout"

    def test_deadline_must_be_positive(self):
        with pytest.raises(ValueError, match="deadline_s"):
            JobSpec(kind="fuzz", deadline_s=0)


class TestBackpressure:
    def test_full_queue_rejects_with_retry_after(self, monkeypatch):
        release = threading.Event()

        def slow_fuzz(options, should_stop=None):
            while not release.is_set():
                if should_stop is not None and should_stop():
                    break
                time.sleep(0.02)
            return FuzzingReport(coverage=PatternCoverage())

        monkeypatch.setattr(api, "run_fuzz", slow_fuzz)
        service = CampaignService(max_parallel_jobs=1, max_queued_jobs=0)
        try:
            first = service.submit(
                JobSpec(kind="fuzz", options=quick_options())
            )
            with pytest.raises(ServiceBusy) as caught:
                service.submit(JobSpec(kind="fuzz", options=quick_options()))
            assert caught.value.retry_after >= 1.0
            release.set()
            _events, status = _drain(service, first)
            assert status["state"] == "done"
            # capacity is back: the next submit is accepted
            second = service.submit(
                JobSpec(kind="fuzz", options=quick_options())
            )
            _drain(service, second)
        finally:
            release.set()
            service.shutdown()

    def test_busy_travels_over_the_wire(self, monkeypatch):
        release = threading.Event()

        def slow_fuzz(options, should_stop=None):
            while not release.is_set():
                if should_stop is not None and should_stop():
                    break
                time.sleep(0.02)
            return FuzzingReport(coverage=PatternCoverage())

        monkeypatch.setattr(api, "run_fuzz", slow_fuzz)
        service = CampaignService(max_parallel_jobs=1, max_queued_jobs=0)
        server = ServiceServer(service, port=0, heartbeat_s=0.2)
        server.start_background()
        host, port = server.address
        try:
            with ServiceClient(host, port) as client:
                client.submit(JobSpec(kind="fuzz", options=quick_options()))
                with pytest.raises(ServiceBusy):
                    client.submit(
                        JobSpec(kind="fuzz", options=quick_options())
                    )
        finally:
            release.set()
            server.close()
            service.shutdown()


# -- wire-level robustness: heartbeats, reconnect, drain ---------------


def _slow_then_done(duration):
    def slow_fuzz(options, should_stop=None):
        deadline = time.monotonic() + duration
        report = FuzzingReport(coverage=PatternCoverage())
        while time.monotonic() < deadline:
            if should_stop is not None and should_stop():
                report.cancelled = True
                return report
            time.sleep(0.05)
        return report

    return slow_fuzz


class TestHeartbeats:
    def test_heartbeats_keep_a_slow_wait_alive(self, monkeypatch):
        """Regression for the ``results --wait`` liveness bug: a client
        whose socket timeout is shorter than the job only survives the
        wait because the server heartbeats."""
        monkeypatch.setattr(api, "run_fuzz", _slow_then_done(2.0))
        service = CampaignService()
        server = ServiceServer(service, port=0, heartbeat_s=0.1)
        server.start_background()
        host, port = server.address
        try:
            with ServiceClient(host, port, timeout=0.5) as client:
                job_id = client.submit(
                    JobSpec(kind="fuzz", options=quick_options())
                )
                events = list(client.results(job_id))
        finally:
            server.close()
            service.shutdown()
        assert events[-1]["event"] == "done"
        assert events[-1]["state"] == "done"
        # keepalives are invisible: no heartbeat leaks into the stream
        assert all(e["event"] != "heartbeat" for e in events)

    def test_without_heartbeats_the_slow_wait_times_out(self, monkeypatch):
        """The pre-fix behavior, pinned so the regression stays
        understood: no heartbeats + short socket timeout = dead wait."""
        monkeypatch.setattr(api, "run_fuzz", _slow_then_done(5.0))
        service = CampaignService()
        server = ServiceServer(service, port=0, heartbeat_s=None)
        server.start_background()
        host, port = server.address
        try:
            with ServiceClient(host, port, timeout=0.4) as client:
                job_id = client.submit(
                    JobSpec(kind="fuzz", options=quick_options())
                )
                with pytest.raises(ConnectionLost, match="no heartbeat"):
                    list(client.results(job_id))
                service.cancel(job_id)
        finally:
            server.close()
            service.shutdown()


class TestReconnectResume:
    def test_results_resume_after_an_injected_drop(self):
        service = CampaignService()
        server = ServiceServer(service, port=0, heartbeat_s=0.2)
        server.start_background()
        host, port = server.address
        try:
            with ServiceClient(host, port) as client:
                job_id = client.submit(
                    JobSpec(kind="fuzz", options=quick_options())
                )
                expected = list(client.results(job_id))
            drop_plan = plan("server.send=1:1")
            retry = faults.RetryPolicy(
                attempts=3, base_delay=0.01, max_delay=0.05
            )
            with faults.injected(drop_plan):
                with ServiceClient(host, port, retry=retry) as client:
                    replayed = list(client.results(job_id))
            assert drop_plan.fired("server.send") == 1
            assert replayed == expected  # no gaps, no duplicates
        finally:
            server.close()
            service.shutdown()

    def test_without_retry_policy_the_drop_is_fatal(self):
        service = CampaignService()
        server = ServiceServer(service, port=0, heartbeat_s=0.2)
        server.start_background()
        host, port = server.address
        try:
            with ServiceClient(host, port) as client:
                job_id = client.submit(
                    JobSpec(kind="fuzz", options=quick_options())
                )
                list(client.results(job_id))
            with faults.injected(plan("server.send=1:1")):
                with ServiceClient(host, port) as client:
                    with pytest.raises(ConnectionLost):
                        list(client.results(job_id))
        finally:
            server.close()
            service.shutdown()


class TestServerDrain:
    def test_close_drains_waiting_streams_and_reports_jobs(
        self, monkeypatch
    ):
        monkeypatch.setattr(api, "run_fuzz", _slow_then_done(30.0))
        service = CampaignService()
        server = ServiceServer(service, port=0, heartbeat_s=0.1)
        server.start_background()
        host, port = server.address
        client = ServiceClient(host, port, timeout=10.0)
        job_id = client.submit(JobSpec(kind="fuzz", options=quick_options()))
        streamed = []
        consumer = threading.Thread(
            target=lambda: streamed.extend(client.results(job_id))
        )
        consumer.start()
        time.sleep(0.3)  # the handler is now mid-wait on a running job
        try:
            report = server.close(drain_s=5.0)
            consumer.join(timeout=10)
            assert not consumer.is_alive(), "drain left the stream hanging"
            assert report["drained"] is True
            assert report["forced_connections"] == 0
            assert report["running_jobs"] == [job_id]
            # the serve thread really exited — the old close() leaked it
            assert server._thread is None
        finally:
            client.close()
            service.cancel(job_id)
            list(service.results(job_id))
            service.shutdown()


# -- crash-safe state dir ----------------------------------------------


class TestStateRecovery:
    def test_terminal_jobs_survive_a_restart(self, tmp_path):
        state_dir = str(tmp_path / "state")
        first = CampaignService(state_dir=state_dir)
        job_id = first.submit(JobSpec(kind="fuzz", options=quick_options()))
        _events, status = _drain(first, job_id)
        assert status["state"] == "done"
        first.shutdown()

        second = CampaignService(state_dir=state_dir)
        try:
            assert second.recovered_jobs == [job_id]
            recovered = second.status(job_id)
            assert recovered["state"] == "done"
            assert recovered["report"] == status["report"]
            # the id counter continues past the recovered job
            next_id = second.submit(
                JobSpec(kind="fuzz", options=quick_options())
            )
            assert int(next_id.split("-")[1]) > int(job_id.split("-")[1])
            _drain(second, next_id)
        finally:
            second.shutdown()

    def test_interrupted_job_is_resumed_from_its_journal(self, tmp_path):
        """A job snapshotted as ``running`` (the crash case) is
        resubmitted at startup with ``resume`` flipped on, replays its
        campaign journal, and converges on the uninterrupted digest."""
        journal_dir = str(tmp_path / "journal")
        options = quick_options()
        baseline = api.run_campaign(
            options, workers=1, shards=2, journal_dir=journal_dir
        )
        spec = JobSpec(
            kind="campaign", options=options, workers=1, shards=2,
            journal_dir=journal_dir,
        )
        state_dir = str(tmp_path / "state")
        state = ServiceState(state_dir)
        assert state.save_job(
            {
                "job_id": "job-0007-cafe0123",
                "spec": spec.to_dict(),
                "state": "running",
                "submitted_at": 0.0,
                "events": [{"event": "state", "state": "running"}],
                "violations": 0,
                "error": None,
                "report": None,
            }
        )

        service = CampaignService(state_dir=state_dir)
        try:
            assert service.recovered_jobs == ["job-0007-cafe0123"]
            events, status = _drain(service, "job-0007-cafe0123")
            assert status["state"] == "done"
            assert (
                status["report"]["digest"] == baseline.report_digest()
            )
            assert events[0]["event"] == "recovered"
            # the counter continues past the recovered id
            new_id = service.submit(
                JobSpec(kind="fuzz", options=quick_options())
            )
            assert int(new_id.split("-")[1]) == 8
            _drain(service, new_id)
        finally:
            service.shutdown()

    def test_state_write_faults_are_counted_not_fatal(self, tmp_path):
        state_dir = str(tmp_path / "state")
        service = CampaignService(state_dir=state_dir)
        try:
            with faults.injected(plan("service.event=1")):
                job_id = service.submit(
                    JobSpec(kind="fuzz", options=quick_options())
                )
                _events, status = _drain(service, job_id)
            assert status["state"] == "done"
            assert service.state.write_errors > 0
        finally:
            service.shutdown()

    def test_torn_snapshots_are_skipped(self, tmp_path):
        state_dir = str(tmp_path / "state")
        state = ServiceState(state_dir)
        with open(state.job_path("job-0001-torn0000"), "w") as handle:
            handle.write('{"job_id": "job-0001-torn')  # torn mid-write
        service = CampaignService(state_dir=state_dir)
        try:
            assert service.recovered_jobs == []
        finally:
            service.shutdown()
