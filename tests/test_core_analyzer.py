"""Tests for the relational analyzer (paper §5.5)."""

import pytest

from repro.core.analyzer import RelationalAnalyzer
from repro.core.input_gen import effectiveness
from repro.traces import CTrace, HTrace


def ct(*observations):
    return CTrace(tuple(observations))


def ht(*signals):
    return HTrace.from_signals(set(signals))


class TestEquivalence:
    def test_subset_mode(self):
        analyzer = RelationalAnalyzer("subset")
        assert analyzer.equivalent(ht(1), ht(1, 2))
        assert analyzer.equivalent(ht(1, 2), ht(1))
        assert analyzer.equivalent(ht(1), ht(1))
        assert not analyzer.equivalent(ht(1, 3), ht(1, 2))

    def test_strict_mode(self):
        analyzer = RelationalAnalyzer("strict")
        assert analyzer.equivalent(ht(1), ht(1))
        assert not analyzer.equivalent(ht(1), ht(1, 2))

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            RelationalAnalyzer("fuzzy")

    def test_empty_traces_equivalent(self):
        analyzer = RelationalAnalyzer()
        assert analyzer.equivalent(ht(), ht())


class TestClasses:
    def test_grouping_and_singletons(self):
        analyzer = RelationalAnalyzer()
        a, b = ct(("ld", 1)), ct(("ld", 2))
        classes, singletons = analyzer.build_classes([a, b, a, a])
        assert singletons == 1
        assert len(classes) == 1
        assert classes[0].positions == [0, 2, 3]

    def test_all_unique_inputs_are_ineffective(self):
        analyzer = RelationalAnalyzer()
        classes, singletons = analyzer.build_classes(
            [ct(("ld", i)) for i in range(5)]
        )
        assert classes == [] and singletons == 5


class TestAnalysis:
    def test_no_violation_when_htraces_match(self):
        analyzer = RelationalAnalyzer()
        ctraces = [ct(("ld", 1))] * 3
        htraces = [ht(5)] * 3
        result = analyzer.analyze(ctraces, htraces)
        assert result.candidates == []
        assert result.effectiveness == 1.0

    def test_violation_detected(self):
        analyzer = RelationalAnalyzer()
        ctraces = [ct(("ld", 1))] * 2
        htraces = [ht(5), ht(9)]
        result = analyzer.analyze(ctraces, htraces)
        assert len(result.candidates) == 1
        candidate = result.candidates[0]
        assert (candidate.position_a, candidate.position_b) == (0, 1)

    def test_cross_class_difference_is_fine(self):
        """Different contract traces MAY have different hardware traces."""
        analyzer = RelationalAnalyzer()
        ctraces = [ct(("ld", 1)), ct(("ld", 2))]
        htraces = [ht(5), ht(9)]
        result = analyzer.analyze(ctraces, htraces)
        assert result.candidates == []

    def test_subset_divergence_filtered_in_subset_mode(self):
        """§5.5: fewer-but-matching observations are treated as noise."""
        ctraces = [ct(("ld", 1))] * 2
        htraces = [ht(5), ht(5, 7)]
        assert RelationalAnalyzer("subset").analyze(ctraces, htraces).candidates == []
        assert RelationalAnalyzer("strict").analyze(ctraces, htraces).candidates

    def test_multiple_representatives(self):
        """Three mutually non-equivalent traces yield multiple candidates."""
        analyzer = RelationalAnalyzer()
        ctraces = [ct(("ld", 1))] * 3
        htraces = [ht(1), ht(2), ht(3)]
        result = analyzer.analyze(ctraces, htraces)
        assert len(result.candidates) == 2

    def test_candidates_witness_first_representative(self):
        """Every candidate of one class pairs the new partition's witness
        with the class's first representative, in position order."""
        analyzer = RelationalAnalyzer("strict")
        ctraces = [ct(("ld", 1))] * 4
        htraces = [ht(1), ht(2), ht(1), ht(3)]
        result = analyzer.analyze(ctraces, htraces)
        pairs = [(c.position_a, c.position_b) for c in result.candidates]
        assert pairs == [(0, 1), (0, 3)]
        assert result.candidates[0].htrace_a.signals == {1}
        assert result.candidates[0].htrace_b.signals == {2}

    def test_member_matching_later_representative_is_no_candidate(self):
        """A member equivalent to *any* existing representative — not
        necessarily the first — joins that partition silently."""
        analyzer = RelationalAnalyzer("subset")
        ctraces = [ct(("ld", 1))] * 3
        # {1,2} vs {3,4}: new representative; {3} is a subset of {3,4},
        # so it matches the second representative and adds no candidate
        htraces = [ht(1, 2), ht(3, 4), ht(3)]
        result = analyzer.analyze(ctraces, htraces)
        assert [(c.position_a, c.position_b) for c in result.candidates] == [
            (0, 1)
        ]

    def test_misaligned_inputs_rejected(self):
        analyzer = RelationalAnalyzer()
        with pytest.raises(ValueError):
            analyzer.analyze([ct()], [ht(), ht()])

    def test_effectiveness_metric(self):
        analyzer = RelationalAnalyzer()
        ctraces = [ct(("ld", 1)), ct(("ld", 1)), ct(("ld", 2))]
        htraces = [ht()] * 3
        result = analyzer.analyze(ctraces, htraces)
        assert result.effectiveness == pytest.approx(2 / 3)
        assert result.singleton_inputs == 1

    def test_effectiveness_helper(self):
        assert effectiveness([2, 3, 1]) == pytest.approx(5 / 6)
        assert effectiveness([]) == 0.0
        assert effectiveness([1, 1]) == 0.0
