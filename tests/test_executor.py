"""Tests for the executor: measurement modes, priming, repetition,
outlier filtering, SMI discarding, batched collection and the
priming-swap verification."""

import pytest

from repro.arch import get_architecture
from repro.isa.assembler import parse_program
from repro.emulator.errors import EmulationError
from repro.emulator.state import InputData, SandboxLayout
from repro.executor.executor import Executor, ExecutorConfig
from repro.executor.modes import (
    FLUSH_RELOAD,
    PRIME_PROBE,
    PRIME_PROBE_ASSIST,
    measurement_mode,
    mode_names,
)
from repro.executor.noise import NO_NOISE, NoiseModel
from repro.traces import HTrace
from repro.uarch.config import skylake


@pytest.fixture
def layout():
    return SandboxLayout()


SIMPLE = "MOV RAX, qword ptr [R14 + 320]"  # set 5
V1 = """
    JNS .end
    AND RBX, 0b111111000000
    MOV RCX, qword ptr [R14 + RBX]
.end: NOP
"""


class TestModes:
    def test_mode_lookup(self):
        assert measurement_mode("P+P") is PRIME_PROBE
        assert measurement_mode("p+p+a").assists
        assert measurement_mode("Flush+Reload") is FLUSH_RELOAD

    def test_unknown_mode(self):
        with pytest.raises(KeyError):
            measurement_mode("L3-P+P")

    def test_mode_names_resolve(self):
        for name in mode_names():
            measurement_mode(name)

    def test_with_assists(self):
        mode = PRIME_PROBE.with_assists()
        assert mode.assists and mode.technique == "prime_probe"


class TestBasicMeasurement:
    def test_prime_probe_sees_access(self, layout):
        executor = Executor(skylake(), PRIME_PROBE, layout)
        traces = executor.collect_hardware_traces(
            parse_program(SIMPLE), [InputData()]
        )
        assert len(traces) == 1
        expected_set = ((layout.base + 320) // 64) % 64
        assert expected_set in traces[0]

    def test_flush_reload_sees_block(self, layout):
        executor = Executor(skylake(), FLUSH_RELOAD, layout)
        traces = executor.collect_hardware_traces(
            parse_program(SIMPLE), [InputData()]
        )
        assert 5 in traces[0]  # block 5 of the sandbox

    def test_pp_and_fr_equivalent_on_one_page(self, layout):
        """§6.1: F+R and P+P produce equivalent traces for a 4KB sandbox."""
        program = parse_program(
            "MOV RAX, qword ptr [R14 + 320]\nMOV RBX, qword ptr [R14 + 1344]"
        )
        pp = Executor(skylake(), PRIME_PROBE, layout)
        fr = Executor(skylake(), FLUSH_RELOAD, layout)
        trace_pp = pp.collect_hardware_traces(program, [InputData()])[0]
        trace_fr = fr.collect_hardware_traces(program, [InputData()])[0]
        base_set = (layout.base // 64) % 64
        shifted = {(signal - base_set) % 64 for signal in trace_pp.signals}
        assert shifted == set(trace_fr.signals)

    def test_deterministic_without_noise(self, layout):
        program = parse_program(V1)
        inputs = [InputData(registers={"RBX": 64 * i}, flags={"SF": bool(i % 2)})
                  for i in range(6)]
        first = Executor(skylake(), PRIME_PROBE, layout).collect_hardware_traces(
            program, inputs
        )
        second = Executor(skylake(), PRIME_PROBE, layout).collect_hardware_traces(
            program, inputs
        )
        assert [t.signals for t in first] == [t.signals for t in second]

    def test_assist_mode_clears_bit_each_measurement(self, layout):
        program = parse_program("MOV RAX, qword ptr [R14 + 4096]")
        executor = Executor(skylake(), PRIME_PROBE_ASSIST, layout)
        executor.collect_hardware_traces(program, [InputData()] * 2)
        assists = sum(
            info.assists_triggered for info in executor.stats.run_infos
        )
        assert assists == executor.stats.measurements

    def test_stats_accounting(self, layout):
        config = ExecutorConfig(repetitions=3, warmup_passes=2)
        executor = Executor(skylake(), PRIME_PROBE, layout, config)
        executor.collect_hardware_traces(parse_program(SIMPLE), [InputData()] * 4)
        assert executor.stats.measurements == (3 + 2) * 4


class TestOutlierFiltering:
    def test_one_off_trace_discarded(self, layout):
        executor = Executor(
            skylake(), PRIME_PROBE, layout, ExecutorConfig(repetitions=5)
        )
        merged = executor._merge(
            [frozenset({1}), frozenset({1}), frozenset({1}), frozenset({1, 9})]
        )
        assert merged.signals == {1}
        assert executor.stats.discarded_outliers == 1

    def test_all_singletons_keeps_majority(self, layout):
        executor = Executor(skylake(), PRIME_PROBE, layout)
        merged = executor._merge([frozenset({1}), frozenset({2})])
        assert merged.signals in ({1}, {2})

    def test_union_of_consistent_variants(self, layout):
        """§5.3: consistently observed speculative variants are unioned."""
        executor = Executor(
            skylake(), PRIME_PROBE, layout, ExecutorConfig(outlier_threshold=0)
        )
        merged = executor._merge([frozenset({1, 7}), frozenset({1})])
        assert merged.signals == {1, 7}

    def test_empty_measurements(self, layout):
        executor = Executor(skylake(), PRIME_PROBE, layout)
        assert executor._merge([]).signals == set()


class TestNoiseHandling:
    def test_noise_model_silent_by_default(self):
        assert NO_NOISE.is_silent

    def test_spurious_noise_filtered_by_repetition(self, layout):
        noise = NoiseModel(spurious_rate=0.2)
        config = ExecutorConfig(repetitions=9, outlier_threshold=2, noise=noise)
        executor = Executor(skylake(), PRIME_PROBE, layout, config)
        traces = executor.collect_hardware_traces(
            parse_program(SIMPLE), [InputData()]
        )
        expected_set = ((layout.base + 320) // 64) % 64
        assert traces[0].signals == {expected_set}

    def test_smi_measurements_discarded(self, layout):
        noise = NoiseModel(smi_rate=1.0)
        config = ExecutorConfig(repetitions=3, noise=noise)
        executor = Executor(skylake(), PRIME_PROBE, layout, config)
        traces = executor.collect_hardware_traces(
            parse_program(SIMPLE), [InputData()]
        )
        # every measurement was SMI-polluted and discarded
        assert executor.stats.discarded_smi == executor.stats.measurements
        assert traces[0].signals == set()

    def test_noise_deterministic_per_seed(self, layout):
        noise = NoiseModel(spurious_rate=0.5)
        runs = []
        for _ in range(2):
            config = ExecutorConfig(repetitions=3, noise=noise, noise_seed=99,
                                    outlier_threshold=0)
            executor = Executor(skylake(), PRIME_PROBE, layout, config)
            runs.append(
                executor.collect_hardware_traces(parse_program(SIMPLE), [InputData()])
            )
        assert runs[0][0].signals == runs[1][0].signals


class TestPrimingSwap:
    def test_last_run_infos_initialized(self, layout):
        """Fresh executors expose (empty) run infos before any
        measurement, so consumers never need an attribute guard."""
        assert Executor(skylake(), PRIME_PROBE, layout).last_run_infos == []

    def test_swap_sequences_pinned(self, layout):
        """Pin the §5.3 swap semantics: for positions a < b, the check
        measures the original sequence, then the sequence with input_b
        moved into position a (only), then the one with input_a moved
        into position b (only) — and position arguments are normalized,
        so (b, a) measures exactly the same three sequences."""
        program = parse_program(V1)
        inputs = [InputData(registers={"RBX": 64 * i}) for i in range(6)]
        position_a, position_b = 1, 4

        for call_order in ((position_a, position_b), (position_b, position_a)):
            executor = Executor(skylake(), PRIME_PROBE, layout)
            captured = []

            def record(linear, sequence, fresh_context=True):
                captured.append(list(sequence))
                return [HTrace.empty() for _ in sequence]

            executor.collect_hardware_traces_linearized = record
            confirmed = executor.priming_swap_check(
                program, inputs, *call_order,
                lambda a, b: a.signals == b.signals,
            )
            # all-empty traces: each input "reproduces" the other's trace
            # in the other's context, i.e. a context-caused false positive
            assert not confirmed
            assert len(captured) == 3
            original, swapped_to_a, swapped_to_b = captured
            assert original == list(inputs)
            expected_a = list(inputs)
            expected_a[position_a] = inputs[position_b]
            assert swapped_to_a == expected_a
            expected_b = list(inputs)
            expected_b[position_b] = inputs[position_a]
            assert swapped_to_b == expected_b

    def test_argument_order_irrelevant(self, layout):
        """position_a > position_b is normalized: both orders agree."""
        program = parse_program(V1)
        inputs = [
            InputData(registers={"RBX": 0x1C0}, flags={"SF": True}),
            InputData(registers={"RBX": 0x1C0}),
            InputData(registers={"RBX": 0x340}, flags={"SF": True}),
            InputData(registers={"RBX": 0x340}),
        ]
        equivalent = lambda a, b: a.signals == b.signals
        forward = Executor(skylake(), PRIME_PROBE, layout).priming_swap_check(
            program, inputs, 0, 2, equivalent
        )
        backward = Executor(skylake(), PRIME_PROBE, layout).priming_swap_check(
            program, inputs, 2, 0, equivalent
        )
        assert forward is True
        assert backward is True

    def test_context_caused_divergence_discarded(self, layout):
        """A divergence that swaps away with the contexts is a false
        positive (§5.3). A single bypass-training artifact: the first
        input bypasses, the second does not — swapping shows each input
        reproduces the other's trace in the other's position."""
        program = parse_program(
            """
            MOV qword ptr [R14 + 64], RAX
            MOV RBX, qword ptr [R14 + 64]
            AND RBX, 0b111111000000
            MOV RCX, qword ptr [R14 + RBX]
            """
        )
        # identical inputs: any trace difference is purely positional
        inputs = [InputData(registers={"RAX": 0x80})] * 2
        executor = Executor(skylake(v4_patch=False), PRIME_PROBE, layout)
        confirmed = executor.priming_swap_check(
            program, inputs, 0, 1, lambda a, b: a.signals == b.signals
        )
        assert not confirmed

    def test_input_caused_divergence_confirmed(self, layout):
        program = parse_program(V1)
        # same class (all taken), different leaking registers
        inputs = [
            InputData(registers={"RBX": 0x1C0}, flags={"SF": True}),
            InputData(registers={"RBX": 0x1C0}),
            InputData(registers={"RBX": 0x340}, flags={"SF": True}),
            InputData(registers={"RBX": 0x340}),
        ]
        executor = Executor(skylake(), PRIME_PROBE, layout)
        traces = executor.collect_hardware_traces(program, inputs)
        # positions 0 and 2 leak transiently nothing... architectural leak
        # differs by RBX: 1 vs 3 have architectural fallthrough... compare
        # the not-taken pair (SF=True executes the load architecturally)
        assert traces[0].signals != traces[2].signals
        confirmed = executor.priming_swap_check(
            program, inputs, 0, 2, lambda a, b: a.signals == b.signals
        )
        assert confirmed


V1_A64 = """
    B.PL .end
    AND X1, X1, #0b111111000000
    LDR X2, [X27, X1]
.end: NOP
"""


class TestBatchedCollection:
    """collect_hardware_traces_batched: bit-identical to per-pair calls."""

    def _signals(self, traces):
        return [trace.signals for trace in traces]

    def test_batched_equals_per_input_x86(self, layout):
        programs = [parse_program(SIMPLE), parse_program(V1)]
        batches = [
            [InputData()] * 3,
            [InputData(registers={"RBX": 64 * i},
                       flags={"SF": bool(i % 2)}) for i in range(6)],
        ]
        reference = [
            Executor(skylake(), PRIME_PROBE, layout).collect_hardware_traces(
                program, inputs
            )
            for program, inputs in zip(programs, batches)
        ]
        batched = Executor(
            skylake(), PRIME_PROBE, layout
        ).collect_hardware_traces_batched(programs, batches)
        assert [self._signals(t) for t in batched] == [
            self._signals(t) for t in reference
        ]

    def test_batched_equals_per_input_aarch64(self):
        arch = get_architecture("aarch64")
        layout = SandboxLayout()
        program = arch.parse_program(V1_A64)
        inputs = [
            InputData(registers={"X1": 64 * i}, flags={"N": bool(i % 2)})
            for i in range(6)
        ]
        reference = Executor(
            skylake(), PRIME_PROBE, layout, arch=arch
        ).collect_hardware_traces(program, inputs)
        # the same program measured twice in one batch: linearized once,
        # each item against a fresh context
        batched = Executor(
            skylake(), PRIME_PROBE, layout, arch=arch
        ).collect_hardware_traces_batched([program, program],
                                          [inputs, inputs])
        assert self._signals(batched[0]) == self._signals(reference)
        assert self._signals(batched[1]) == self._signals(reference)

    def test_batched_under_noise_matches_sequential_rng_stream(self, layout):
        """One calibration per batch must not change what the noise RNG
        produces: a batch consumes the exact same stream as back-to-back
        linearized calls on one executor."""
        noise = NoiseModel(spurious_rate=0.5, drop_rate=0.25)
        config = ExecutorConfig(repetitions=3, noise=noise, noise_seed=11,
                                outlier_threshold=0)
        programs = [parse_program(SIMPLE), parse_program(V1)]
        batches = [[InputData()] * 2,
                   [InputData(registers={"RBX": 192})] * 2]
        sequential = Executor(skylake(), PRIME_PROBE, layout, config)
        reference = [
            sequential.collect_hardware_traces_linearized(
                program.linearize(), inputs
            )
            for program, inputs in zip(programs, batches)
        ]
        batched = Executor(
            skylake(), PRIME_PROBE, layout, config
        ).collect_hardware_traces_batched(programs, batches)
        assert [self._signals(t) for t in batched] == [
            self._signals(t) for t in reference
        ]

    def test_batch_run_infos_per_item(self, layout):
        executor = Executor(skylake(), PRIME_PROBE, layout)
        executor.collect_hardware_traces_batched(
            [parse_program(SIMPLE)], [[InputData()] * 2]
        )
        assert len(executor.last_batch_run_infos) == 1
        assert len(executor.last_batch_run_infos[0]) == 2  # one per input

    def test_shape_mismatch_rejected(self, layout):
        executor = Executor(skylake(), PRIME_PROBE, layout)
        with pytest.raises(ValueError, match="batch shape"):
            executor.collect_hardware_traces_batched(
                [parse_program(SIMPLE)], []
            )

    def test_faulting_item_skipped_or_raised(self, layout):
        good = parse_program(SIMPLE)
        # an architecturally-committed sandbox escape faults the run
        faulting = parse_program("MOV RAX, qword ptr [R14 + 1048576]")
        executor = Executor(skylake(), PRIME_PROBE, layout)
        with pytest.raises(EmulationError):
            executor.collect_hardware_traces_batched(
                [good, faulting], [[InputData()], [InputData()]]
            )
        results = executor.collect_hardware_traces_batched(
            [good, faulting, good],
            [[InputData()], [InputData()], [InputData()]],
            skip_faulting=True,
        )
        assert results[1] is None
        assert executor.last_batch_run_infos[1] is None
        assert results[0] is not None and results[2] is not None
        assert self._signals(results[0]) == self._signals(results[2])


class TestHTrace:
    def test_bitmap_rendering(self):
        trace = HTrace.from_signals({0, 4, 5}, num_slots=8)
        assert trace.bitmap() == "10001100"

    def test_union_and_subset(self):
        a = HTrace.from_signals({1, 2})
        b = HTrace.from_signals({1})
        assert b.issubset(a)
        assert a.union(b).signals == {1, 2}
        assert 2 in a and 2 not in b
