"""Battery-batched evaluation must be byte-identical to the per-input loop.

The group-lockstep engine (:mod:`repro.emulator.battery`) runs each
compiled program once across its whole input battery; the per-input
``collect_trace_and_log`` loop remains the behavioural referee. These
tests pin the equality from four directions:

- **randomized lockstep**: generated programs of both ISAs, across all
  execution clauses and with nested speculation, compared entry for
  entry against the per-input results;
- **divergence**: hand-written programs whose lanes split at
  conditional branches, at speculative faults, and at store-bypass
  forks — plus the fallback protocol for conditions the engine refuses
  to model (architectural faults, the step budget);
- **bookkeeping parity**: ``TestingPipeline`` emulation counters and
  trace-cache statistics (duplicate inputs included) must not move a
  unit when ``battery_eval`` flips, and ``ContractTraceCache.peek``
  must observably not mutate stats or LRU order;
- **the pass pipeline**: masked-access fusion fires on the §5.1 idiom,
  is gated on the dead-flag proof for x86 ``AND``, and never changes a
  trace.
"""

from dataclasses import replace

import pytest

from repro.analysis.fusion import fuse_masked_access
from repro.analysis.passes import default_pipeline
from repro.arch import architecture_names, get_architecture
from repro.contracts import get_contract
from repro.core.config import FuzzerConfig, GeneratorConfig
from repro.core.fuzzer import TestingPipeline
from repro.core.generator import TestCaseGenerator
from repro.core.input_gen import InputGenerator
from repro.emulator import battery
from repro.emulator.battery import BatteryFallback, run_battery
from repro.emulator.compiled import compile_program, shared_compiled_cache
from repro.emulator.errors import SandboxViolation
from repro.emulator.state import InputData, SandboxLayout
from repro.isa.assembler import parse_program

ARCHS = sorted(architecture_names())
CONTRACTS = ("CT-SEQ", "CT-COND", "CT-BPAS", "ARCH-SEQ")


def _generator(arch, layout, seed):
    return TestCaseGenerator(
        arch.instruction_subset(["AR", "MEM", "CB"]),
        GeneratorConfig(
            instructions_per_test=16, basic_blocks=3, memory_accesses=5
        ),
        layout,
        seed=seed,
        arch=arch,
    )


def _inputs(arch, layout, seed, count):
    return InputGenerator(
        seed=seed,
        layout=layout,
        registers=arch.default_register_pool,
        flag_bits=arch.registers.flag_bits,
    ).generate(count)


def _per_input(contract, program, inputs, layout, arch, compiled):
    return [
        contract.collect_trace_and_log(
            program, input_data, layout, arch, compiled
        )
        for input_data in inputs
    ]


def _assert_lockstep(contract, program, inputs, layout, arch):
    compiled = compile_program(program, arch)
    reference = _per_input(contract, program, inputs, layout, arch, compiled)
    batched = contract.collect_traces_battery(
        compiled, inputs, layout, strict=True
    )
    assert len(batched) == len(reference)
    for (trace_a, log_a), (trace_b, log_b) in zip(reference, batched):
        assert trace_a == trace_b
        assert log_a.entries == log_b.entries
    return reference


# -- randomized lockstep ------------------------------------------------------


@pytest.mark.parametrize("arch_name", ARCHS)
@pytest.mark.parametrize("contract_name", CONTRACTS)
def test_battery_matches_per_input_randomized(arch_name, contract_name):
    """Generated programs, all execution clauses: entry-for-entry equal."""
    arch = get_architecture(arch_name)
    layout = SandboxLayout()
    contract = get_contract(contract_name)
    generator = _generator(arch, layout, seed=11)
    inputs = _inputs(arch, layout, seed=12, count=10)
    for _ in range(4):
        _assert_lockstep(contract, generator.generate(), inputs, layout, arch)


@pytest.mark.parametrize("arch_name", ARCHS)
def test_battery_matches_nested_speculation(arch_name):
    """max_nesting=2 (speculation inside speculation) stays in lockstep."""
    arch = get_architecture(arch_name)
    layout = SandboxLayout()
    contract = get_contract("CT-COND-BPAS", max_nesting=2)
    generator = _generator(arch, layout, seed=21)
    inputs = _inputs(arch, layout, seed=22, count=8)
    for _ in range(3):
        _assert_lockstep(contract, generator.generate(), inputs, layout, arch)


@pytest.mark.parametrize("arch_name", ARCHS)
def test_battery_matches_on_pass_optimized_ir(arch_name):
    """The production shape: battery over pipeline-optimized IR equals
    the per-input loop over the unoptimized IR."""
    arch = get_architecture(arch_name)
    layout = SandboxLayout()
    contract = get_contract("CT-COND")
    generator = _generator(arch, layout, seed=31)
    inputs = _inputs(arch, layout, seed=32, count=8)
    for _ in range(3):
        program = generator.generate()
        compiled = compile_program(program, arch)
        optimized = default_pipeline().run(compiled).program
        reference = _per_input(
            contract, program, inputs, layout, arch, compiled
        )
        batched = contract.collect_traces_battery(
            optimized, inputs, layout, strict=True
        )
        for (trace_a, log_a), (trace_b, log_b) in zip(reference, batched):
            assert trace_a == trace_b
            assert log_a.entries == log_b.entries


# -- targeted divergence ------------------------------------------------------


def _divergent_branch_program(arch_name):
    """Lanes split at the first conditional branch (flags are part of
    the input, so a randomized battery takes both sides)."""
    if arch_name == "x86_64":
        return parse_program(
            "JZ .skip\n"
            "MOV RAX, qword ptr [R14 + 64]\n"
            ".skip: MOV RBX, qword ptr [R14 + 128]\n"
            "NOP"
        )
    arch = get_architecture(arch_name)
    return arch.parse_program(
        "B.EQ .skip\n"
        "LDR X1, [X27, #64]\n"
        ".skip: LDR X2, [X27, #128]\n"
        "NOP"
    )


@pytest.mark.parametrize("arch_name", ARCHS)
@pytest.mark.parametrize("contract_name", ("CT-SEQ", "CT-COND"))
def test_conditional_branch_divergence(arch_name, contract_name):
    """A battery whose lanes take both sides of a Jcc/B.cond splits and
    still matches the per-input loop lane for lane."""
    arch = get_architecture(arch_name)
    layout = SandboxLayout()
    contract = get_contract(contract_name)
    program = _divergent_branch_program(arch_name)
    zero_flag = "ZF" if arch_name == "x86_64" else "Z"
    inputs = [
        InputData(flags={zero_flag: bool(index % 2)}, seed=index)
        for index in range(6)
    ]
    reference = _assert_lockstep(contract, program, inputs, layout, arch)
    # the split actually happened: the two flag polarities trace apart
    assert reference[0][0] != reference[1][0]


def _speculative_fault_program(arch_name):
    """The faulting load sits on the architecturally-dead path: only
    CT-COND's wrong-path speculation reaches it, and only for lanes
    whose input register pushes the address out of the sandbox."""
    if arch_name == "x86_64":
        return parse_program(
            "CMP RAX, RAX\n"
            "JZ .skip\n"
            "MOV RBX, qword ptr [R14 + RAX + 8000]\n"
            ".skip: NOP"
        )
    arch = get_architecture(arch_name)
    return arch.parse_program(
        "CMP X1, X1\n"
        "B.EQ .skip\n"
        "ADD X2, X1, #4000\n"
        "ADD X2, X2, #4000\n"
        "LDR X3, [X27, X2]\n"
        ".skip: NOP"
    )


@pytest.mark.parametrize("arch_name", ARCHS)
def test_speculative_fault_splits_lanes(arch_name):
    """Lanes that fault on the wrong path roll back individually; lanes
    that do not keep speculating — and both match the per-input loop."""
    arch = get_architecture(arch_name)
    layout = SandboxLayout()
    contract = get_contract("CT-COND")
    program = _speculative_fault_program(arch_name)
    register = "RAX" if arch_name == "x86_64" else "X1"
    # 8000 + 192 + 8 > two pages: the 192 lanes fault speculatively,
    # the 0/64 lanes complete their wrong-path load
    inputs = [
        InputData(registers={register: value}, seed=value)
        for value in (0, 192, 64, 192, 0)
    ]
    reference = _assert_lockstep(contract, program, inputs, layout, arch)
    # the faulting lane really rolled back early: it observes less of
    # the wrong path than a completing lane
    assert reference[1][0] != reference[0][0]


def _architectural_fault_program(arch_name):
    if arch_name == "x86_64":
        return parse_program(
            "MOV RBX, qword ptr [R14 + RAX + 8000]\nNOP"
        )
    arch = get_architecture(arch_name)
    return arch.parse_program(
        "ADD X2, X1, #4000\n"
        "ADD X2, X2, #4000\n"
        "LDR X3, [X27, X2]\n"
        "NOP"
    )


@pytest.mark.parametrize("arch_name", ARCHS)
def test_architectural_fault_fallback_parity(arch_name):
    """Architectural faults are the per-input loop's business: strict
    batteries refuse them, non-strict ones rerun per input and surface
    the identical exception at the identical input."""
    arch = get_architecture(arch_name)
    layout = SandboxLayout()
    contract = get_contract("CT-SEQ")
    program = _architectural_fault_program(arch_name)
    register = "RAX" if arch_name == "x86_64" else "X1"
    inputs = [
        InputData(registers={register: value}, seed=value)
        for value in (0, 64, 192, 0)
    ]
    compiled = compile_program(program, arch)

    with pytest.raises(BatteryFallback):
        contract.collect_traces_battery(compiled, inputs, layout, strict=True)

    with pytest.raises(SandboxViolation) as reference:
        _per_input(contract, program, inputs, layout, arch, compiled)
    with pytest.raises(SandboxViolation) as fallback:
        contract.collect_traces_battery(compiled, inputs, layout)
    assert str(fallback.value) == str(reference.value)


def test_step_budget_is_a_fallback_not_a_crash():
    """Exhausting the battery step budget raises BatteryFallback (the
    per-input loop owns the ExecutionLimitExceeded protocol)."""
    arch = get_architecture("x86_64")
    contract = get_contract("CT-SEQ")
    program = parse_program("NOP\nNOP\nNOP\nNOP\nNOP")
    compiled = compile_program(program, arch)
    inputs = [InputData(seed=index) for index in range(3)]
    with pytest.raises(BatteryFallback):
        run_battery(
            compiled,
            inputs,
            observation=contract.observation,
            execution=contract.execution,
            speculation_window=contract.speculation_window,
            max_nesting=contract.max_nesting,
            layout=SandboxLayout(),
            max_steps=2,
        )


def test_shared_scratch_stays_empty():
    """The fast-path scratch list is shared by every memory-free body on
    the premise that none of them ever appends an access — lock that
    premise in after a real battery run."""
    arch = get_architecture("x86_64")
    layout = SandboxLayout()
    contract = get_contract("CT-COND")
    generator = _generator(arch, layout, seed=41)
    inputs = _inputs(arch, layout, seed=42, count=6)
    compiled = compile_program(generator.generate(), arch)
    contract.collect_traces_battery(compiled, inputs, layout, strict=True)
    assert battery._SCRATCH == []


# -- pipeline bookkeeping parity ----------------------------------------------


def _pipeline_pair(arch_name, **overrides):
    base = FuzzerConfig(arch=arch_name, **overrides)
    on = TestingPipeline(base)
    off = TestingPipeline(replace(base, battery_eval=False))
    assert on.config.battery_eval and not off.config.battery_eval
    return on, off


@pytest.mark.parametrize("arch_name", ARCHS)
def test_pipeline_counter_parity_without_cache(arch_name):
    arch = get_architecture(arch_name)
    layout = SandboxLayout()
    on, off = _pipeline_pair(arch_name)
    program = _generator(arch, layout, seed=51).generate()
    inputs = _inputs(arch, layout, seed=52, count=8)
    result_on = on.collect_contract_traces(program, inputs)
    result_off = off.collect_contract_traces(program, inputs)
    assert result_on[0] == result_off[0]
    assert [log.entries for log in result_on[1]] == [
        log.entries for log in result_off[1]
    ]
    assert on.contract_emulations == off.contract_emulations == len(inputs)


@pytest.mark.parametrize("arch_name", ARCHS)
def test_pipeline_cache_parity_with_duplicates(arch_name):
    """Hit/miss stats, emulation counters and cached results must be
    identical with ``battery_eval`` flipped — including a battery that
    contains the same input twice (first occurrence misses and
    publishes, second hits) and a warm second collection."""
    arch = get_architecture(arch_name)
    layout = SandboxLayout()
    on, off = _pipeline_pair(arch_name, contract_trace_cache=True)
    program = _generator(arch, layout, seed=61).generate()
    distinct = _inputs(arch, layout, seed=62, count=6)
    inputs = distinct + [distinct[0], distinct[3]]

    result_on = on.collect_contract_traces(program, inputs)
    result_off = off.collect_contract_traces(program, inputs)
    assert result_on[0] == result_off[0]
    assert on.contract_emulations == off.contract_emulations == len(distinct)
    assert on.trace_cache.stats.hits == off.trace_cache.stats.hits == 2
    assert (
        on.trace_cache.stats.misses
        == off.trace_cache.stats.misses
        == len(distinct)
    )

    # warm pass: every lane hits, no new emulation on either side
    warm_on = on.collect_contract_traces(program, inputs)
    warm_off = off.collect_contract_traces(program, inputs)
    assert warm_on[0] == warm_off[0] == result_on[0]
    assert on.contract_emulations == off.contract_emulations == len(distinct)
    assert on.trace_cache.stats.hits == off.trace_cache.stats.hits


def test_peek_does_not_mutate_stats_or_recency():
    """``peek`` is the battery's pre-pass over the cache: it must leave
    hit/miss counters and LRU recency untouched so the replayed
    ``get``/``put`` protocol matches the per-input loop exactly."""
    from repro.core.trace_cache import ContractTraceCache

    arch = get_architecture("x86_64")
    layout = SandboxLayout()
    contract = get_contract("CT-SEQ")
    program = parse_program("NOP")
    compiled = compile_program(program, arch)
    cache = ContractTraceCache(max_entries=2)
    inputs = [InputData(seed=index) for index in range(3)]
    keys = [cache.key("fp", input_data, contract) for input_data in inputs]
    entries = [
        contract.collect_trace_and_log(
            program, input_data, layout, arch, compiled
        )
        for input_data in inputs
    ]

    cache.put(keys[0], entries[0])
    cache.put(keys[1], entries[1])
    before = (cache.stats.hits, cache.stats.misses)
    assert cache.peek(keys[0])
    assert not cache.peek(keys[2])
    assert (cache.stats.hits, cache.stats.misses) == before
    # peek did not refresh keys[0]: the next insert still evicts it
    cache.put(keys[2], entries[2])
    assert not cache.peek(keys[0])
    assert cache.peek(keys[1]) and cache.peek(keys[2])


def test_compiled_ir_shared_across_pipelines():
    """Equal-text programs share one lowering process-wide: a second
    pipeline's ``compiled_for`` is a shared-cache hit, not a recompile."""
    arch_name = "x86_64"
    arch = get_architecture(arch_name)
    layout = SandboxLayout()
    program = _generator(arch, layout, seed=71).generate()
    clone = program.clone()

    first = TestingPipeline(FuzzerConfig(arch=arch_name))
    second = TestingPipeline(FuzzerConfig(arch=arch_name))
    compiled = first.compiled_for(program)
    hits_before = shared_compiled_cache().hits
    assert second.compiled_for(clone) is compiled
    assert shared_compiled_cache().hits > hits_before


def test_input_memo_shares_identical_batteries():
    """Two generators with the same configuration produce not just equal
    but *identical* InputData objects (the process-global memo), and the
    memo never perturbs the generated sequence."""
    arch = get_architecture("x86_64")
    layout = SandboxLayout()

    def make():
        return InputGenerator(
            seed=81,
            layout=layout,
            registers=arch.default_register_pool,
            flag_bits=arch.registers.flag_bits,
        ).generate(5)

    first = make()
    second = make()
    assert first == second
    assert all(a is b for a, b in zip(first, second))


# -- masked-access fusion -----------------------------------------------------


def _fusible_program(arch_name):
    """The §5.1 idiom: mask a register, use it as an address offset. The
    trailing compare redefines the x86 flags so the AND's writes are
    provably dead (the fusion precondition)."""
    if arch_name == "x86_64":
        return parse_program(
            "AND RAX, 4032\n"
            "MOV RBX, qword ptr [R14 + RAX]\n"
            "CMP RBX, RBX\n"
            "NOP"
        )
    arch = get_architecture(arch_name)
    return arch.parse_program(
        "AND X1, X1, #4032\n"
        "LDR X2, [X27, X1]\n"
        "CMP X2, X2\n"
        "NOP"
    )


@pytest.mark.parametrize("arch_name", ARCHS)
def test_fusion_fires_on_masked_access_idiom(arch_name):
    arch = get_architecture(arch_name)
    program = _fusible_program(arch_name)
    compiled = compile_program(program, arch)
    report = default_pipeline().run(compiled)
    assert 0 in report.applied("masked-access-fusion")


@pytest.mark.parametrize("arch_name", ARCHS)
def test_fusion_preserves_traces(arch_name):
    """Fused handlers are specializations, not approximations: traces
    and logs match the unoptimized IR on a randomized battery."""
    arch = get_architecture(arch_name)
    layout = SandboxLayout()
    contract = get_contract("CT-COND")
    program = _fusible_program(arch_name)
    compiled = compile_program(program, arch)
    optimized = default_pipeline().run(compiled).program
    inputs = _inputs(arch, layout, seed=91, count=8)
    reference = _per_input(contract, program, inputs, layout, arch, compiled)
    fused = _per_input(contract, program, inputs, layout, arch, optimized)
    for (trace_a, log_a), (trace_b, log_b) in zip(reference, fused):
        assert trace_a == trace_b
        assert log_a.entries == log_b.entries


def test_x86_fusion_requires_dead_flag_proof():
    """An x86 AND whose flags are live at exit must not fuse: without
    the dead-flag proof the specialized handler would skip observable
    flag writes."""
    arch = get_architecture("x86_64")
    # no later flag write: the AND's flags are live at program exit
    program = parse_program(
        "AND RAX, 4032\nMOV RBX, qword ptr [R14 + RAX]\nNOP"
    )
    compiled = compile_program(program, arch)
    report = fuse_masked_access(compiled, dead_flag_pcs=frozenset())
    assert report.fused == ()
    assert default_pipeline().run(compiled).applied(
        "masked-access-fusion"
    ) == ()
