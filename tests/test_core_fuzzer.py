"""Integration tests for the MRT fuzzing loop and the testing pipeline."""

from repro.isa.assembler import parse_program
from repro.core.config import FuzzerConfig
from repro.core.fuzzer import Fuzzer, TestingPipeline, fuzz
from repro.core.input_gen import InputGenerator


def quick_config(**overrides):
    defaults = dict(
        instruction_subsets=("AR", "MEM", "CB"),
        contract_name="CT-SEQ",
        cpu_preset="skylake-v4-patched",
        num_test_cases=60,
        inputs_per_test_case=25,
        seed=7,
    )
    defaults.update(overrides)
    return FuzzerConfig(**defaults)


class TestPipeline:
    def test_handwritten_v1_detected(self):
        pipeline = TestingPipeline(quick_config())
        program = parse_program(
            """
            JNS .end
            AND RBX, 0b111111000000
            MOV RCX, qword ptr [R14 + RBX]
        .end: NOP
            """
        )
        inputs = InputGenerator(seed=42, layout=pipeline.layout).generate(50)
        candidate = pipeline.check_violation(program, inputs, confirm=True)
        assert candidate is not None

    def test_benign_program_clean(self):
        pipeline = TestingPipeline(quick_config())
        program = parse_program("MOV RAX, qword ptr [R14 + 128]\nADD RAX, 1")
        inputs = InputGenerator(seed=1, layout=pipeline.layout).generate(30)
        assert pipeline.check_violation(program, inputs) is None

    def test_violation_object_populated(self):
        pipeline = TestingPipeline(quick_config())
        program = parse_program(
            """
            JNS .end
            AND RBX, 0b111111000000
            MOV RCX, qword ptr [R14 + RBX]
        .end: NOP
            """
        )
        inputs = InputGenerator(seed=42, layout=pipeline.layout).generate(50)
        outcome = pipeline.test_program(program, inputs)
        assert outcome.analysis.candidates
        violation = pipeline.build_violation(
            outcome, outcome.analysis.candidates[0]
        )
        assert violation.contract_name == "CT-SEQ"
        assert violation.classification.startswith("V1")
        assert "cond" in violation.speculation_kinds
        assert "contract violation" in violation.describe()
        only_a, only_b = violation.differing_signals()
        assert only_a or only_b

    def test_classification_survives_re_measurement(self):
        """Regression: classification must read the outcome's own run-info
        snapshot — the priming-swap check (or any later measurement)
        overwrites the executor's ``last_run_infos``."""
        pipeline = TestingPipeline(quick_config())
        program = parse_program(
            """
            JNS .end
            AND RBX, 0b111111000000
            MOV RCX, qword ptr [R14 + RBX]
        .end: NOP
            """
        )
        inputs = InputGenerator(seed=42, layout=pipeline.layout).generate(50)
        outcome = pipeline.test_program(program, inputs)
        candidate = outcome.analysis.candidates[0]
        # clobber the executor's last measurement with an unrelated run
        pipeline.executor.collect_hardware_traces(
            parse_program("NOP"), inputs[:2]
        )
        violation = pipeline.build_violation(outcome, candidate)
        assert "cond" in violation.speculation_kinds
        assert violation.classification.startswith("V1")

    def test_fault_in_program_returns_none(self):
        pipeline = TestingPipeline(quick_config())
        program = parse_program("DIV RBX")  # divide by zero
        inputs = InputGenerator(seed=1, layout=pipeline.layout).generate(4)
        assert pipeline.check_violation(program, inputs) is None


class TestFuzzerCampaigns:
    def test_finds_v1_on_skylake(self):
        report = fuzz(quick_config(num_test_cases=120))
        assert report.found
        assert "V1" in report.violation.classification
        assert report.violation.test_cases_until_found <= 120
        assert report.test_cases >= 1
        assert 0 < report.mean_effectiveness <= 1

    def test_ar_only_is_clean(self):
        """Target 1: arithmetic only, no false violations (§6.2)."""
        report = fuzz(
            quick_config(instruction_subsets=("AR",), num_test_cases=25)
        )
        assert not report.found
        assert report.unconfirmed_candidates == 0

    def test_ct_cond_permits_v1(self):
        """Targets 5: CT-COND is not violated by branch misprediction."""
        report = fuzz(
            quick_config(contract_name="CT-COND", num_test_cases=25)
        )
        assert not report.found

    def test_timeout_respected(self):
        report = fuzz(quick_config(num_test_cases=10_000, timeout_seconds=2.0,
                                   instruction_subsets=("AR",)))
        assert report.duration_seconds < 10

    def test_summary_strings(self):
        report = fuzz(quick_config(instruction_subsets=("AR",), num_test_cases=5))
        assert "no violation" in report.summary()

    def test_reproducible_with_seed(self):
        first = fuzz(quick_config(num_test_cases=40))
        second = fuzz(quick_config(num_test_cases=40))
        assert first.found == second.found
        if first.found:
            assert (
                first.violation.test_cases_until_found
                == second.violation.test_cases_until_found
            )


class TestDiversityFeedback:
    def test_reconfiguration_grows_generator(self):
        fuzzer = Fuzzer(quick_config(instruction_subsets=("AR",)))
        before = fuzzer.generator.config.instructions_per_test
        grew = fuzzer._maybe_reconfigure(new_coverage=False)
        assert grew
        assert fuzzer.generator.config.instructions_per_test > before

    def test_growth_capped(self):
        config = quick_config(
            instruction_subsets=("AR",),
            max_inputs_per_test_case=30,
            max_instructions_per_test=10,
            max_basic_blocks=3,
        )
        fuzzer = Fuzzer(config)
        for _ in range(20):
            fuzzer._maybe_reconfigure(new_coverage=False)
        assert fuzzer.generator.config.instructions_per_test <= 10
        assert fuzzer.generator.config.basic_blocks <= 3
        assert fuzzer._inputs_per_case <= 30

    def test_saturated_reconfiguration_stops(self):
        config = quick_config(
            instruction_subsets=("AR",),
            max_inputs_per_test_case=25,
            max_instructions_per_test=8,
            max_basic_blocks=2,
        )
        fuzzer = Fuzzer(config)
        results = [fuzzer._maybe_reconfigure(new_coverage=False) for _ in range(8)]
        # growth must terminate once every dimension hits its cap
        assert results[-1] is False

    def test_stage_advances_on_coverage(self):
        fuzzer = Fuzzer(quick_config(instruction_subsets=("AR",)))
        # cover all AR-expressible individual patterns
        fuzzer.coverage.update_from_class([{"reg-dep", "flag-dep"}] * 2)
        assert fuzzer._feedback_stage == 0
        fuzzer._maybe_reconfigure(new_coverage=True)
        assert fuzzer._feedback_stage == 1

    def test_feedback_disabled(self):
        report = fuzz(
            quick_config(
                instruction_subsets=("AR",),
                diversity_feedback=False,
                num_test_cases=25,
            )
        )
        assert report.reconfigurations == 0


class TestFalsePositiveFilters:
    def test_nesting_revalidation_counter(self):
        config = quick_config(num_test_cases=120)
        fuzzer = Fuzzer(config)
        report = fuzzer.run()
        # filters may or may not trigger, but the counters must be wired
        assert report.discarded_by_nesting == fuzzer.pipeline.discarded_by_nesting
        assert report.discarded_by_priming == fuzzer.pipeline.discarded_by_priming

    def test_priming_can_be_disabled(self):
        report = fuzz(quick_config(verify_with_priming=False, num_test_cases=60))
        assert report.discarded_by_priming == 0


class TestBatchedMeasurement:
    """The round-batched measurement path (config.batch_measurements)
    must be invisible in the report: identical generation order,
    analysis order, counters and findings."""

    REPORT_FIELDS = (
        "test_cases",
        "inputs_tested",
        "rounds",
        "reconfigurations",
        "mean_effectiveness",
        "discarded_by_priming",
        "discarded_by_nesting",
        "unconfirmed_candidates",
        "contract_emulations",
        "trace_cache_hits",
        "cancelled",
    )

    def _compare(self, config):
        from dataclasses import replace

        batched = Fuzzer(replace(config, batch_measurements=True)).run()
        sequential = Fuzzer(replace(config, batch_measurements=False)).run()
        for field in self.REPORT_FIELDS:
            assert getattr(batched, field) == getattr(sequential, field), field
        assert batched.coverage.covered == sequential.coverage.covered
        assert batched.found == sequential.found
        if batched.found:
            a, b = batched.violation, sequential.violation
            assert (a.position_a, a.position_b) == (b.position_a, b.position_b)
            assert a.classification == b.classification
            assert a.test_cases_until_found == b.test_cases_until_found
            assert a.inputs_until_found == b.inputs_until_found
            assert str(a.program.linearize()) == str(b.program.linearize())
        return batched

    def test_identical_report_without_violation(self):
        self._compare(
            quick_config(
                instruction_subsets=("AR",),
                num_test_cases=25,
                inputs_per_test_case=10,
                round_size=10,  # batches cross no round boundary
            )
        )

    def test_identical_report_with_violation(self):
        report = self._compare(quick_config(num_test_cases=120))
        assert report.found  # seed 7 reliably surfaces a violation

    def test_identical_report_with_cache(self):
        self._compare(
            quick_config(
                instruction_subsets=("AR", "MEM"),
                num_test_cases=20,
                inputs_per_test_case=10,
                contract_trace_cache=True,
            )
        )

    def test_pipeline_batch_matches_per_case_outcomes(self):
        pipeline = TestingPipeline(quick_config())
        generator = InputGenerator(seed=9, layout=pipeline.layout)
        program_a = parse_program(
            """
            JNS .end
            AND RBX, 0b111111000000
            MOV RCX, qword ptr [R14 + RBX]
        .end: NOP
            """
        )
        program_b = parse_program("MOV RAX, qword ptr [R14 + 128]\nADD RAX, 1")
        cases = [
            (program_a, generator.generate(12)),
            (program_b, generator.generate(12)),
        ]
        batched = pipeline.test_programs(cases)
        fresh = TestingPipeline(quick_config())
        for outcome, (program, inputs) in zip(batched, cases):
            reference = fresh.test_program(program, inputs)
            assert outcome is not None
            assert outcome.ctraces == reference.ctraces
            assert [t.signals for t in outcome.htraces] == [
                t.signals for t in reference.htraces
            ]
            assert len(outcome.analysis.candidates) == len(
                reference.analysis.candidates
            )

    def test_faulting_case_skipped_in_batch(self):
        pipeline = TestingPipeline(quick_config())
        generator = InputGenerator(seed=9, layout=pipeline.layout)
        escaping = parse_program("MOV RAX, qword ptr [R14 + 1048576]")
        benign = parse_program("MOV RAX, qword ptr [R14 + 128]")
        outcomes = pipeline.test_programs(
            [(escaping, generator.generate(4)), (benign, generator.generate(4))]
        )
        assert outcomes[0] is None
        assert outcomes[1] is not None

    def test_armed_noise_forces_per_case_measurement(self):
        """An armed noise model draws from one RNG stream; batching
        would reorder measurements around swap checks and faulting
        cases, so the loop falls back to per-case — and the reports of
        both batch_measurements settings stay identical."""
        from dataclasses import replace

        from repro.executor.noise import NoiseModel

        noise = NoiseModel(spurious_rate=0.3)
        config = quick_config(
            instruction_subsets=("AR", "MEM"),
            num_test_cases=15,
            inputs_per_test_case=8,
        )
        batched = Fuzzer(replace(config, batch_measurements=True), noise).run()
        sequential = Fuzzer(
            replace(config, batch_measurements=False), noise
        ).run()
        assert batched.test_cases == sequential.test_cases
        assert batched.found == sequential.found
        assert batched.contract_emulations == sequential.contract_emulations

    def test_timeout_forces_per_case_measurement(self):
        # a timed campaign must keep checking the clock between cases:
        # the loop falls back to batch size 1 (smoke: it still runs)
        report = fuzz(
            quick_config(
                instruction_subsets=("AR",),
                num_test_cases=5,
                inputs_per_test_case=5,
                timeout_seconds=30.0,
            )
        )
        assert report.test_cases <= 5
