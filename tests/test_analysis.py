"""Tests for the static-analysis package (``repro.analysis``).

Fixpoints are checked on hand-built programs with known answers on both
ISA backends; the dead-flag elimination pass is validated byte-identical
against the unoptimized IR (contract traces, execution logs, CPU run
infos, final architectural states, and whole fuzzing reports); the
pre-screen is validated violation-identical (same campaign outcome at
the same position, every gallery gadget kept) with its safety sampling
raising loudly on a planted unsound classification; the metadata linter
is run clean over both catalogs and shown to catch deliberately
corrupted specs; and the LEA ``data_regs`` fix it originally flagged is
pinned as a regression test.
"""

from dataclasses import replace

import pytest

from repro.analysis import (
    SpeculationModel,
    TaintSeed,
    build_cfg,
    compute_def_use,
    compute_liveness,
    compute_taint,
    eliminate_dead_flags,
    reachable_within,
    speculation_sources,
    speculative_ops,
)
from repro.analysis.defuse import ENTRY
from repro.analysis.fence_advisor import advise_fences
from repro.analysis.liveness import FLAG, REG
from repro.analysis.metadata_lint import lint_architecture
from repro.analysis.prescreen import (
    ACTIVE,
    INERT,
    PrescreenResult,
    PrescreenSoundnessError,
    classify,
)
from repro.arch import architecture_names, get_architecture
from repro.contracts import get_contract
from repro.core.config import FuzzerConfig, GeneratorConfig
from repro.core.fuzzer import TestingPipeline, fuzz
from repro.core.generator import TestCaseGenerator
from repro.core.input_gen import InputGenerator
from repro.emulator.compiled import compile_program, decode_op
from repro.emulator.state import ArchState, SandboxLayout
from repro.gallery import GALLERY
from repro.uarch.config import preset
from repro.uarch.cpu import SpeculativeCPU

ARCHS = sorted(architecture_names())

X86 = get_architecture("x86_64")
A64 = get_architecture("aarch64")


def _compiled(arch, text):
    program = arch.parse_program(text)
    return program, compile_program(program, arch)


def _detect_config(**overrides):
    """A budget known to surface a V1-style violation quickly."""
    defaults = dict(
        instruction_subsets=("AR", "MEM", "CB"),
        contract_name="CT-SEQ",
        cpu_preset="skylake-v4-patched",
        num_test_cases=120,
        inputs_per_test_case=25,
        seed=7,
    )
    defaults.update(overrides)
    return FuzzerConfig(**defaults)


# -- CFG construction ---------------------------------------------------------


class TestCFG:
    def test_straight_line(self):
        _, compiled = _compiled(X86, "MOV RAX, 1\nNOP\nNOP\n")
        cfg = build_cfg(compiled)
        assert cfg.successors == ((1,), (2,), (3,))
        assert cfg.exit_index == 3
        assert not cfg.has_unresolved_flow
        assert cfg.predecessors == ((), (0,), (1,))

    def test_cond_branch_has_both_successors(self):
        _, compiled = _compiled(
            X86,
            """
            ADD RAX, RBX
            CMP RAX, 3
            JNZ .end
            ADD RBX, 1
            .end: NOP
            """,
        )
        cfg = build_cfg(compiled)
        assert cfg.successors == ((1,), (2,), (3, 4), (4,), (5,))
        assert not cfg.has_unresolved_flow

    def test_uncond_branch_has_only_its_target(self):
        _, compiled = _compiled(X86, "JMP .end\nNOP\n.end: NOP\n")
        cfg = build_cfg(compiled)
        assert cfg.successors[0] == (2,)
        assert not cfg.has_unresolved_flow

    def test_indirect_branch_is_unresolved(self):
        _, compiled = _compiled(X86, "MOV RBX, .t1\nJMP RBX\n.t1: NOP\n")
        cfg = build_cfg(compiled)
        assert cfg.has_unresolved_flow
        # conservatively every node plus exit
        assert cfg.successors[1] == (0, 1, 2, 3)

    def test_aarch64_cond_branch(self):
        _, compiled = _compiled(
            A64,
            """
            B.PL .end
            AND X1, X1, #0b111111000000
            LDR X2, [X27, X1]
            .end: NOP
            """,
        )
        cfg = build_cfg(compiled)
        assert cfg.successors == ((1, 3), (2,), (3,), (4,))
        assert not cfg.has_unresolved_flow


# -- speculation model and window reachability --------------------------------


class TestSpeculation:
    def test_model_of_contract(self):
        seq = SpeculationModel.of_contract(get_contract("CT-SEQ"))
        assert not seq.speculate_cond and not seq.speculate_bypass
        cond = SpeculationModel.of_contract(get_contract("CT-COND"))
        assert cond.speculate_cond and not cond.speculate_bypass
        bpas = SpeculationModel.of_contract(get_contract("CT-BPAS"))
        assert not bpas.speculate_cond and bpas.speculate_bypass

    def test_hardware_model(self):
        plain = SpeculationModel.hardware("P+P")
        assert plain.speculate_cond and plain.speculate_bypass
        assert not plain.speculate_assists
        assert plain.window >= 250  # ROB-dominating ceiling
        assist = SpeculationModel.hardware("P+P+A")
        assert assist.speculate_assists

    def test_sources(self):
        _, compiled = _compiled(
            X86,
            """
            JNS .end
            MOV qword ptr [R14], RAX
            MOV RBX, qword ptr [R14]
            .end: NOP
            """,
        )
        cfg = build_cfg(compiled)
        sources = {
            (source.pc, source.kind): source.entries
            for source in speculation_sources(
                cfg, SpeculationModel.hardware("P+P+A")
            )
        }
        # cond wrong path starts at either architectural successor
        assert sources[(0, "cond")] == (1, 3)
        # bypass wrong path re-runs the sequence from after the store
        assert sources[(1, "bypass")] == (2,)
        # an assist re-executes the load itself
        assert sources[(2, "assist")] == (2,)

    def test_window_bounds_reachability(self):
        _, compiled = _compiled(
            X86,
            """
            MOV qword ptr [R14], RAX
            NOP
            NOP
            MOV RCX, qword ptr [R14]
            """,
        )
        cfg = build_cfg(compiled)
        short = reachable_within(cfg, (1,), window=2)
        assert short == {1: 1, 2: 2}
        full = reachable_within(cfg, (1,), window=250)
        assert full == {1: 1, 2: 2, 3: 3}

    def test_nested_speculation_covers_wrong_paths(self):
        """A window opened by the inner branch (itself only reachable
        speculatively past the outer one) still follows CFG edges: the
        load is covered at depth 1 via the inner branch's wrong path."""
        _, compiled = _compiled(
            X86,
            """
            JNS .end
            JNZ .end
            MOV RCX, qword ptr [R14]
            .end: NOP
            """,
        )
        cfg = build_cfg(compiled)
        model = SpeculationModel(
            speculate_cond=True, speculate_bypass=False, window=250
        )
        depths = speculative_ops(cfg, model)
        assert set(depths) == {1, 2, 3}
        assert depths[2] == 1  # entry of the inner branch's wrong path


# -- liveness -----------------------------------------------------------------


class TestLiveness:
    def test_dead_flag_write_before_compare(self):
        _, compiled = _compiled(
            X86,
            """
            ADD RAX, RBX
            CMP RAX, 3
            JNZ .end
            ADD RBX, 1
            .end: NOP
            """,
        )
        cfg = build_cfg(compiled)
        liveness = compute_liveness(cfg)
        # op0's flags are overwritten by CMP before any read; CMP's own
        # flags are read by JNZ; op3's flags reach the exit (everything
        # is live at exit), so only op0 is dead
        assert liveness.dead_flag_writes(cfg) == [0]
        assert "ZF" in liveness.live_flags_out(1)
        # every register is live at exit, hence live throughout
        assert "RAX" in liveness.live_regs_out(0)

    def test_everything_live_at_exit(self):
        _, compiled = _compiled(X86, "ADD RAX, RBX\n")
        cfg = build_cfg(compiled)
        liveness = compute_liveness(cfg)
        assert liveness.dead_flag_writes(cfg) == []
        gprs = {name for kind, name in liveness.live_out[0] if kind == REG}
        assert gprs == set(X86.registers.gpr_names)
        flags = {name for kind, name in liveness.live_out[0] if kind == FLAG}
        assert flags == set(X86.registers.flag_bits)

    def test_aarch64_dead_flag_write(self):
        _, compiled = _compiled(
            A64,
            """
            ADDS X1, X2, #1
            CMP X1, #3
            B.NE .end
            NOP
            .end: NOP
            """,
        )
        cfg = build_cfg(compiled)
        liveness = compute_liveness(cfg)
        assert liveness.dead_flag_writes(cfg) == [0]


# -- taint --------------------------------------------------------------------


class TestTaint:
    def test_loads_taint_their_destinations(self):
        _, compiled = _compiled(
            X86,
            """
            MOV RAX, 5
            MOV RBX, qword ptr [R14]
            MOV RCX, RBX
            NOP
            """,
        )
        cfg = build_cfg(compiled)
        taint = compute_taint(cfg, TaintSeed())
        assert not taint.reg_tainted(1, "RAX")  # imm write, untainted
        assert taint.reg_tainted(2, "RBX")  # load destination
        assert taint.reg_tainted(3, "RCX")  # propagated through MOV

    def test_full_width_write_untaints(self):
        _, compiled = _compiled(X86, "MOV RAX, 0\nNOP\n")
        cfg = build_cfg(compiled)
        taint = compute_taint(cfg, TaintSeed.all_inputs(X86))
        assert taint.reg_tainted(0, "RAX")  # seeded at entry
        assert not taint.reg_tainted(1, "RAX")  # strongly untainted

    def test_address_and_condition_queries(self):
        _, compiled = _compiled(
            A64,
            """
            LDR X1, [X27, X2]
            CMP X1, #0
            B.NE .end
            .end: NOP
            """,
        )
        cfg = build_cfg(compiled)
        taint = compute_taint(cfg, TaintSeed.all_inputs(A64))
        assert taint.address_tainted(0, cfg.ops[0])
        assert taint.condition_tainted(2, cfg.ops[2])


# -- reaching definitions / def-use -------------------------------------------


class TestDefUse:
    def test_chains_merge_across_branches(self):
        _, compiled = _compiled(
            X86,
            """
            MOV RAX, 1
            JNZ .skip
            MOV RAX, 2
            .skip: MOV RBX, RAX
            """,
        )
        cfg = build_cfg(compiled)
        defuse = compute_def_use(cfg)
        reaching = defuse.defs_of_use[3][(REG, "RAX")]
        assert reaching == {(0, (REG, "RAX")), (2, (REG, "RAX"))}
        assert defuse.uses_of_def(0) == {3}
        assert defuse.uses_of_def(2) == {3}

    def test_entry_definition_reaches_unwritten_uses(self):
        _, compiled = _compiled(X86, "ADD RAX, RBX\n")
        cfg = build_cfg(compiled)
        defuse = compute_def_use(cfg)
        assert defuse.defs_of_use[0][(REG, "RBX")] == {
            (ENTRY, (REG, "RBX"))
        }

    def test_strong_kill_hides_older_def(self):
        _, compiled = _compiled(
            X86, "MOV RAX, 1\nMOV RAX, 2\nMOV RBX, RAX\n"
        )
        cfg = build_cfg(compiled)
        defuse = compute_def_use(cfg)
        assert defuse.defs_of_use[2][(REG, "RAX")] == {(1, (REG, "RAX"))}
        assert defuse.uses_of_def(0) == frozenset()


# -- dead-flag elimination ----------------------------------------------------


def _random_programs(arch, seed, count):
    layout = SandboxLayout()
    generator = TestCaseGenerator(
        arch.instruction_subset(["AR", "MEM", "CB"]),
        GeneratorConfig(
            instructions_per_test=14, basic_blocks=3, memory_accesses=4
        ),
        layout,
        seed=seed,
        arch=arch,
    )
    return layout, [generator.generate() for _ in range(count)]


class TestDeadFlagElimination:
    def test_optimizes_the_known_dead_write(self):
        _, compiled = _compiled(
            X86,
            """
            ADD RAX, RBX
            CMP RAX, 3
            JNZ .end
            ADD RBX, 1
            .end: NOP
            """,
        )
        report = eliminate_dead_flags(compiled)
        assert report.optimized == (0,)
        assert report.skipped == ()
        # metadata stays untouched: only the run closure is swapped
        assert report.program.ops[0].flags_written == compiled.ops[0].flags_written
        assert report.program.ops[0].run is not compiled.ops[0].run

    def test_refuses_unresolved_flow(self):
        _, compiled = _compiled(X86, "MOV RBX, .t1\nJMP RBX\n.t1: NOP\n")
        report = eliminate_dead_flags(compiled)
        assert report.program is compiled
        assert report.optimized == ()

    def test_leaves_interpretive_programs_alone(self):
        program = X86.parse_program("ADD RAX, RBX\nCMP RAX, 3\nNOP\n")
        compiled = compile_program(program, X86, interpretive=True)
        report = eliminate_dead_flags(compiled)
        assert report.program is compiled

    @pytest.mark.parametrize("arch_name", ARCHS)
    def test_byte_identical_on_random_programs(self, arch_name):
        """Optimized vs unoptimized IR: identical contract traces and
        logs (speculative clauses included), identical CPU run infos,
        identical final architectural states."""
        arch = get_architecture(arch_name)
        layout, programs = _random_programs(arch, seed=61, count=6)
        contracts = [get_contract("CT-SEQ"), get_contract("CT-COND-BPAS")]
        optimized_any = 0
        for trial, program in enumerate(programs):
            compiled = compile_program(program, arch)
            report = eliminate_dead_flags(compiled)
            optimized_any += len(report.optimized)
            inputs = InputGenerator(
                seed=trial,
                layout=layout,
                registers=arch.default_register_pool,
                flag_bits=arch.registers.flag_bits,
            ).generate(2)
            for contract in contracts:
                for input_data in inputs:
                    ref = contract.collect_trace_and_log(
                        program, input_data, layout, arch, compiled
                    )
                    new = contract.collect_trace_and_log(
                        program, input_data, layout, arch, report.program
                    )
                    assert new[0] == ref[0]
                    assert new[1].entries == ref[1].entries
            infos = {}
            for key, runnable in (("ref", compiled), ("opt", report.program)):
                cpu = SpeculativeCPU(preset("skylake"), layout, arch)
                cpu.reset_context()
                infos[key] = [cpu.run(runnable, i) for i in inputs]
            assert infos["opt"] == infos["ref"]
            states = {}
            for key, runnable in (("ref", compiled), ("opt", report.program)):
                state = ArchState(layout, arch)
                state.load_input(inputs[0])
                pc = 0
                while 0 <= pc < len(runnable.ops):
                    pc = runnable.ops[pc].run(state).next_pc
                states[key] = state
            assert states["opt"].registers == states["ref"].registers
            assert states["opt"].flags == states["ref"].flags
            assert states["opt"].memory == states["ref"].memory
        assert optimized_any > 0  # the property actually exercised the pass

    def test_fuzzing_report_identical_with_knob(self):
        config = _detect_config()
        baseline = fuzz(replace(config, optimize_dead_flags=False))
        optimized = fuzz(replace(config, optimize_dead_flags=True))
        assert optimized.found == baseline.found
        assert optimized.test_cases == baseline.test_cases
        assert optimized.inputs_tested == baseline.inputs_tested
        assert optimized.mean_effectiveness == baseline.mean_effectiveness
        if baseline.found:
            assert (
                optimized.violation.test_cases_until_found
                == baseline.violation.test_cases_until_found
            )
            assert (
                optimized.violation.classification
                == baseline.violation.classification
            )


# -- static leak pre-screen ---------------------------------------------------


def _classify_gadget(name):
    entry = GALLERY[name]
    config = FuzzerConfig(
        arch=entry.arch,
        contract_name=entry.contract,
        cpu_preset=entry.cpu_preset,
        executor_mode=entry.executor_mode,
        analyzer_mode=entry.analyzer_mode,
    )
    pipeline = TestingPipeline(config)
    compiled = compile_program(entry.program(), pipeline.arch)
    return classify(compiled, pipeline.contract, entry.executor_mode)


class TestPrescreen:
    def test_every_gallery_gadget_is_active(self):
        """No handwritten violation may ever be screened out."""
        for name in GALLERY:
            result = _classify_gadget(name)
            assert result.verdict == ACTIVE, (name, result.reason)

    def test_spectre_v1_fires_tainted_window_access(self):
        result = _classify_gadget("spectre-v1")
        assert result.reason == "tainted-window-access"

    def test_indirect_flow_is_always_active(self):
        result = _classify_gadget("spectre-v2")
        assert result.reason == "unresolved-flow"

    def test_accessless_windows_are_inert(self):
        _, compiled = _compiled(X86, "JNZ .end\nMOV RAX, 17\n.end: NOP\n")
        result = classify(compiled, get_contract("CT-SEQ"))
        assert result.verdict == INERT
        assert result.reason == "no-speculative-leak"

    def test_straight_line_is_inert(self):
        _, compiled = _compiled(X86, "MOV RAX, 1\nADD RAX, RBX\nNOP\n")
        assert classify(compiled, get_contract("CT-SEQ")).verdict == INERT

    def test_pc_blind_clause_keeps_tainted_branches(self):
        """Under a clause that hides the pc, the architectural path can
        vary unobserved, so a tainted branch alone must stay ACTIVE —
        while a pc-exposing clause screens the same program."""
        _, compiled = _compiled(
            X86, "CMP RAX, 1\nJNZ .end\nNOP\n.end: NOP\n"
        )
        blind = classify(compiled, get_contract("MEM-SEQ"))
        assert blind.verdict == ACTIVE
        assert blind.reason == "pc-blind-tainted-branch"
        seeing = classify(compiled, get_contract("CT-SEQ"))
        assert seeing.verdict == INERT

    def test_speculative_tainted_access_is_active(self):
        _, compiled = _compiled(
            X86,
            """
            JNS .end
            AND RBX, 0b111111000000
            MOV RCX, qword ptr [R14 + RBX]
            .end: NOP
            """,
        )
        result = classify(compiled, get_contract("CT-SEQ"))
        assert result.verdict == ACTIVE
        assert result.reason == "tainted-window-access"

    def test_campaign_is_violation_identical(self):
        config = _detect_config()
        baseline = fuzz(replace(config, prescreen=False))
        screened = fuzz(replace(config, prescreen=True))
        assert baseline.found and screened.found
        assert screened.test_cases == baseline.test_cases
        assert (
            screened.violation.test_cases_until_found
            == baseline.violation.test_cases_until_found
        )
        assert (
            screened.violation.classification
            == baseline.violation.classification
        )

    def test_safety_sampling_raises_on_unsound_screen(self, monkeypatch):
        """Plant an (unsound) always-INERT classifier: the safety
        sampling must measure the violating case anyway and fail the
        run loudly instead of silently losing the violation."""
        import repro.core.fuzzer as fuzzer_module

        monkeypatch.setattr(
            fuzzer_module,
            "prescreen_classify",
            lambda *_args, **_kwargs: PrescreenResult(INERT, "planted"),
        )
        config = _detect_config(prescreen=True, prescreen_safety_rate=1)
        with pytest.raises(PrescreenSoundnessError):
            fuzz(config)


# -- LEA metadata regression (found by the linter) ----------------------------


class TestLeaMetadataRegression:
    def test_agen_registers_are_data_dependencies(self):
        """LEA's base/index feed an address *computation* whose result
        lands in a register — no memory access happens, so they must be
        in data_regs (and the read partition must hold). The linter
        originally flagged this as unpartitioned."""
        program = X86.parse_program("LEA RAX, [R14 + RBX + 8]\n")
        instruction = next(program.all_instructions())
        op = decode_op(instruction, 0, X86, {})
        assert op.addr_regs == frozenset()  # LEA touches no memory
        assert {"R14", "RBX"} <= set(op.data_regs)
        assert set(op.registers_read) == set(op.addr_regs) | set(op.data_regs)
        assert not op.is_load and not op.is_store

    def test_linter_accepts_all_lea_forms(self):
        lea_specs = [
            spec
            for spec in X86.instruction_set.specs
            if spec.mnemonic == "LEA"
        ]
        assert lea_specs
        assert lint_architecture(X86, trials=3, specs=lea_specs) == []


# -- metadata linter ----------------------------------------------------------


class TestMetadataLint:
    @pytest.mark.parametrize("arch_name", ARCHS)
    def test_full_catalog_is_clean(self, arch_name):
        arch = get_architecture(arch_name)
        assert lint_architecture(arch, trials=1) == []

    def _spec(self, mnemonic):
        for spec in X86.instruction_set.specs:
            if spec.mnemonic == mnemonic and all(
                template.kind == "REG" for template in spec.operands
            ):
                return spec
        raise AssertionError(f"no all-register {mnemonic} form")

    def test_catches_undeclared_flag_write(self):
        corrupted = replace(self._spec("ADD"), flags_written=())
        findings = lint_architecture(X86, trials=3, specs=[corrupted])
        assert any(f.invariant == "undeclared-write" for f in findings)

    def test_catches_undeclared_flag_read(self):
        corrupted = replace(self._spec("ADC"), flags_read=())
        findings = lint_architecture(X86, trials=3, specs=[corrupted])
        assert any(f.invariant == "undeclared-read" for f in findings)

    def test_catches_undeclared_register_read(self):
        spec = self._spec("ADD")
        stripped = tuple(
            replace(template, src=False) if not template.dest else template
            for template in spec.operands
        )
        corrupted = replace(spec, operands=stripped)
        findings = lint_architecture(X86, trials=3, specs=[corrupted])
        assert any(f.invariant == "undeclared-read" for f in findings)


# -- fence advisor ------------------------------------------------------------


class TestFenceAdvisor:
    def test_spectre_v1_advice_targets_the_leak(self):
        entry = GALLERY["spectre-v1"]
        program = entry.program()
        compiled = compile_program(program, X86)
        plan = advise_fences(compiled, program)
        assert not plan.empty
        # the speculative load (linear pc 2) is the leaking access, fed
        # by the AND masking its index (linear pc 1)
        assert plan.leak_ops == (2,)
        assert 1 in plan.feeding_defs
        blocks = program.blocks
        for block_index, body_index in plan.positions:
            assert 0 <= block_index < len(blocks)
            assert 0 <= body_index <= len(blocks[block_index].body)

    def test_no_advice_without_speculative_leaks(self):
        program, compiled = _compiled(X86, "MOV RAX, 1\nADD RAX, RBX\n")
        assert advise_fences(compiled, program).empty

    def test_no_advice_with_unresolved_flow(self):
        program, compiled = _compiled(
            X86, "MOV RBX, .t1\nJMP RBX\n.t1: NOP\n"
        )
        assert advise_fences(compiled, program).empty
