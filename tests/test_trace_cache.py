"""Tests for contract-trace memoization: fingerprints, LRU behavior,
and the pipeline integration (cache hits skip model emulations without
changing any collected trace)."""

import multiprocessing
import os

import pytest

from repro.isa.assembler import parse_program
from repro.emulator.state import InputData
from repro.contracts import get_contract
from repro.core.config import FuzzerConfig
from repro.core.fuzzer import TestingPipeline
from repro.core.input_gen import InputGenerator
from repro.core.trace_cache import (
    ContractTraceCache,
    PersistentTraceCache,
    input_identity,
    key_digest,
    make_trace_cache,
    program_fingerprint,
)

V1 = """
    JNS .end
    AND RBX, 0b111111000000
    MOV RCX, qword ptr [R14 + RBX]
.end: NOP
"""


def cached_config(**overrides):
    defaults = dict(
        contract_name="CT-SEQ",
        cpu_preset="skylake-v4-patched",
        contract_trace_cache=True,
        seed=0,
    )
    defaults.update(overrides)
    return FuzzerConfig(**defaults)


class TestFingerprints:
    def test_clone_shares_fingerprint(self):
        program = parse_program(V1)
        assert program_fingerprint(program) == program_fingerprint(
            program.clone()
        )

    def test_mutation_changes_fingerprint(self):
        program = parse_program(V1)
        mutated = program.clone()
        del mutated.blocks[1].body[0]
        assert program_fingerprint(program) != program_fingerprint(mutated)

    def test_input_identity_covers_content(self):
        # same (missing) seed, different content: identities must differ
        a = InputData(registers={"RAX": 0})
        b = InputData(registers={"RAX": 64})
        assert input_identity(a) != input_identity(b)
        assert input_identity(a) == input_identity(
            InputData(registers={"RAX": 0})
        )


class TestLRU:
    def test_roundtrip_and_stats(self):
        cache = ContractTraceCache(max_entries=8)
        assert cache.get(("k", None, 0, ("CT-SEQ", 250, 1))) is None
        cache.put(("k", None, 0, ("CT-SEQ", 250, 1)), ("trace", "log"))
        assert cache.get(("k", None, 0, ("CT-SEQ", 250, 1))) == (
            "trace",
            "log",
        )
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert len(cache) == 1

    def test_least_recently_used_evicted_first(self):
        cache = ContractTraceCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now the LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats.evictions == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ContractTraceCache(max_entries=0)

    def test_clear(self):
        cache = ContractTraceCache()
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0

    def test_nesting_depth_separates_keys(self):
        """The §5.4 revalidation runs the same-named contract with deeper
        nesting; its traces must never collide with the base model's."""
        cache = ContractTraceCache()
        contract = get_contract("CT-COND")
        fingerprint = program_fingerprint(parse_program(V1))
        input_data = InputData()
        assert cache.key(fingerprint, input_data, contract) != cache.key(
            fingerprint, input_data, contract.with_nesting(3)
        )


KEY = ("fp", None, "digest", ("CT-SEQ", 250, 1))
OTHER_KEY = ("fp2", 7, "digest2", ("CT-COND", 250, 3))


def _populate_from_child(cache_dir):
    """Child-process body: publish one entry into the shared cache."""
    PersistentTraceCache(cache_dir).put(KEY, ("trace", "log"))


class TestPersistentCache:
    def test_roundtrip_through_disk(self, tmp_path):
        writer = PersistentTraceCache(str(tmp_path))
        writer.put(KEY, ("trace", "log"))
        assert writer.stats.disk_writes == 1
        # a fresh instance (cold memory tier) resolves from disk ...
        reader = PersistentTraceCache(str(tmp_path))
        assert reader.get(KEY) == ("trace", "log")
        assert reader.stats.disk_hits == 1
        # ... and promotes the entry, so the next hit is memory-tier
        assert reader.get(KEY) == ("trace", "log")
        assert reader.stats.hits == 2
        assert reader.stats.disk_hits == 1

    def test_miss_on_unknown_key(self, tmp_path):
        cache = PersistentTraceCache(str(tmp_path))
        assert cache.get(OTHER_KEY) is None
        assert cache.stats.misses == 1

    def test_disk_entries_and_clear_semantics(self, tmp_path):
        cache = PersistentTraceCache(str(tmp_path))
        cache.put(KEY, ("trace", "log"))
        cache.put(OTHER_KEY, ("trace2", "log2"))
        assert cache.disk_entries() == 2
        cache.clear()  # memory only; the disk tier persists
        assert len(cache) == 0
        assert cache.disk_entries() == 2
        assert cache.get(KEY) == ("trace", "log")
        cache.clear_disk()
        assert cache.disk_entries() == 0

    def test_clear_disk_sweeps_orphaned_temp_files(self, tmp_path):
        # a writer killed between mkstemp and os.replace leaves a
        # .tmp-* file behind; clear_disk must sweep those too
        cache = PersistentTraceCache(str(tmp_path))
        orphan_dir = tmp_path / "ab"
        orphan_dir.mkdir()
        orphan = orphan_dir / ".tmp-killed-writer"
        orphan.write_bytes(b"partial")
        cache.clear_disk()
        assert not orphan.exists()

    def test_unpicklable_entry_degrades_to_memory_only(self, tmp_path):
        cache = PersistentTraceCache(str(tmp_path))
        unpicklable = (lambda: None, "log")
        cache.put(KEY, unpicklable)  # must not raise mid-fuzz
        assert cache.get(KEY) == unpicklable  # memory tier still serves
        assert cache.disk_entries() == 0
        assert not any(  # and no temp file leaked
            name.startswith(".tmp-")
            for _root, _dirs, files in os.walk(tmp_path)
            for name in files
        )

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = PersistentTraceCache(str(tmp_path))
        cache.put(KEY, ("trace", "log"))
        digest = key_digest(KEY)
        path = tmp_path / digest[:2] / (digest + ".trace")
        path.write_bytes(b"torn write")
        cache.clear()
        assert cache.get(KEY) is None
        assert not path.exists()  # the torn file was discarded
        # and the slot is writable again
        cache.put(KEY, ("trace", "log"))
        assert PersistentTraceCache(str(tmp_path)).get(KEY) == (
            "trace", "log"
        )

    def test_digest_collision_degrades_to_miss(self, tmp_path):
        # simulate two keys hashing to one file: the stored key wins,
        # the other key misses instead of reading a wrong trace
        cache = PersistentTraceCache(str(tmp_path))
        cache.put(KEY, ("trace", "log"))
        source = cache._path(KEY)
        target = cache._path(OTHER_KEY)
        os.makedirs(os.path.dirname(target), exist_ok=True)
        os.replace(source, target)
        cache.clear()
        assert cache.get(OTHER_KEY) is None

    def test_existing_entry_not_rewritten(self, tmp_path):
        first = PersistentTraceCache(str(tmp_path))
        first.put(KEY, ("trace", "log"))
        second = PersistentTraceCache(str(tmp_path))
        second.put(KEY, ("trace", "log"))
        assert second.stats.disk_writes == 0

    def test_entry_written_by_another_process_is_visible(self, tmp_path):
        context = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        child = context.Process(
            target=_populate_from_child, args=(str(tmp_path),)
        )
        child.start()
        child.join()
        assert child.exitcode == 0
        cache = PersistentTraceCache(str(tmp_path))
        assert cache.get(KEY) == ("trace", "log")
        assert cache.stats.disk_hits == 1

    def test_memory_tier_still_bounded(self, tmp_path):
        cache = PersistentTraceCache(str(tmp_path), max_entries=2)
        for index in range(4):
            cache.put((f"fp{index}", None, "d", ("CT-SEQ", 250, 1)), index)
        assert len(cache) == 2
        assert cache.stats.evictions == 2
        assert cache.disk_entries() == 4  # disk keeps everything


def _numbered_key(index):
    return (f"fp{index}", None, "digest", ("CT-SEQ", 250, 1))


def _write_entries_from_child(cache_dir, max_bytes, start, count):
    """Child-process body: publish many entries under a GC bound."""
    cache = PersistentTraceCache(cache_dir, max_bytes=max_bytes)
    for index in range(start, start + count):
        cache.put(_numbered_key(index), ("payload" * 64, "log"))


class TestDiskGC:
    PAYLOAD = ("payload" * 64, "log")

    def _entry_size(self, tmp_path):
        probe = PersistentTraceCache(str(tmp_path / "probe"))
        probe.put(_numbered_key(0), self.PAYLOAD)
        return probe.disk_usage_bytes()

    def test_invalid_max_bytes(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            PersistentTraceCache(str(tmp_path), max_bytes=0)

    def test_unbounded_cache_never_collects(self, tmp_path):
        cache = PersistentTraceCache(str(tmp_path))
        for index in range(32):
            cache.put(_numbered_key(index), self.PAYLOAD)
        assert cache.stats.gc_runs == 0
        assert cache.disk_entries() == 32

    def test_put_enforces_the_bound(self, tmp_path):
        bound = 6 * self._entry_size(tmp_path)
        cache = PersistentTraceCache(str(tmp_path), max_bytes=bound)
        for index in range(50):
            cache.put(_numbered_key(index), self.PAYLOAD)
            assert cache.disk_usage_bytes() <= bound
        assert cache.stats.gc_runs > 0
        assert cache.stats.gc_evicted_entries > 0
        assert cache.stats.gc_evicted_bytes > 0
        assert cache.disk_entries() < 50

    def test_eviction_order_is_lru_by_mtime(self, tmp_path):
        cache = PersistentTraceCache(str(tmp_path))
        now = os.path.getmtime(str(tmp_path))
        for index, age in enumerate((400, 300, 200, 100)):
            key = _numbered_key(index)
            cache.put(key, self.PAYLOAD)
            os.utime(cache._path(key), (now - age, now - age))
        entry_size = cache.disk_usage_bytes() // 4
        # room for two entries (after headroom): the two oldest go
        evicted, freed = cache.gc(max_bytes=3 * entry_size)
        assert evicted == 2
        assert freed == 2 * entry_size
        remaining = {
            index
            for index in range(4)
            if os.path.exists(cache._path(_numbered_key(index)))
        }
        assert remaining == {2, 3}  # the most recently touched survive

    def test_disk_hit_refreshes_recency(self, tmp_path):
        writer = PersistentTraceCache(str(tmp_path), max_bytes=1 << 30)
        now = os.path.getmtime(str(tmp_path))
        for index in range(2):
            key = _numbered_key(index)
            writer.put(key, self.PAYLOAD)
            os.utime(writer._path(key), (now - 500 + index, now - 500 + index))
        # a cold reader hits entry 0 on disk, refreshing its mtime ...
        reader = PersistentTraceCache(str(tmp_path), max_bytes=1 << 30)
        assert reader.get(_numbered_key(0)) == self.PAYLOAD
        # ... so the GC now evicts entry 1 (older use) first: the bound
        # is just under two entries, and the 75% headroom target then
        # asks for one eviction
        entry_size = reader.disk_usage_bytes() // 2
        reader.gc(max_bytes=2 * entry_size - 1)
        assert os.path.exists(reader._path(_numbered_key(0)))
        assert not os.path.exists(reader._path(_numbered_key(1)))

    def test_evicted_entry_degrades_to_miss_and_is_rewritable(self, tmp_path):
        cache = PersistentTraceCache(str(tmp_path), max_bytes=1 << 30)
        cache.put(_numbered_key(0), self.PAYLOAD)
        cache.gc(max_bytes=1)  # evict everything
        cache.clear()  # drop the memory tier too
        assert cache.get(_numbered_key(0)) is None
        cache.put(_numbered_key(0), self.PAYLOAD)
        assert PersistentTraceCache(str(tmp_path)).get(
            _numbered_key(0)
        ) == self.PAYLOAD

    def test_gc_sweeps_stale_tmp_orphans_only(self, tmp_path):
        cache = PersistentTraceCache(str(tmp_path), max_bytes=1 << 30)
        orphan_dir = tmp_path / "ab"
        orphan_dir.mkdir()
        stale = orphan_dir / ".tmp-killed-writer"
        stale.write_bytes(b"partial")
        old = os.path.getmtime(str(stale)) - 2 * cache.TMP_GRACE_SECONDS
        os.utime(str(stale), (old, old))
        fresh = orphan_dir / ".tmp-in-flight"
        fresh.write_bytes(b"partial")
        cache.gc()
        assert not stale.exists()
        assert fresh.exists()  # presumed to belong to a live writer

    def test_concurrent_writers_respect_the_bound(self, tmp_path):
        bound = 8 * self._entry_size(tmp_path)
        cache_dir = str(tmp_path / "shared")
        context = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        children = [
            context.Process(
                target=_write_entries_from_child,
                args=(cache_dir, bound, start, 40),
            )
            for start in (0, 1000, 2000)
        ]
        for child in children:
            child.start()
        for child in children:
            child.join()
            assert child.exitcode == 0
        # cooperative enforcement plus a finalizing pass (what campaign
        # runs and the sweep runner do) leaves the tier within bounds
        cache = PersistentTraceCache(cache_dir, max_bytes=bound)
        cache.gc()
        assert cache.disk_usage_bytes() <= bound

    def test_make_trace_cache_passes_the_bound(self, tmp_path):
        cache = make_trace_cache(False, str(tmp_path), 16, 4096)
        assert isinstance(cache, PersistentTraceCache)
        assert cache.max_bytes == 4096
        assert make_trace_cache(True, None, 16, 4096).max_entries == 16


class TestCompression:
    """zlib compression of disk entries (``--cache-compress``)."""

    #: redundant payload so compression visibly shrinks the footprint
    PAYLOAD = ("observation " * 256, "log")

    @staticmethod
    def _entry_paths(tmp_path):
        return [
            os.path.join(root, name)
            for root, _dirs, files in os.walk(tmp_path)
            for name in files
            if name.endswith(".trace")
        ]

    def test_compressed_roundtrip(self, tmp_path):
        writer = PersistentTraceCache(str(tmp_path), compress=True)
        writer.put(KEY, self.PAYLOAD)
        [path] = self._entry_paths(tmp_path)
        with open(path, "rb") as handle:
            assert handle.read(5) == PersistentTraceCache.COMPRESSED_MAGIC
        reader = PersistentTraceCache(str(tmp_path), compress=True)
        assert reader.get(KEY) == self.PAYLOAD
        assert reader.stats.disk_hits == 1

    def test_uncompressed_cache_reads_compressed_entries(self, tmp_path):
        PersistentTraceCache(str(tmp_path), compress=True).put(
            KEY, self.PAYLOAD
        )
        legacy_reader = PersistentTraceCache(str(tmp_path))
        assert legacy_reader.get(KEY) == self.PAYLOAD
        assert legacy_reader.stats.disk_hits == 1

    def test_compressed_cache_reads_legacy_entries(self, tmp_path):
        PersistentTraceCache(str(tmp_path)).put(KEY, self.PAYLOAD)
        reader = PersistentTraceCache(str(tmp_path), compress=True)
        assert reader.get(KEY) == self.PAYLOAD
        assert reader.stats.disk_hits == 1

    def test_compression_shrinks_the_footprint(self, tmp_path):
        plain = PersistentTraceCache(str(tmp_path / "plain"))
        packed = PersistentTraceCache(str(tmp_path / "packed"),
                                      compress=True)
        plain.put(KEY, self.PAYLOAD)
        packed.put(KEY, self.PAYLOAD)
        assert packed.disk_usage_bytes() < plain.disk_usage_bytes() / 2

    def test_gc_accounts_compressed_sizes(self, tmp_path):
        # a bound that holds few uncompressed entries holds many
        # compressed ones: the GC accounting must see compressed sizes
        probe = PersistentTraceCache(str(tmp_path / "probe"),
                                     compress=True)
        probe.put(_numbered_key(0), self.PAYLOAD)
        compressed_size = probe.disk_usage_bytes()
        bound = compressed_size * 6
        cache = PersistentTraceCache(str(tmp_path / "bounded"),
                                     max_bytes=bound, compress=True)
        for index in range(5):
            cache.put(_numbered_key(index), self.PAYLOAD)
        assert cache.stats.gc_evicted_entries == 0
        assert cache.disk_entries() == 5
        assert cache.known_disk_bytes() <= bound

    def test_corrupt_compressed_entry_degrades_to_miss(self, tmp_path):
        cache = PersistentTraceCache(str(tmp_path), compress=True)
        cache.put(KEY, self.PAYLOAD)
        [path] = self._entry_paths(tmp_path)
        with open(path, "wb") as handle:
            handle.write(PersistentTraceCache.COMPRESSED_MAGIC + b"torn")
        fresh = PersistentTraceCache(str(tmp_path), compress=True)
        assert fresh.get(KEY) is None  # miss, and best-effort deletion
        assert not self._entry_paths(tmp_path)


class TestMakeTraceCache:
    def test_disabled(self):
        assert make_trace_cache(False, None, 16) is None

    def test_memory_only(self):
        cache = make_trace_cache(True, None, 16)
        assert type(cache) is ContractTraceCache
        assert cache.max_entries == 16

    def test_cache_dir_implies_persistent(self, tmp_path):
        cache = make_trace_cache(False, str(tmp_path), 16)
        assert isinstance(cache, PersistentTraceCache)
        assert cache.cache_dir == str(tmp_path)

    def test_compress_knob_reaches_the_persistent_tier(self, tmp_path):
        cache = make_trace_cache(False, str(tmp_path), 16, None, True)
        assert isinstance(cache, PersistentTraceCache)
        assert cache.compress is True
        assert make_trace_cache(False, str(tmp_path), 16).compress is False


class TestPipelineIntegration:
    def test_repeat_collection_is_served_from_cache(self):
        pipeline = TestingPipeline(cached_config())
        program = parse_program(V1)
        inputs = InputGenerator(seed=3, layout=pipeline.layout).generate(8)
        first_traces, first_logs = pipeline.collect_contract_traces(
            program, inputs
        )
        assert pipeline.contract_emulations == 8
        second_traces, second_logs = pipeline.collect_contract_traces(
            program, inputs
        )
        assert pipeline.contract_emulations == 8  # no new emulations
        assert pipeline.trace_cache.stats.hits == 8
        assert second_traces == first_traces
        assert [len(log) for log in second_logs] == [
            len(log) for log in first_logs
        ]

    def test_cache_does_not_change_traces(self):
        program = parse_program(V1)
        cached = TestingPipeline(cached_config())
        plain = TestingPipeline(cached_config(contract_trace_cache=False))
        assert plain.trace_cache is None
        inputs = InputGenerator(seed=5, layout=cached.layout).generate(12)
        assert cached.collect_contract_traces(program, inputs)[0] == (
            plain.collect_contract_traces(program, inputs)[0]
        )

    def test_persistent_cache_shared_between_pipelines(self, tmp_path):
        program = parse_program(V1)
        first = TestingPipeline(
            cached_config(contract_trace_cache=False,
                          trace_cache_dir=str(tmp_path))
        )
        inputs = InputGenerator(seed=3, layout=first.layout).generate(8)
        reference, _ = first.collect_contract_traces(program, inputs)
        assert first.contract_emulations == 8
        # a second pipeline (fresh memory tier) re-collects without a
        # single model emulation, with identical traces
        second = TestingPipeline(
            cached_config(contract_trace_cache=False,
                          trace_cache_dir=str(tmp_path))
        )
        replayed, _ = second.collect_contract_traces(program, inputs)
        assert second.contract_emulations == 0
        assert second.trace_cache.stats.disk_hits == 8
        assert replayed == reference

    def test_check_violation_identical_with_cache(self):
        program = parse_program(V1)
        cached = TestingPipeline(cached_config())
        plain = TestingPipeline(cached_config(contract_trace_cache=False))
        inputs = InputGenerator(seed=42, layout=cached.layout).generate(40)
        from_cache = cached.check_violation(program, inputs, confirm=True)
        from_plain = plain.check_violation(program, inputs, confirm=True)
        assert from_cache is not None and from_plain is not None
        assert (from_cache.position_a, from_cache.position_b) == (
            from_plain.position_a,
            from_plain.position_b,
        )
        # re-checking the same case is fully served from the cache ...
        emulations_after_first = cached.contract_emulations
        repeat = cached.check_violation(program, inputs, confirm=True)
        assert cached.contract_emulations == emulations_after_first
        # ... with the identical verdict
        assert (repeat.position_a, repeat.position_b) == (
            from_cache.position_a,
            from_cache.position_b,
        )
