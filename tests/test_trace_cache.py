"""Tests for contract-trace memoization: fingerprints, LRU behavior,
and the pipeline integration (cache hits skip model emulations without
changing any collected trace)."""

import pytest

from repro.isa.assembler import parse_program
from repro.emulator.state import InputData
from repro.contracts import get_contract
from repro.core.config import FuzzerConfig
from repro.core.fuzzer import TestingPipeline
from repro.core.input_gen import InputGenerator
from repro.core.trace_cache import (
    ContractTraceCache,
    input_identity,
    program_fingerprint,
)

V1 = """
    JNS .end
    AND RBX, 0b111111000000
    MOV RCX, qword ptr [R14 + RBX]
.end: NOP
"""


def cached_config(**overrides):
    defaults = dict(
        contract_name="CT-SEQ",
        cpu_preset="skylake-v4-patched",
        contract_trace_cache=True,
        seed=0,
    )
    defaults.update(overrides)
    return FuzzerConfig(**defaults)


class TestFingerprints:
    def test_clone_shares_fingerprint(self):
        program = parse_program(V1)
        assert program_fingerprint(program) == program_fingerprint(
            program.clone()
        )

    def test_mutation_changes_fingerprint(self):
        program = parse_program(V1)
        mutated = program.clone()
        del mutated.blocks[1].body[0]
        assert program_fingerprint(program) != program_fingerprint(mutated)

    def test_input_identity_covers_content(self):
        # same (missing) seed, different content: identities must differ
        a = InputData(registers={"RAX": 0})
        b = InputData(registers={"RAX": 64})
        assert input_identity(a) != input_identity(b)
        assert input_identity(a) == input_identity(
            InputData(registers={"RAX": 0})
        )


class TestLRU:
    def test_roundtrip_and_stats(self):
        cache = ContractTraceCache(max_entries=8)
        assert cache.get(("k", None, 0, ("CT-SEQ", 250, 1))) is None
        cache.put(("k", None, 0, ("CT-SEQ", 250, 1)), ("trace", "log"))
        assert cache.get(("k", None, 0, ("CT-SEQ", 250, 1))) == (
            "trace",
            "log",
        )
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert len(cache) == 1

    def test_least_recently_used_evicted_first(self):
        cache = ContractTraceCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now the LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats.evictions == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ContractTraceCache(max_entries=0)

    def test_clear(self):
        cache = ContractTraceCache()
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0

    def test_nesting_depth_separates_keys(self):
        """The §5.4 revalidation runs the same-named contract with deeper
        nesting; its traces must never collide with the base model's."""
        cache = ContractTraceCache()
        contract = get_contract("CT-COND")
        fingerprint = program_fingerprint(parse_program(V1))
        input_data = InputData()
        assert cache.key(fingerprint, input_data, contract) != cache.key(
            fingerprint, input_data, contract.with_nesting(3)
        )


class TestPipelineIntegration:
    def test_repeat_collection_is_served_from_cache(self):
        pipeline = TestingPipeline(cached_config())
        program = parse_program(V1)
        inputs = InputGenerator(seed=3, layout=pipeline.layout).generate(8)
        first_traces, first_logs = pipeline.collect_contract_traces(
            program, inputs
        )
        assert pipeline.contract_emulations == 8
        second_traces, second_logs = pipeline.collect_contract_traces(
            program, inputs
        )
        assert pipeline.contract_emulations == 8  # no new emulations
        assert pipeline.trace_cache.stats.hits == 8
        assert second_traces == first_traces
        assert [len(log) for log in second_logs] == [
            len(log) for log in first_logs
        ]

    def test_cache_does_not_change_traces(self):
        program = parse_program(V1)
        cached = TestingPipeline(cached_config())
        plain = TestingPipeline(cached_config(contract_trace_cache=False))
        assert plain.trace_cache is None
        inputs = InputGenerator(seed=5, layout=cached.layout).generate(12)
        assert cached.collect_contract_traces(program, inputs)[0] == (
            plain.collect_contract_traces(program, inputs)[0]
        )

    def test_check_violation_identical_with_cache(self):
        program = parse_program(V1)
        cached = TestingPipeline(cached_config())
        plain = TestingPipeline(cached_config(contract_trace_cache=False))
        inputs = InputGenerator(seed=42, layout=cached.layout).generate(40)
        from_cache = cached.check_violation(program, inputs, confirm=True)
        from_plain = plain.check_violation(program, inputs, confirm=True)
        assert from_cache is not None and from_plain is not None
        assert (from_cache.position_a, from_cache.position_b) == (
            from_plain.position_a,
            from_plain.position_b,
        )
        # re-checking the same case is fully served from the cache ...
        emulations_after_first = cached.contract_emulations
        repeat = cached.check_violation(program, inputs, confirm=True)
        assert cached.contract_emulations == emulations_after_first
        # ... with the identical verdict
        assert (repeat.position_a, repeat.position_b) == (
            from_cache.position_a,
            from_cache.position_b,
        )
