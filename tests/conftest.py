"""Shared fixtures for the test suite."""

import pytest

from repro.emulator.state import InputData, SandboxLayout
from repro.uarch.config import coffee_lake, skylake


@pytest.fixture
def layout():
    return SandboxLayout()


@pytest.fixture
def skylake_config():
    return skylake()


@pytest.fixture
def skylake_patched_config():
    return skylake(v4_patch=True)


@pytest.fixture
def coffee_lake_config():
    return coffee_lake()


def make_input(registers=None, flags=None, memory=b"", seed=None):
    """Convenience input constructor used across test modules."""
    return InputData(
        registers=registers or {},
        flags=flags or {},
        memory=memory,
        seed=seed,
    )


@pytest.fixture
def input_factory():
    return make_input
