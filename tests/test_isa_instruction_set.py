"""Unit tests for the instruction catalog and subset selection."""

import pytest

from repro.isa.instruction_set import (
    CONDITION_CODES,
    CONDITION_FLAGS,
    FULL_INSTRUCTION_SET,
    canonical_condition,
    condition_of,
    instruction_subset,
    parse_subset_expression,
    subset_names,
)


class TestCatalog:
    def test_catalog_is_reasonably_large(self):
        # the paper's nanoBench-derived sets have hundreds of forms; ours
        # is the same order of magnitude
        assert len(FULL_INSTRUCTION_SET) > 300

    def test_all_condition_codes_have_branches(self):
        for code in CONDITION_CODES:
            specs = FULL_INSTRUCTION_SET.by_mnemonic(f"J{code}")
            assert len(specs) == 1, code

    def test_find_by_shape(self):
        spec = FULL_INSTRUCTION_SET.find("ADD", ("REG", "IMM"), 32)
        assert spec.mnemonic == "ADD"
        assert spec.operands[0].width == 32

    def test_find_unknown_raises(self):
        with pytest.raises(KeyError):
            FULL_INSTRUCTION_SET.find("FROB", ("REG",))

    def test_lockable_forms(self):
        spec = FULL_INSTRUCTION_SET.find("ADD", ("MEM", "REG"), 64)
        assert spec.lockable
        spec = FULL_INSTRUCTION_SET.find("CMP", ("MEM", "REG"), 64)
        assert not spec.lockable  # CMP does not write memory

    def test_spec_names_unique(self):
        names = [spec.name for spec in FULL_INSTRUCTION_SET]
        # names identify the form (mnemonic + operand shape/widths)
        assert len(names) == len(set(names))


class TestSubsets:
    def test_subset_names(self):
        assert set(subset_names()) == {"AR", "MEM", "VAR", "CB", "IND", "FENCE"}

    def test_ar_subset_has_no_memory(self):
        subset = instruction_subset(["AR"])
        assert all(not spec.has_memory_operand for spec in subset)

    def test_mem_subset_all_memory(self):
        subset = instruction_subset(["MEM"])
        assert all(spec.has_memory_operand for spec in subset)
        assert len(subset) > 100

    def test_var_subset_is_divisions(self):
        subset = instruction_subset(["VAR"])
        assert {spec.mnemonic for spec in subset} == {"DIV", "IDIV"}

    def test_cb_subset_includes_jmp(self):
        subset = instruction_subset(["CB"])
        mnemonics = {spec.mnemonic for spec in subset}
        assert "JMP" in mnemonics
        assert "JZ" in mnemonics

    def test_paper_subsets_grow_monotonically(self):
        # §6.1 lists growing instruction counts per subset
        sizes = [
            len(parse_subset_expression(expr))
            for expr in (
                "AR",
                "AR+MEM",
                "AR+MEM+VAR",
                "AR+MEM+CB",
                "AR+MEM+CB+VAR",
            )
        ]
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[1] < sizes[-1]

    def test_unknown_subset_raises(self):
        with pytest.raises(ValueError):
            instruction_subset(["SSE"])


class TestConditionCodes:
    def test_sixteen_codes(self):
        assert len(CONDITION_CODES) == 16

    @pytest.mark.parametrize(
        "alias,canonical",
        [("E", "Z"), ("NE", "NZ"), ("C", "B"), ("NB", "AE"), ("NLE", "G")],
    )
    def test_aliases(self, alias, canonical):
        assert canonical_condition(alias) == canonical

    def test_unknown_condition(self):
        with pytest.raises(ValueError):
            canonical_condition("XYZ")

    @pytest.mark.parametrize(
        "mnemonic,code",
        [
            ("JZ", "Z"),
            ("JNE", "NZ"),
            ("CMOVBE", "BE"),
            ("SETG", "G"),
            ("JMP", None),
            ("ADD", None),
        ],
    )
    def test_condition_of(self, mnemonic, code):
        assert condition_of(mnemonic) == code

    def test_condition_flags_consistent(self):
        for code, flags in CONDITION_FLAGS.items():
            assert flags, code
            assert set(flags) <= {"CF", "PF", "ZF", "SF", "OF"}
