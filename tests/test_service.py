"""Tests for the campaign service: job specs, the in-process queue's
submit/status/results lifecycle, live event streaming, and the
line-JSON socket server/client round-trip."""

import threading

import pytest

from repro import api
from repro.service import (
    CampaignService,
    JobSpec,
    ServiceClient,
    ServiceError,
    ServiceServer,
)


def quick_options(**overrides):
    values = dict(
        subsets="AR",
        contract="CT-SEQ",
        cpu="skylake-v4-patched",
        num_test_cases=6,
        inputs_per_test_case=8,
        seed=3,
    )
    values.update(overrides)
    return api.EngineOptions(**values)


def violating_options():
    """A target known to violate quickly (the CLI tests' recipe)."""
    return api.EngineOptions(
        subsets="AR+MEM+CB",
        contract="CT-SEQ",
        cpu="skylake-v4-patched",
        num_test_cases=150,
        inputs_per_test_case=25,
        seed=7,
    )


@pytest.fixture
def service():
    service = CampaignService(max_parallel_jobs=2)
    yield service
    service.shutdown()


class TestJobSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            JobSpec(kind="bake")

    def test_options_mapping_is_coerced(self):
        spec = JobSpec(kind="fuzz", options={"contract": "CT-COND"})
        assert isinstance(spec.options, api.EngineOptions)
        assert spec.options.contract == "CT-COND"

    def test_dict_round_trip(self):
        spec = JobSpec(
            kind="sweep", options=quick_options(),
            contracts=("CT-SEQ", "CT-COND"), shards=2,
            schedule="work-stealing",
        )
        again = JobSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown JobSpec"):
            JobSpec.from_dict({"kind": "fuzz", "cores": 4})


class TestCampaignService:
    def test_submit_status_results_round_trip(self, service):
        job_id = service.submit(
            JobSpec(kind="fuzz", options=quick_options())
        )
        events = list(service.results(job_id))
        status = service.status(job_id)
        assert status["state"] == "done"
        assert status["error"] is None
        assert status["report"]["kind"] == "fuzz"
        assert status["report"]["test_cases"] == 6
        kinds = [event["event"] for event in events]
        assert kinds[0] == "state"
        assert kinds[-1] == "done"
        assert all(event["job_id"] == job_id for event in events)

    def test_submit_accepts_a_mapping(self, service):
        job_id = service.submit(
            {"kind": "fuzz", "options": quick_options().to_dict()}
        )
        list(service.results(job_id))
        assert service.status(job_id)["state"] == "done"

    def test_unknown_job_id_raises_key_error(self, service):
        with pytest.raises(KeyError, match="unknown job id"):
            service.status("job-9999-deadbeef")

    def test_failed_job_carries_the_traceback(self, service):
        # campaign journaling refuses first-violation mode
        job_id = service.submit(
            JobSpec(
                kind="campaign", options=quick_options(),
                mode="first-violation", journal_dir="unused",
            )
        )
        events = list(service.results(job_id))
        status = service.status(job_id)
        assert status["state"] == "failed"
        assert "ValueError" in status["error"]
        assert events[-1]["event"] == "done"
        assert events[-1]["state"] == "failed"

    def test_violation_events_stream_as_records(self, service):
        job_id = service.submit(
            JobSpec(kind="fuzz", options=violating_options())
        )
        events = list(service.results(job_id))
        violations = [
            event for event in events if event["event"] == "violation"
        ]
        assert len(violations) == 1
        record = violations[0]["record"]
        assert record["arch"] == "x86_64"
        assert record["contract"] == "CT-SEQ"
        assert record["classification"]
        assert record["program"]
        assert record["program_fingerprint"]
        assert service.status(job_id)["violations"] == 1

    def test_sweep_jobs_emit_cell_events(self, service):
        job_id = service.submit(
            JobSpec(
                kind="sweep", options=quick_options(),
                contracts=("CT-SEQ", "CT-COND"),
            )
        )
        events = list(service.results(job_id))
        cells = [e for e in events if e["event"] == "cell"]
        assert sorted(e["cell"] for e in cells) == [
            "x86_64/CT-COND/skylake-v4-patched",
            "x86_64/CT-SEQ/skylake-v4-patched",
        ]
        assert events[-1]["report"]["cells"] == 2
        assert events[-1]["report"]["digest"]

    def test_concurrent_jobs_complete_independently(self, service):
        ids = [
            service.submit(
                JobSpec(kind="fuzz", options=quick_options(seed=seed))
            )
            for seed in (1, 2, 3)
        ]
        for job_id in ids:
            list(service.results(job_id))
        states = [service.status(job_id)["state"] for job_id in ids]
        assert states == ["done", "done", "done"]
        assert len(service.jobs()) == 3

    def test_results_streams_while_the_job_runs(self, service):
        """A consumer attached before completion sees the final done
        event without polling."""
        job_id = service.submit(
            JobSpec(kind="fuzz", options=quick_options())
        )
        seen = []
        consumer = threading.Thread(
            target=lambda: seen.extend(service.results(job_id))
        )
        consumer.start()
        consumer.join(timeout=60)
        assert not consumer.is_alive()
        assert seen[-1]["event"] == "done"

    def test_nonblocking_results_returns_the_prefix(self, service):
        job_id = service.submit(
            JobSpec(kind="fuzz", options=quick_options())
        )
        list(service.results(job_id))  # drain to completion
        prefix = list(service.results(job_id, wait=False, start=1))
        full = list(service.results(job_id, wait=False))
        assert prefix == full[1:]


class TestSocketRoundTrip:
    @pytest.fixture
    def server(self):
        service = CampaignService(max_parallel_jobs=1)
        server = ServiceServer(service, host="127.0.0.1", port=0)
        server.start_background()
        yield server
        server.close()
        service.shutdown()

    def test_ping(self, server):
        host, port = server.address
        with ServiceClient(host, port) as client:
            assert client.ping()

    def test_submit_status_results_over_the_wire(self, server):
        host, port = server.address
        with ServiceClient(host, port) as client:
            job_id = client.submit(
                JobSpec(kind="fuzz", options=quick_options())
            )
            events = list(client.results(job_id))
            status = client.status(job_id)
        assert status["state"] == "done"
        assert events[-1]["event"] == "done"
        assert events[-1]["report"]["kind"] == "fuzz"

    def test_jobs_listing_over_the_wire(self, server):
        host, port = server.address
        with ServiceClient(host, port) as client:
            job_id = client.submit(
                JobSpec(kind="fuzz", options=quick_options())
            )
            list(client.results(job_id))
            jobs = client.jobs()
        assert [job["job_id"] for job in jobs] == [job_id]

    def test_bad_requests_become_service_errors(self, server):
        host, port = server.address
        with ServiceClient(host, port) as client:
            with pytest.raises(ServiceError, match="unknown op"):
                client._request({"op": "reboot"})
            with pytest.raises(ServiceError, match="unknown job id"):
                client.status("job-9999-deadbeef")
            with pytest.raises(ServiceError, match="unknown JobSpec"):
                client.submit({"kind": "fuzz", "cores": 4})
            # the connection survives every error above
            assert client.ping()

    def test_second_client_not_blocked_by_streaming(self, server):
        host, port = server.address
        with ServiceClient(host, port) as one, ServiceClient(
            host, port
        ) as two:
            job_id = one.submit(
                JobSpec(kind="fuzz", options=quick_options())
            )
            stream = one.results(job_id)
            first = next(stream)  # handler thread now mid-stream
            assert two.ping()  # threaded server: not stalled
            events = [first, *stream]
        assert events[-1]["event"] == "done"
