"""Unit tests for operand kinds."""

import pytest

from repro.isa.operands import (
    AgenOperand,
    ImmediateOperand,
    LabelOperand,
    MemoryOperand,
    RegisterOperand,
)


class TestRegisterOperand:
    def test_normalizes_case(self):
        assert RegisterOperand("rax").name == "RAX"

    def test_width_and_canonical(self):
        operand = RegisterOperand("EBX")
        assert operand.width == 32
        assert operand.canonical == "RBX"

    def test_invalid_register(self):
        with pytest.raises(ValueError):
            RegisterOperand("YMM1")

    def test_str(self):
        assert str(RegisterOperand("AL")) == "AL"

    def test_hashable(self):
        assert RegisterOperand("RAX") == RegisterOperand("rax")
        assert len({RegisterOperand("RAX"), RegisterOperand("rax")}) == 1


class TestImmediateOperand:
    def test_str(self):
        assert str(ImmediateOperand(42)) == "42"
        assert str(ImmediateOperand(-1)) == "-1"


class TestMemoryOperand:
    def test_base_only(self):
        operand = MemoryOperand("R14", width=8)
        assert operand.address_registers() == ("R14",)
        assert str(operand) == "byte ptr [R14]"

    def test_base_index_displacement(self):
        operand = MemoryOperand("R14", "RAX", 8, width=64)
        assert operand.address_registers() == ("R14", "RAX")
        assert str(operand) == "qword ptr [R14 + RAX + 8]"

    def test_negative_displacement(self):
        operand = MemoryOperand("R14", None, -16, width=32)
        assert str(operand) == "dword ptr [R14 - 16]"

    def test_index_normalized_to_canonical_width_names(self):
        operand = MemoryOperand("r14", "rbx")
        assert operand.base == "R14"
        assert operand.index == "RBX"

    def test_invalid_base(self):
        with pytest.raises(ValueError):
            MemoryOperand("NOTAREG")

    @pytest.mark.parametrize("width,name", [(8, "byte"), (16, "word"), (32, "dword"), (64, "qword")])
    def test_width_names(self, width, name):
        assert str(MemoryOperand("R14", width=width)).startswith(f"{name} ptr")


class TestLabelOperand:
    def test_str(self):
        assert str(LabelOperand("bb1")) == ".bb1"


class TestAgenOperand:
    def test_str_no_size_prefix(self):
        operand = AgenOperand("R14", "RAX", 4)
        assert str(operand) == "[R14 + RAX + 4]"
