"""Unit tests for observation clauses, execution clauses and contract
trace collection — including the paper's Figure 1 example."""

import pytest

from repro.isa.assembler import parse_program
from repro.emulator.state import InputData, SandboxLayout
from repro.contracts import contract_names, get_contract
from repro.contracts.observation import ARCH, CT, CT_NONSPEC_STORE, MEM


@pytest.fixture
def layout():
    return SandboxLayout()


class TestRegistry:
    def test_paper_contracts_present(self):
        names = contract_names()
        for name in (
            "MEM-SEQ",
            "MEM-COND",
            "CT-SEQ",
            "CT-COND",
            "CT-BPAS",
            "CT-COND-BPAS",
            "ARCH-SEQ",
            "CT-NONSPEC-STORE-COND",
        ):
            assert name in names

    def test_lookup_case_insensitive(self):
        assert get_contract("ct-seq").name == "CT-SEQ"

    def test_unknown_contract(self):
        with pytest.raises(KeyError):
            get_contract("FOO-BAR")

    def test_clause_composition(self):
        contract = get_contract("CT-COND-BPAS")
        assert contract.execution.speculate_conditional_branches
        assert contract.execution.speculate_store_bypass
        assert contract.observation.expose_pc

    def test_default_speculation_window_is_rob_sized(self):
        # paper footnote 3: 250 instructions, the Skylake ROB size
        assert get_contract("CT-COND").speculation_window == 250


class TestObservationClauses:
    def _trace(self, clause_contract, program_text, input_data, layout):
        program = parse_program(program_text)
        return clause_contract.collect_trace(program, input_data, layout)

    def test_mem_exposes_addresses_only(self, layout):
        contract = get_contract("MEM-SEQ")
        trace = self._trace(
            contract, "MOV RAX, qword ptr [R14 + 64]", InputData(), layout
        )
        assert trace.observations == (("ld", layout.base + 64),)

    def test_ct_adds_program_counter(self, layout):
        contract = get_contract("CT-SEQ")
        trace = self._trace(
            contract, "NOP\nMOV RAX, qword ptr [R14]", InputData(), layout
        )
        assert trace.observations == (
            ("pc", 0),
            ("pc", 1),
            ("ld", layout.base),
        )

    def test_arch_adds_loaded_values(self, layout):
        contract = get_contract("ARCH-SEQ")
        memory = (0x1234).to_bytes(8, "little")
        trace = self._trace(
            contract,
            "MOV RAX, qword ptr [R14]",
            InputData(memory=memory),
            layout,
        )
        assert ("val", 0x1234) in trace.observations

    def test_stores_exposed(self, layout):
        contract = get_contract("MEM-SEQ")
        trace = self._trace(
            contract, "MOV qword ptr [R14 + 8], RAX", InputData(), layout
        )
        assert trace.observations == (("st", layout.base + 8),)

    def test_clause_flags(self):
        assert MEM.expose_load_addresses and not MEM.expose_pc
        assert CT.expose_pc and not CT.expose_load_values
        assert ARCH.expose_load_values
        assert not CT_NONSPEC_STORE.expose_speculative_stores


class TestFigure1Example:
    """The paper's §2.2 example: MEM-COND over the Spectre V1 snippet.

    array1 is at sandbox offset 0 and array2 at offset 0x100, with the
    sandbox base chosen so the absolute addresses match the paper's
    0x110 / 0x220 narrative (base 0x100, x = 0x10, y = 0x20).
    """

    PROGRAM = """
        MOV RBX, qword ptr [R14 + RAX]
        CMP RCX, 10
        JAE .end
        MOV RBX, qword ptr [R14 + RCX + 256]
    .end: NOP
    """

    def test_mispredicted_path_observed(self):
        layout = SandboxLayout(base=0x100)
        program = parse_program(self.PROGRAM)
        contract = get_contract("MEM-COND")
        # y = 0x20 >= 10: branch taken, line 4 is *not* executed
        # architecturally, but MEM-COND exposes it speculatively
        trace = contract.collect_trace(
            program,
            InputData(registers={"RAX": 0x10, "RCX": 0x20}),
            layout,
        )
        assert trace.addresses("ld") == (0x110, 0x100 + 0x20 + 0x100)

    def test_mem_seq_hides_speculative_access(self):
        layout = SandboxLayout(base=0x100)
        program = parse_program(self.PROGRAM)
        contract = get_contract("MEM-SEQ")
        trace = contract.collect_trace(
            program,
            InputData(registers={"RAX": 0x10, "RCX": 0x20}),
            layout,
        )
        assert trace.addresses("ld") == (0x110,)

    def test_seq_equal_cond_distinguishes(self):
        """The §2.2 counterexample: two inputs agree under MEM-SEQ but
        disagree under MEM-COND (the speculative access differs)."""
        layout = SandboxLayout(base=0x100)
        program = parse_program(self.PROGRAM)
        input_a = InputData(registers={"RAX": 0x10, "RCX": 0x20})
        input_b = InputData(registers={"RAX": 0x10, "RCX": 0x30})
        seq = get_contract("MEM-SEQ")
        cond = get_contract("MEM-COND")
        assert seq.collect_trace(program, input_a, layout) == seq.collect_trace(
            program, input_b, layout
        )
        assert cond.collect_trace(program, input_a, layout) != cond.collect_trace(
            program, input_b, layout
        )


class TestExecutionClauses:
    def test_cond_explores_inverted_path(self, layout):
        program = parse_program(
            """
            JNS .end
            MOV RAX, qword ptr [R14 + 128]
        .end: NOP
            """
        )
        contract = get_contract("MEM-COND")
        # SF clear: branch taken; the fallthrough load appears speculatively
        trace = contract.collect_trace(program, InputData(), layout)
        assert trace.addresses("ld") == (layout.base + 128,)

    def test_seq_does_not_explore(self, layout):
        program = parse_program(
            """
            JNS .end
            MOV RAX, qword ptr [R14 + 128]
        .end: NOP
            """
        )
        contract = get_contract("MEM-SEQ")
        trace = contract.collect_trace(program, InputData(), layout)
        assert trace.addresses("ld") == ()

    def test_bpas_skips_store_speculatively(self, layout):
        program = parse_program(
            """
            MOV qword ptr [R14], RBX
            MOV RAX, qword ptr [R14]
            AND RAX, 0b111111000000
            MOV RCX, qword ptr [R14 + RAX]
            """
        )
        memory = (0x80).to_bytes(8, "little")  # old value at offset 0
        contract = get_contract("MEM-BPAS")
        trace = contract.collect_trace(
            program, InputData(registers={"RBX": 0x40}, memory=memory), layout
        )
        addresses = trace.addresses("ld")
        # speculative path reads the old value (0x80); the normal path
        # after rollback reads the stored value (0x40)
        assert layout.base + 0x80 in addresses
        assert layout.base + 0x40 in addresses

    def test_speculation_window_limits_path(self, layout):
        program_text = "JNS .end\n" + "\n".join(
            f"MOV RAX, qword ptr [R14 + {64 * i}]" for i in range(1, 11)
        ) + "\n.end: NOP"
        program = parse_program(program_text)
        short = get_contract("MEM-COND", speculation_window=3)
        trace = short.collect_trace(program, InputData(), layout)
        assert len(trace.addresses("ld")) == 3

    def test_fence_stops_speculation(self, layout):
        program = parse_program(
            """
            JNS .end
            LFENCE
            MOV RAX, qword ptr [R14 + 128]
        .end: NOP
            """
        )
        contract = get_contract("MEM-COND")
        trace = contract.collect_trace(program, InputData(), layout)
        assert trace.addresses("ld") == ()

    def test_nesting_disabled_by_default(self, layout):
        program = parse_program(
            """
            JNS .end
            JS .end
            MOV RAX, qword ptr [R14 + 128]
        .end: NOP
            """
        )
        # SF clear: JNS taken; speculative path hits JS (not taken there),
        # whose own inverted path would jump to .end. Without nesting, the
        # inner branch is not forked, so the load *is* reached on the
        # single speculative path.
        contract = get_contract("MEM-COND")
        trace = contract.collect_trace(program, InputData(), layout)
        assert trace.addresses("ld") == (layout.base + 128,)

    def test_nested_speculation(self, layout):
        program = parse_program(
            """
            JNS .mid
            NOP
        .mid: JNS .end
            MOV RAX, qword ptr [R14 + 128]
        .end: NOP
            """
        )
        # SF clear: both branches taken architecturally; the load is only
        # reachable on the *nested* mis-speculated path of the second
        # branch inside the first branch's wrong path... with nesting off
        # it is reached via the second branch's own fork; with SF set it
        # is reached only through nesting.
        nested = get_contract("MEM-COND", max_nesting=2)
        flat = get_contract("MEM-COND", max_nesting=1)
        input_sf = InputData(flags={"SF": True})
        # SF set: JNS not taken; path: NOP, .mid JNS not taken -> load runs
        # architecturally; both contracts see it
        assert flat.collect_trace(program, input_sf, layout).addresses("ld")
        assert nested.collect_trace(program, input_sf, layout).addresses("ld")

    def test_with_nesting_copy(self):
        contract = get_contract("CT-COND")
        nested = contract.with_nesting(3)
        assert nested.max_nesting == 3
        assert contract.max_nesting == 1  # original unchanged

    def test_trace_determinism(self, layout):
        program = parse_program(
            """
            JNS .end
            MOV qword ptr [R14 + 8], RBX
            MOV RAX, qword ptr [R14 + 8]
        .end: NOP
            """
        )
        contract = get_contract("CT-COND-BPAS")
        input_data = InputData(registers={"RBX": 0x40}, flags={"SF": True})
        first = contract.collect_trace(program, input_data, layout)
        second = contract.collect_trace(program, input_data, layout)
        assert first == second


class TestExecutionLog:
    def test_log_records_speculative_flag(self, layout):
        program = parse_program(
            """
            JNS .end
            MOV RAX, qword ptr [R14 + 128]
        .end: NOP
            """
        )
        contract = get_contract("CT-COND")
        _, log = contract.collect_trace_and_log(program, InputData(), layout)
        speculative = [entry for entry in log.entries if entry.speculative]
        assert speculative and speculative[0].mnemonic == "MOV"
        assert len(log.architectural()) == 2  # JNS + final NOP

    def test_log_addresses(self, layout):
        program = parse_program("MOV RAX, qword ptr [R14 + 192]")
        contract = get_contract("CT-SEQ")
        _, log = contract.collect_trace_and_log(program, InputData(), layout)
        assert log.entries[0].addresses == (layout.base + 192,)
