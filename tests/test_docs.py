"""Documentation consistency: the tier-1 face of the CI docs job.

Runs the same four invariants as ``tools/check_docs.py`` — intra-repo
markdown links resolve, every docs page is reachable from
``docs/index.md``, the CLI subcommand list matches what
``docs/getting-started.md`` documents, and every ``--flag`` the docs
mention is registered on some subcommand."""

import os
import sys

import pytest

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(__file__)), "tools"),
)
import check_docs  # noqa: E402


@pytest.mark.parametrize("name", sorted(check_docs.CHECKS))
def test_docs_invariant(name):
    errors = check_docs.CHECKS[name]()
    assert not errors, "\n".join(errors)


def test_every_docs_page_is_scanned():
    scanned = check_docs.markdown_files()
    assert any(path.endswith("docs/index.md") for path in scanned)
    assert any(
        path.endswith("docs/getting-started.md") for path in scanned
    )
    assert any(
        path.endswith("docs/campaigns-and-sweeps.md") for path in scanned
    )
    assert any(path.endswith("docs/architectures.md") for path in scanned)


def test_documented_subcommands_cover_the_workflow():
    documented = check_docs.documented_subcommands()
    # the getting-started workflow must walk the full loop
    assert {"fuzz", "campaign", "sweep", "minimize", "list"} <= documented


def test_scheduler_and_gc_flags_are_registered():
    flags = check_docs.registered_flags()
    assert {"parallel-cells", "cache-max-bytes", "cache-dir"} <= flags
