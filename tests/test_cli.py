"""Tests for the command-line interface."""

import json
import os
import shutil

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_fuzz_defaults(self):
        args = build_parser().parse_args(["fuzz"])
        assert args.subsets == "AR+MEM+CB"
        assert args.contract == "CT-SEQ"
        assert args.cpu == "skylake"

    def test_fuzz_custom(self):
        args = build_parser().parse_args(
            ["fuzz", "-s", "AR+MEM", "-c", "CT-BPAS", "--cpu", "coffee-lake",
             "-n", "10", "-i", "5", "-m", "P+P+A"]
        )
        assert args.subsets == "AR+MEM"
        assert args.num_test_cases == 10
        assert args.mode == "P+P+A"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.workers == 4
        assert args.shards is None
        assert args.cache is False
        assert args.cache_entries == 65536
        assert args.first_violation is False

    def test_arch_flag(self):
        args = build_parser().parse_args(["fuzz", "--arch", "aarch64"])
        assert args.arch == "aarch64"
        assert build_parser().parse_args(["fuzz"]).arch == "x86_64"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "--arch", "riscv64"])

    def test_campaign_first_violation_flag(self):
        args = build_parser().parse_args(["campaign", "--first-violation"])
        assert args.first_violation is True

    def test_campaign_custom(self):
        args = build_parser().parse_args(
            ["campaign", "-s", "AR", "-n", "40", "-w", "8", "--shards", "16",
             "--cache", "--cache-entries", "1024"]
        )
        assert args.workers == 8
        assert args.shards == 16
        assert args.cache is True
        assert args.cache_entries == 1024

    def test_cache_dir_flag(self):
        args = build_parser().parse_args(
            ["fuzz", "--cache-dir", "/tmp/traces"]
        )
        assert args.cache_dir == "/tmp/traces"
        assert build_parser().parse_args(["campaign"]).cache_dir is None

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.arch == ["x86_64"]
        assert args.contract == ["CT-SEQ"]
        assert args.cpu == ["skylake"]
        assert args.workers == 1
        assert args.total_budget is None
        assert args.json is None

    def test_sweep_axis_lists(self):
        args = build_parser().parse_args(
            ["sweep", "--arch", "x86_64,aarch64",
             "--contract", "CT-SEQ,CT-COND",
             "--cpu", "skylake,coffee-lake", "-n", "10"]
        )
        assert args.arch == ["x86_64", "aarch64"]
        assert args.contract == ["CT-SEQ", "CT-COND"]
        assert args.cpu == ["skylake", "coffee-lake"]
        assert args.num_test_cases == 10

    def test_sweep_rejects_empty_axis(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--arch", ","])

    def test_parallel_cells_flag(self):
        assert build_parser().parse_args(["sweep"]).parallel_cells == 1
        args = build_parser().parse_args(["sweep", "--parallel-cells", "4"])
        assert args.parallel_cells == 4
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--parallel-cells", "0"])

    def test_cache_max_bytes_flag(self):
        # on every fuzzing subcommand, like the other cache knobs
        for command in ("fuzz", "campaign", "minimize", "sweep"):
            assert (
                build_parser().parse_args([command]).cache_max_bytes is None
            )
        args = build_parser().parse_args(
            ["sweep", "--cache-max-bytes", "65536"]
        )
        assert args.cache_max_bytes == 65536
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "--cache-max-bytes", "0"])

    def test_cache_max_bytes_requires_cache_dir(self):
        # the bound applies to the disk tier; silently ignoring it on an
        # in-memory cache would fake enforcement
        with pytest.raises(SystemExit, match="requires --cache-dir"):
            main(["fuzz", "-n", "1", "--cache-max-bytes", "4096"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "CT-SEQ" in output
        assert "skylake" in output
        assert "spectre-v1" in output

    def test_fuzz_clean_target_exits_zero(self, capsys):
        code = main(["fuzz", "-s", "AR", "-c", "CT-SEQ", "-n", "5", "-i", "10"])
        assert code == 0
        assert "no violation" in capsys.readouterr().out

    def test_fuzz_finding_violation_exits_one(self, capsys):
        code = main(
            ["fuzz", "-s", "AR+MEM+CB", "-c", "CT-SEQ",
             "--cpu", "skylake-v4-patched", "-n", "150", "-i", "25",
             "--seed", "7"]
        )
        assert code == 1
        assert "contract violation" in capsys.readouterr().out

    def test_campaign_clean_target_exits_zero(self, capsys):
        code = main(
            ["campaign", "-s", "AR", "-n", "8", "-i", "10", "-w", "2",
             "--cache"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "no violation" in output
        assert "shard 1" in output

    def test_sweep_prints_matrix_and_exits_zero_when_clean(
        self, tmp_path, capsys
    ):
        code = main(
            ["sweep", "--arch", "x86_64,aarch64", "--contract", "CT-SEQ",
             "--cpu", "skylake,coffee-lake", "-s", "AR", "-n", "3",
             "-i", "6", "--cache-dir", str(tmp_path / "traces"),
             "--json", str(tmp_path / "sweep.json")]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "## x86_64" in output
        assert "## aarch64" in output
        assert "contract \\ cpu" in output
        assert (tmp_path / "sweep.json").exists()
        # the cpu-axis sibling was served from the shared cache
        assert "traces reused" in output

    def test_sweep_parallel_cells_bounded_cache(self, tmp_path, capsys):
        """The new scheduler end to end: two cells in flight, a bounded
        shared cache, and the same matrix output as a sequential run."""
        arguments = [
            "sweep", "--arch", "x86_64", "--contract", "CT-SEQ",
            "--cpu", "skylake,coffee-lake", "-s", "AR", "-n", "4",
            "-i", "6",
        ]
        assert main(arguments) == 0
        sequential = capsys.readouterr().out
        code = main(
            arguments
            + ["--parallel-cells", "2",
               "--cache-dir", str(tmp_path / "traces"),
               "--cache-max-bytes", "4096"]
        )
        assert code == 0
        parallel = capsys.readouterr().out
        assert "up to 2 cell(s)" in parallel
        # the violation matrix itself is scheduling-independent
        matrix = [
            line for line in sequential.splitlines()
            if line.startswith("| CT-SEQ")
        ]
        assert matrix and matrix[0] in parallel

    def test_sweep_finding_violation_exits_one(self, capsys):
        code = main(
            ["sweep", "--contract", "CT-SEQ", "--cpu", "skylake-v4-patched",
             "-s", "AR+MEM+CB", "-n", "150", "-i", "25", "--seed", "21"]
        )
        assert code == 1
        assert "V1" in capsys.readouterr().out

    def test_reproduce_gadget(self, capsys):
        code = main(["reproduce", "spectre-v5-ret", "--max-inputs", "32"])
        assert code == 1
        assert "violation" in capsys.readouterr().out

    def test_reproduce_unknown_gadget(self, capsys):
        assert main(["reproduce", "spectre-v99"]) == 2

    def test_trace_command(self, tmp_path, capsys):
        asm = tmp_path / "gadget.asm"
        asm.write_text("MOV RAX, qword ptr [R14 + 64]\n")
        code = main(["trace", str(asm), "-c", "MEM-SEQ", "-i", "2"])
        assert code == 0
        output = capsys.readouterr().out
        assert "ld:" in output

    def test_trace_command_aarch64(self, tmp_path, capsys):
        asm = tmp_path / "gadget.s"
        asm.write_text("LDR X1, [X27, #64]\n")
        code = main(
            ["trace", str(asm), "--arch", "aarch64", "-c", "MEM-SEQ",
             "-i", "2"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "ld:" in output
        assert "X27" in output

    def test_fuzz_aarch64_finds_violation(self, capsys):
        code = main(
            ["fuzz", "--arch", "aarch64", "-s", "AR+MEM+CB", "-n", "120",
             "-i", "50", "--seed", "3"]
        )
        assert code == 1
        output = capsys.readouterr().out
        assert "contract violation" in output
        assert "aarch64" in output

    def test_list_shows_architectures(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "aarch64" in output and "x86_64" in output


class TestCorpusFlags:
    def test_corpus_dir_on_every_fuzzing_subcommand(self):
        for command in ("fuzz", "campaign", "minimize", "sweep"):
            assert build_parser().parse_args([command]).corpus_dir is None
        args = build_parser().parse_args(
            ["fuzz", "--corpus-dir", "corpus/found"]
        )
        assert args.corpus_dir == "corpus/found"

    def test_replay_parser(self):
        args = build_parser().parse_args(["replay", "--corpus", "c"])
        assert args.corpus == "c"
        assert args.strict is False
        assert args.arch is None
        assert args.json is None
        args = build_parser().parse_args(
            ["replay", "--corpus", "c", "--strict", "--arch", "aarch64",
             "--no-battery-eval", "--no-masked-fusion", "--no-dead-flags",
             "--interpretive", "--json", "out.json"]
        )
        assert args.strict and args.interpretive and args.no_battery_eval

    def test_replay_requires_corpus(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay"])


class TestReplayCommand:
    SEED = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "corpus", "seed",
    )

    def test_replays_seed_corpus_strict(self, capsys):
        assert main(["replay", "--corpus", self.SEED, "--strict"]) == 0
        output = capsys.readouterr().out
        assert output.count("PASS") >= 3
        assert "0 FAIL" in output

    def test_corrupted_entry_skips_and_fails_strict_only(
        self, tmp_path, capsys
    ):
        """Acceptance criterion: a corrupted record degrades to SKIP —
        never a crash — and only --strict turns that into exit 1."""
        for name in os.listdir(self.SEED):
            shutil.copy(os.path.join(self.SEED, name), tmp_path / name)
        (tmp_path / "corrupt.json").write_text("{torn", encoding="utf-8")
        corpus = str(tmp_path)
        assert main(["replay", "--corpus", corpus]) == 0
        assert "SKIP" in capsys.readouterr().out
        assert main(["replay", "--corpus", corpus, "--strict"]) == 1

    def test_empty_corpus_fails_strict_only(self, tmp_path, capsys):
        corpus = str(tmp_path / "empty")
        assert main(["replay", "--corpus", corpus]) == 0
        assert main(["replay", "--corpus", corpus, "--strict"]) == 1
        assert "0/0" in capsys.readouterr().out

    def test_json_artifact_round_trips_the_schema(self, tmp_path, capsys):
        artifact = str(tmp_path / "replay.json")
        assert main(
            ["replay", "--corpus", self.SEED, "--strict", "--json", artifact]
        ) == 0
        with open(artifact, encoding="utf-8") as handle:
            payload = json.load(handle)
        section = payload["corpus_replay"]
        assert section["entries"] >= 3
        assert section["failed"] == section["skipped"] == 0
        assert len(section["detection"]) == section["entries"]

    def test_arch_filter(self, capsys):
        assert main(
            ["replay", "--corpus", self.SEED, "--strict",
             "--arch", "aarch64"]
        ) == 0
        output = capsys.readouterr().out
        assert "aarch64" in output
        assert "x86_64" not in output


class TestCorpusPersistingCommands:
    def test_fuzz_corpus_dir_persists_then_replays(self, tmp_path, capsys):
        corpus = str(tmp_path / "found")
        code = main(
            ["fuzz", "-s", "AR+MEM+CB", "-c", "CT-SEQ",
             "--cpu", "skylake-v4-patched", "-n", "150", "-i", "25",
             "--seed", "7", "--corpus-dir", corpus]
        )
        assert code == 1  # found a violation...
        assert len(os.listdir(corpus)) == 1  # ...and recorded it
        capsys.readouterr()
        assert main(["replay", "--corpus", corpus, "--strict"]) == 0

    def test_run_minimize_returns_the_result(self, tmp_path):
        """The factored return path: minimized counterexamples are
        consumable as data, not stdout (and land in the corpus)."""
        from repro.cli import build_parser, run_minimize

        corpus = str(tmp_path / "found")
        args = build_parser().parse_args(
            ["minimize", "-s", "AR+MEM+CB", "-c", "CT-SEQ",
             "--cpu", "skylake-v4-patched", "-n", "150", "-i", "25",
             "--seed", "7", "--corpus-dir", corpus]
        )
        report, result = run_minimize(args)
        assert report.found
        assert result is not None
        assert result.instruction_count <= result.original_instruction_count
        assert result.text
        # both the fuzzer's find and the minimized record were persisted
        assert len(os.listdir(corpus)) >= 1
        assert main(["replay", "--corpus", corpus, "--strict"]) == 0


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 0
        assert args.jobs == 1

    def test_serve_custom(self):
        args = build_parser().parse_args(
            ["serve", "--host", "0.0.0.0", "--port", "7317", "--jobs", "3"]
        )
        assert (args.host, args.port, args.jobs) == ("0.0.0.0", 7317, 3)

    def test_serve_rejects_nonpositive_jobs(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--jobs", "0"])


class TestJournalCommands:
    """--journal/--resume through the real CLI."""

    def campaign_argv(self, journal_flag, journal_dir):
        return [
            "campaign", "-s", "AR", "-c", "CT-SEQ",
            "--cpu", "skylake-v4-patched", "-n", "9", "-i", "8",
            "--seed", "3", "-w", "1", "--shards", "3",
            journal_flag, journal_dir,
        ]

    def printed_digest(self, capsys):
        output = capsys.readouterr().out
        lines = [
            line for line in output.splitlines()
            if line.startswith("report digest: ")
        ]
        assert len(lines) == 1
        return lines[0].removeprefix("report digest: ")

    def test_journal_then_resume_same_digest(self, tmp_path, capsys):
        journal = str(tmp_path / "ckpt")
        assert main(self.campaign_argv("--journal", journal)) == 0
        first = self.printed_digest(capsys)
        records = sorted((tmp_path / "ckpt").glob("shard-*.pkl"))
        assert len(records) == 3
        records[1].unlink()  # simulate a shard lost to a kill
        assert main(self.campaign_argv("--resume", journal)) == 0
        assert self.printed_digest(capsys) == first

    def test_journal_and_resume_conflict(self, tmp_path):
        journal = str(tmp_path / "ckpt")
        with pytest.raises(SystemExit, match="not both"):
            main(self.campaign_argv("--journal", journal) + ["--resume", journal])

    def test_resume_with_conflicting_budget_is_an_error(self, tmp_path):
        journal = str(tmp_path / "ckpt")
        assert main(self.campaign_argv("--journal", journal)) == 0
        argv = self.campaign_argv("--resume", journal)
        argv[argv.index("-n") + 1] = "12"
        with pytest.raises(SystemExit, match="refusing to mix"):
            main(argv)

    def test_journal_requires_full_mode(self, tmp_path):
        journal = str(tmp_path / "ckpt")
        argv = self.campaign_argv("--journal", journal)
        with pytest.raises(SystemExit, match="mode='full'"):
            main(argv + ["--first-violation"])

    def test_sweep_work_stealing_journal_resume(self, tmp_path, capsys):
        journal = str(tmp_path / "sweep-ckpt")

        def argv(flag):
            return [
                "sweep", "--arch", "x86_64", "--contract", "CT-SEQ,CT-COND",
                "--cpu", "skylake-v4-patched", "-s", "AR", "-n", "6",
                "-i", "6", "--seed", "3", "--shards", "2",
                "--parallel-cells", "2", "--schedule", "work-stealing",
                flag, journal,
            ]

        assert main(argv("--journal")) == 0
        first = self.printed_digest(capsys)
        records = sorted((tmp_path / "sweep-ckpt").glob("shard-*.pkl"))
        assert len(records) == 4  # 2 cells x 2 shards
        records[0].unlink()
        assert main(argv("--resume")) == 0
        assert self.printed_digest(capsys) == first

    def test_sweep_journal_requires_work_stealing(self, tmp_path):
        with pytest.raises(SystemExit, match="work-stealing"):
            main(
                ["sweep", "--arch", "x86_64", "--contract", "CT-SEQ",
                 "--cpu", "skylake", "-s", "AR", "-n", "4",
                 "--journal", str(tmp_path / "ckpt")]
            )
