"""Unit tests for x86-64 instruction semantics: arithmetic, flags,
memory, division and control flow.

The semantics under test live in :mod:`repro.arch.x86_64.semantics`
(the x86-64 backend); ``repro.emulator.semantics`` — exercised here on
purpose — is the architecture-neutral substrate plus the compatibility
shims that delegate to that default backend."""

import pytest

from repro.isa.assembler import parse_instruction
from repro.emulator.errors import DivisionFault
from repro.emulator.semantics import evaluate_condition, execute
from repro.emulator.state import ArchState


def run(state, line, pc=0, resolve=None):
    return execute(parse_instruction(line), state, pc, resolve)


@pytest.fixture
def state():
    return ArchState()


class TestMovFamily:
    def test_mov_reg_imm(self, state):
        run(state, "MOV RAX, 42")
        assert state.read_register("RAX") == 42

    def test_mov_reg_reg(self, state):
        state.write_register("RBX", 7)
        run(state, "MOV RAX, RBX")
        assert state.read_register("RAX") == 7

    def test_mov_does_not_touch_flags(self, state):
        state.write_flag("ZF", True)
        run(state, "MOV RAX, 0")
        assert state.read_flag("ZF")

    def test_movzx(self, state):
        state.write_register("RBX", 0xFFFF_FFFF_FFFF_FF80)
        run(state, "MOVZX RAX, BL")
        assert state.read_register("RAX") == 0x80

    def test_movsx(self, state):
        state.write_register("RBX", 0x80)  # -128 as int8
        run(state, "MOVSX RAX, BL")
        assert state.read_register("RAX") == 0xFFFF_FFFF_FFFF_FF80

    def test_mov_memory_roundtrip(self, state):
        state.write_register("RAX", 0xDEAD)
        run(state, "MOV qword ptr [R14 + 8], RAX")
        run(state, "MOV RBX, qword ptr [R14 + 8]")
        assert state.read_register("RBX") == 0xDEAD


class TestArithmeticFlags:
    def test_add_basic(self, state):
        state.write_register("RAX", 2)
        run(state, "ADD RAX, 3")
        assert state.read_register("RAX") == 5
        assert not state.read_flag("ZF")
        assert not state.read_flag("CF")

    def test_add_carry(self, state):
        state.write_register("AL", 0xFF)
        run(state, "ADD AL, 1")
        assert state.read_register("AL") == 0
        assert state.read_flag("CF")
        assert state.read_flag("ZF")

    def test_add_signed_overflow(self, state):
        state.write_register("AL", 0x7F)
        run(state, "ADD AL, 1")
        assert state.read_flag("OF")
        assert state.read_flag("SF")
        assert not state.read_flag("CF")

    def test_sub_borrow(self, state):
        state.write_register("RAX", 1)
        run(state, "SUB RAX, 2")
        assert state.read_register("RAX") == 0xFFFF_FFFF_FFFF_FFFF
        assert state.read_flag("CF")
        assert state.read_flag("SF")

    def test_cmp_sets_flags_without_writing(self, state):
        state.write_register("RAX", 5)
        run(state, "CMP RAX, 5")
        assert state.read_register("RAX") == 5
        assert state.read_flag("ZF")

    def test_adc_uses_carry(self, state):
        state.write_flag("CF", True)
        state.write_register("RAX", 1)
        run(state, "ADC RAX, 1")
        assert state.read_register("RAX") == 3

    def test_sbb_uses_borrow(self, state):
        state.write_flag("CF", True)
        state.write_register("RAX", 5)
        run(state, "SBB RAX, 1")
        assert state.read_register("RAX") == 3

    def test_parity_flag(self, state):
        state.write_register("RAX", 0)
        run(state, "ADD RAX, 3")  # 0b11: two bits -> even parity
        assert state.read_flag("PF")
        run(state, "ADD RAX, 4")  # 0b111: three bits -> odd parity
        assert not state.read_flag("PF")

    def test_aux_carry(self, state):
        state.write_register("AL", 0x0F)
        run(state, "ADD AL, 1")
        assert state.read_flag("AF")


class TestLogic:
    def test_and_clears_cf_of(self, state):
        state.write_flag("CF", True)
        state.write_flag("OF", True)
        state.write_register("RAX", 0xF0)
        run(state, "AND RAX, 0x0F")
        assert state.read_register("RAX") == 0
        assert state.read_flag("ZF")
        assert not state.read_flag("CF") and not state.read_flag("OF")

    def test_or_xor(self, state):
        state.write_register("RAX", 0b1010)
        run(state, "OR RAX, 0b0101")
        assert state.read_register("RAX") == 0b1111
        run(state, "XOR RAX, 0b1111")
        assert state.read_register("RAX") == 0
        assert state.read_flag("ZF")

    def test_test_does_not_write(self, state):
        state.write_register("RAX", 0xFF)
        run(state, "TEST RAX, 0")
        assert state.read_register("RAX") == 0xFF
        assert state.read_flag("ZF")

    def test_not_preserves_flags(self, state):
        state.write_flag("ZF", True)
        state.write_register("RAX", 0)
        run(state, "NOT RAX")
        assert state.read_register("RAX") == 0xFFFF_FFFF_FFFF_FFFF
        assert state.read_flag("ZF")


class TestUnary:
    def test_inc_preserves_carry(self, state):
        state.write_flag("CF", True)
        state.write_register("RAX", 1)
        run(state, "INC RAX")
        assert state.read_register("RAX") == 2
        assert state.read_flag("CF")

    def test_dec_to_zero(self, state):
        state.write_register("RAX", 1)
        run(state, "DEC RAX")
        assert state.read_flag("ZF")

    def test_neg(self, state):
        state.write_register("RAX", 5)
        run(state, "NEG RAX")
        assert state.read_register("RAX") == (1 << 64) - 5
        assert state.read_flag("CF")

    def test_neg_zero_clears_cf(self, state):
        run(state, "NEG RAX")
        assert not state.read_flag("CF")


class TestImulXchgLea:
    def test_imul(self, state):
        state.write_register("RAX", 6)
        state.write_register("RBX", 7)
        run(state, "IMUL RAX, RBX")
        assert state.read_register("RAX") == 42
        assert not state.read_flag("OF")

    def test_imul_overflow(self, state):
        state.write_register("AX", 0x4000)
        state.write_register("BX", 4)
        run(state, "IMUL AX, BX")
        assert state.read_flag("OF") and state.read_flag("CF")

    def test_imul_negative(self, state):
        state.write_register("RAX", (1 << 64) - 3)  # -3
        state.write_register("RBX", 4)
        run(state, "IMUL RAX, RBX")
        assert state.read_register("RAX") == (1 << 64) - 12

    def test_xchg(self, state):
        state.write_register("RAX", 1)
        state.write_register("RBX", 2)
        run(state, "XCHG RAX, RBX")
        assert state.read_register("RAX") == 2
        assert state.read_register("RBX") == 1

    def test_lea(self, state):
        state.write_register("RBX", 0x10)
        run(state, "LEA RAX, [R14 + RBX + 4]")
        assert state.read_register("RAX") == state.layout.base + 0x14


class TestCmovSetcc:
    def test_cmov_taken(self, state):
        state.write_flag("ZF", True)
        state.write_register("RBX", 9)
        run(state, "CMOVZ RAX, RBX")
        assert state.read_register("RAX") == 9

    def test_cmov_not_taken(self, state):
        state.write_register("RAX", 5)
        state.write_register("RBX", 9)
        run(state, "CMOVZ RAX, RBX")  # ZF clear
        assert state.read_register("RAX") == 5

    def test_cmov_memory_loads_even_when_suppressed(self, state):
        state.write_memory(state.layout.base, 8, 0x99)
        result = run(state, "CMOVZ RAX, qword ptr [R14]")
        assert len(result.loads) == 1  # the load always happens
        assert state.read_register("RAX") == 0

    def test_setcc(self, state):
        state.write_flag("SF", True)
        run(state, "SETS AL")
        assert state.read_register("AL") == 1
        run(state, "SETNS AL")
        assert state.read_register("AL") == 0


class TestDivision:
    def test_div64(self, state):
        state.write_register("RAX", 100)
        state.write_register("RDX", 0)
        state.write_register("RBX", 7)
        run(state, "DIV RBX")
        assert state.read_register("RAX") == 14
        assert state.read_register("RDX") == 2

    def test_div32(self, state):
        state.write_register("EAX", 100)
        state.write_register("EDX", 0)
        state.write_register("EBX", 3)
        run(state, "DIV EBX")
        assert state.read_register("EAX") == 33
        assert state.read_register("EDX") == 1

    def test_div_uses_high_half(self, state):
        state.write_register("RDX", 1)  # dividend = 2^64 + 2
        state.write_register("RAX", 2)
        state.write_register("RBX", 2)
        run(state, "DIV RBX")
        assert state.read_register("RAX") == (1 << 63) + 1

    def test_div_by_zero_faults(self, state):
        with pytest.raises(DivisionFault):
            run(state, "DIV RBX")

    def test_div_overflow_faults(self, state):
        state.write_register("RDX", 2)
        state.write_register("RBX", 1)
        with pytest.raises(DivisionFault):
            run(state, "DIV RBX")

    def test_idiv_signed(self, state):
        state.write_register("RAX", (1 << 64) - 7)  # -7
        state.write_register("RDX", (1 << 64) - 1)  # sign extension
        state.write_register("RBX", 2)
        run(state, "IDIV RBX")
        assert state.read_register("RAX") == (1 << 64) - 3  # -3 (trunc)
        assert state.read_register("RDX") == (1 << 64) - 1  # remainder -1

    def test_idiv_overflow_faults(self, state):
        state.write_register("RDX", 0)
        state.write_register("RAX", 1 << 63)
        state.write_register("RBX", 1)
        with pytest.raises(DivisionFault):
            run(state, "IDIV RBX")

    def test_div_memory_divisor(self, state):
        state.write_memory(state.layout.base, 8, 5)
        state.write_register("RAX", 27)
        result = run(state, "DIV qword ptr [R14]")
        assert state.read_register("RAX") == 5
        assert len(result.loads) == 1


class TestControlFlow:
    def test_conditional_taken(self, state):
        state.write_flag("ZF", True)
        result = run(state, "JZ .target", pc=3, resolve=lambda name: 9)
        assert result.branch.kind == "cond"
        assert result.branch.taken
        assert result.next_pc == 9
        assert result.branch.fallthrough == 4

    def test_conditional_not_taken(self, state):
        result = run(state, "JZ .target", pc=3, resolve=lambda name: 9)
        assert not result.branch.taken
        assert result.next_pc == 4

    def test_unconditional(self, state):
        result = run(state, "JMP .target", pc=0, resolve=lambda name: 5)
        assert result.branch.kind == "uncond"
        assert result.next_pc == 5

    def test_indirect(self, state):
        state.write_register("RAX", 7)
        result = run(state, "JMP RAX", pc=0)
        assert result.branch.kind == "indirect"
        assert result.next_pc == 7

    def test_call_pushes_return_address(self, state):
        rsp_before = state.read_register("RSP")
        result = run(state, "CALL .func", pc=2, resolve=lambda name: 10)
        assert result.next_pc == 10
        assert state.read_register("RSP") == rsp_before - 8
        assert state.read_memory(rsp_before - 8, 8) == 3
        assert result.stores  # the push is an observable store

    def test_ret_pops(self, state):
        run(state, "CALL .func", pc=2, resolve=lambda name: 10)
        result = run(state, "RET", pc=10)
        assert result.branch.kind == "ret"
        assert result.next_pc == 3
        assert result.loads  # the pop is an observable load

    def test_mov_label_materializes_index(self, state):
        run(state, "MOV RAX, .t1", resolve=lambda name: 6)
        assert state.read_register("RAX") == 6

    def test_fence_is_noop(self, state):
        result = run(state, "LFENCE")
        assert result.is_fence
        assert result.next_pc == 1


class TestEvaluateCondition:
    @pytest.mark.parametrize(
        "code,flags,expected",
        [
            ("Z", {"ZF": True}, True),
            ("NZ", {"ZF": True}, False),
            ("B", {"CF": True}, True),
            ("BE", {"CF": False, "ZF": True}, True),
            ("A", {"CF": False, "ZF": False}, True),
            ("L", {"SF": True, "OF": False}, True),
            ("L", {"SF": True, "OF": True}, False),
            ("GE", {"SF": True, "OF": True}, True),
            ("G", {"ZF": False, "SF": False, "OF": False}, True),
            ("LE", {"ZF": True}, True),
            ("S", {"SF": True}, True),
            ("P", {"PF": True}, True),
            ("O", {"OF": True}, True),
        ],
    )
    def test_conditions(self, code, flags, expected):
        state = ArchState()
        for flag, value in flags.items():
            state.write_flag(flag, value)
        assert evaluate_condition(code, state) is expected


class TestStepResultAccounting:
    def test_rmw_records_load_and_store(self, state):
        state.write_memory(state.layout.base, 1, 10)
        result = run(state, "SUB byte ptr [R14], 3")
        assert len(result.loads) == 1 and len(result.stores) == 1
        store = result.stores[0]
        assert store.value == 7 and store.old_value == 10

    def test_store_records_old_value(self, state):
        state.write_memory(state.layout.base, 8, 0xAA)
        result = run(state, "MOV qword ptr [R14], RBX")
        assert result.stores[0].old_value == 0xAA
