"""The compile-once program IR must be byte-identical to the interpreter.

Three layers of evidence, from exhaustive to end-to-end:

- **catalog-exhaustive**: every instruction form of every registered
  backend, compiled and single-stepped next to ``arch.execute`` under
  both flag polarities — states, step results and faults must match;
- **randomized programs** (the property test of the issue): generated
  programs on both ISAs, stepped in lockstep (arch state, memory
  accesses, branch info per step), plus contract traces/logs across all
  execution clauses, ``SpeculativeCPU`` run infos with trace-hook
  parity, and executor hardware traces with the ``compile_programs``
  knob flipped;
- **structure**: what the compiler precomputes (resolved labels,
  condition codes, serializing bits, latency classes) and how the
  pipeline memoizes the IR.
"""

import pytest

from repro.arch import architecture_names, get_architecture
from repro.contracts import get_contract
from repro.core.config import FuzzerConfig, GeneratorConfig
from repro.core.fuzzer import TestingPipeline
from repro.core.generator import TestCaseGenerator
from repro.core.input_gen import InputGenerator
from repro.emulator.compiled import (
    CompiledProgram,
    as_compiled,
    compile_linear,
    compile_program,
)
from repro.emulator.errors import EmulationFault, InvalidProgram
from repro.emulator.machine import Emulator
from repro.emulator.state import ArchState, InputData, SandboxLayout
from repro.executor.executor import Executor, ExecutorConfig
from repro.executor.modes import measurement_mode
from repro.uarch.config import preset
from repro.uarch.cpu import SpeculativeCPU

from test_arch_registry import _concrete_operands, _prepared_state

ARCHS = sorted(architecture_names())
CONTRACTS = ("CT-SEQ", "CT-COND", "CT-BPAS", "CT-COND-BPAS", "ARCH-SEQ")


def _generator(arch, layout, seed, subsets=("AR", "MEM", "CB")):
    return TestCaseGenerator(
        arch.instruction_subset(list(subsets)),
        GeneratorConfig(
            instructions_per_test=14, basic_blocks=3, memory_accesses=4
        ),
        layout,
        seed=seed,
        arch=arch,
    )


def _inputs(arch, layout, seed, count):
    return InputGenerator(
        seed=seed,
        layout=layout,
        registers=arch.default_register_pool,
        flag_bits=arch.registers.flag_bits,
    ).generate(count)


def _states_equal(a: ArchState, b: ArchState) -> bool:
    return (
        a.registers == b.registers
        and a.flags == b.flags
        and a.memory == b.memory
    )


# -- catalog-exhaustive single-step equality ----------------------------------


@pytest.mark.parametrize("arch_name", ARCHS)
def test_every_catalog_entry_compiles_and_matches_interpreter(arch_name):
    """Each instruction form: one compiled step == one interpreted step
    (state deltas, step results, and faults), under both flag
    polarities."""
    from repro.isa.instruction import Instruction

    arch = get_architecture(arch_name)
    labels = {"target": 7}

    for spec in arch.instruction_set:
        instruction = Instruction(spec, _concrete_operands(arch, spec))
        run = arch.compile_instruction(instruction, 0, labels)
        for polarity in (False, True):
            states = []
            outcomes = []
            for engine in ("interpretive", "compiled"):
                state = _prepared_state(arch)
                for flag in arch.registers.flag_bits:
                    state.write_flag(flag, polarity)
                if spec.category == "VAR":
                    for guard in arch.division_guards(instruction):
                        arch.execute(guard, state, 0, lambda label: 7)
                try:
                    if engine == "interpretive":
                        result = arch.execute(
                            instruction, state, 0, lambda label: 7
                        )
                    else:
                        result = run(state)
                    outcomes.append(result)
                except EmulationFault as fault:
                    outcomes.append((type(fault), str(fault)))
                states.append(state)

            reference, compiled = outcomes
            if isinstance(reference, tuple):
                assert compiled == reference, str(instruction)
            else:
                assert compiled.pc == reference.pc, str(instruction)
                assert compiled.next_pc == reference.next_pc, str(instruction)
                assert (
                    compiled.mem_accesses == reference.mem_accesses
                ), str(instruction)
                assert compiled.branch == reference.branch, str(instruction)
            assert _states_equal(states[0], states[1]), str(instruction)


# -- randomized program property tests ----------------------------------------


@pytest.mark.parametrize("arch_name", ARCHS)
def test_random_programs_step_identically(arch_name):
    """Lockstep architectural execution: per-step state, memory accesses
    and branch info agree on randomly generated programs."""
    arch = get_architecture(arch_name)
    layout = SandboxLayout()
    generator = _generator(arch, layout, seed=11)
    for trial in range(12):
        program = generator.generate()
        compiled = compile_program(program, arch)
        for input_data in _inputs(arch, layout, seed=trial, count=3):
            emulator = Emulator(program, layout, arch)
            reference = emulator.run(input_data)

            state = ArchState(layout, arch)
            state.load_input(input_data)
            pc, steps = 0, []
            while 0 <= pc < len(compiled.ops):
                result = compiled.ops[pc].run(state)
                steps.append(result)
                pc = result.next_pc

            assert len(steps) == len(reference)
            for ours, theirs in zip(steps, reference):
                assert ours.pc == theirs.pc
                assert ours.next_pc == theirs.next_pc
                assert ours.mem_accesses == theirs.mem_accesses
                assert ours.branch == theirs.branch
            assert _states_equal(state, emulator.state)


@pytest.mark.parametrize("arch_name", ARCHS)
def test_random_programs_contract_traces_identical(arch_name):
    """Contract traces and execution logs agree across all execution
    clauses (speculative forks and rollbacks included)."""
    arch = get_architecture(arch_name)
    layout = SandboxLayout()
    generator = _generator(arch, layout, seed=23)
    contracts = [get_contract(name) for name in CONTRACTS]
    for trial in range(8):
        program = generator.generate()
        compiled = compile_program(program, arch)
        inputs = _inputs(arch, layout, seed=100 + trial, count=3)
        for contract in contracts:
            for input_data in inputs:
                ref_trace, ref_log = contract.collect_trace_and_log(
                    program, input_data, layout, arch
                )
                new_trace, new_log = contract.collect_trace_and_log(
                    program, input_data, layout, arch, compiled
                )
                assert new_trace == ref_trace
                assert new_log.entries == ref_log.entries


@pytest.mark.parametrize("arch_name", ARCHS)
def test_random_programs_cpu_runs_identical(arch_name):
    """``SpeculativeCPU.run`` parity: RunInfo and the trace-hook stream
    (pc, issue cycle, speculative) agree between a plain LinearProgram
    (interpretive decode) and the compiled IR, with persistent
    microarchitectural context across inputs."""
    arch = get_architecture(arch_name)
    layout = SandboxLayout()
    division = "VAR" in arch.subset_names()
    subsets = ("AR", "MEM", "CB", "VAR") if division else ("AR", "MEM", "CB")
    generator = _generator(arch, layout, seed=31, subsets=subsets)

    for trial in range(6):
        program = generator.generate()
        linear = program.linearize()
        compiled = compile_linear(linear, arch)
        inputs = _inputs(arch, layout, seed=200 + trial, count=4)

        hooks = {"interpretive": [], "compiled": []}
        infos = {"interpretive": [], "compiled": []}
        for engine, runnable in (
            ("interpretive", linear),
            ("compiled", compiled),
        ):
            cpu = SpeculativeCPU(preset("skylake"), layout, arch)
            cpu.reset_context()
            for input_data in inputs:
                info = cpu.run(
                    runnable,
                    input_data,
                    trace_hook=lambda pc, issue, spec, _e=engine: hooks[
                        _e
                    ].append((pc, issue, spec)),
                )
                infos[engine].append(info)

        assert hooks["compiled"] == hooks["interpretive"]
        assert infos["compiled"] == infos["interpretive"]


@pytest.mark.parametrize("arch_name", ARCHS)
def test_executor_traces_identical_across_engine_knob(arch_name):
    """Hardware traces (and per-input run infos) are byte-identical with
    ``compile_programs`` on and off."""
    arch = get_architecture(arch_name)
    layout = SandboxLayout()
    generator = _generator(arch, layout, seed=41)
    program = generator.generate()
    inputs = _inputs(arch, layout, seed=42, count=6)

    outcomes = {}
    for flag in (True, False):
        executor = Executor(
            preset("skylake"),
            measurement_mode("P+P"),
            layout,
            ExecutorConfig(compile_programs=flag),
            arch=arch,
        )
        traces = executor.collect_hardware_traces(program, inputs)
        outcomes[flag] = (traces, executor.last_run_infos)

    assert outcomes[True][0] == outcomes[False][0]
    assert outcomes[True][1] == outcomes[False][1]


# -- compiler structure and pipeline threading --------------------------------


def test_decoded_ops_precompute_static_metadata():
    arch = get_architecture("x86_64")
    program = arch.parse_program(
        """
        MOV RAX, 17
        CMP RAX, 3
        JNZ .skip
        MOV RBX, qword ptr [R14 + RAX]
        LFENCE
    .skip: NOP
        """
    )
    compiled = compile_program(program, arch)
    ops = compiled.ops
    assert len(compiled) == 6

    branch = ops[2]
    assert branch.is_cond_branch
    assert branch.condition == "NZ"  # pre-resolved, no per-step parsing
    assert branch.target == compiled.label_to_index["skip"] == 5

    load = ops[3]
    assert load.is_load and not load.is_store
    assert load.addr_regs == frozenset({"R14", "RAX"})
    assert len(load.mem_operands) == 1
    state = ArchState(SandboxLayout(), arch)
    address_of, size = load.mem_operands[0]
    assert size == 8
    assert address_of(state) == state.read_register("R14")

    fence = ops[4]
    assert fence.is_fence and fence.is_serializing

    entry = branch.log_entry(addresses=(), speculative=False)
    assert entry.pc == 2 and entry.mnemonic == "JNZ"
    assert entry.is_cond_branch and not entry.is_load


def test_compile_rejects_undefined_labels():
    arch = get_architecture("x86_64")
    program = arch.parse_program("MOV RAX, 1\nJNZ .skip\n.skip: NOP\n")
    linear = program.linearize()
    del linear.label_to_index["skip"]
    with pytest.raises(InvalidProgram, match="undefined label"):
        compile_linear(linear, arch)


def test_cpu_rejects_cross_architecture_ir():
    x86 = get_architecture("x86_64")
    aarch64 = get_architecture("aarch64")
    compiled = compile_program(x86.parse_program("NOP\n"), x86)
    cpu = SpeculativeCPU(preset("skylake"), arch=aarch64)
    with pytest.raises(ValueError, match="compiled for"):
        cpu.run(compiled, InputData())


def test_contract_rejects_cross_architecture_ir():
    x86 = get_architecture("x86_64")
    aarch64 = get_architecture("aarch64")
    program = x86.parse_program("NOP\n")
    compiled = compile_program(program, x86)
    contract = get_contract("CT-SEQ")
    with pytest.raises(ValueError, match="compiled for"):
        contract.collect_trace_and_log(
            program, InputData(), None, aarch64, compiled
        )


def test_as_compiled_passes_compiled_programs_through():
    arch = get_architecture("x86_64")
    compiled = compile_program(arch.parse_program("NOP\n"), arch)
    assert as_compiled(compiled, arch) is compiled
    interpretive = compile_program(
        arch.parse_program("NOP\n"), arch, interpretive=True
    )
    assert interpretive.interpretive
    assert as_compiled(interpretive, arch) is interpretive


def test_pipeline_compiles_each_program_once():
    pipeline = TestingPipeline(FuzzerConfig(num_test_cases=1))
    program = pipeline.arch.parse_program("MOV RAX, 1\nNOP\n")
    first = pipeline.compiled_for(program)
    assert isinstance(first, CompiledProgram)
    assert pipeline.compiled_for(program) is first  # memoized by identity
    clone = program.clone()
    # equal text -> same digest -> the one lowering is shared (the
    # process-global IR cache; sweep cells regenerate identical programs)
    assert pipeline.compiled_for(clone) is first
    mutated = pipeline.arch.parse_program("MOV RAX, 2\nNOP\n")
    assert pipeline.compiled_for(mutated) is not first  # different text


def test_pipeline_compile_memo_outlives_a_measurement_round():
    # a batched round compiles round_size programs before their contract
    # halves run; the memo must still hold the first one at that point
    round_size = 40
    pipeline = TestingPipeline(
        FuzzerConfig(num_test_cases=1, round_size=round_size)
    )
    programs = [
        pipeline.arch.parse_program(f"MOV RAX, {index}\nNOP\n")
        for index in range(round_size)
    ]
    compiled = [pipeline.compiled_for(program) for program in programs]
    for program, ir in zip(programs, compiled):
        assert pipeline.compiled_for(program) is ir


def test_pipeline_honours_compile_programs_flag():
    pipeline = TestingPipeline(
        FuzzerConfig(num_test_cases=1, compile_programs=False)
    )
    program = pipeline.arch.parse_program("NOP\n")
    assert pipeline.compiled_for(program) is None
    assert pipeline.executor.config.compile_programs is False
    lowered = pipeline.executor._lower(program)
    assert lowered.interpretive  # reference handlers, same IR loop


# -- satellite regressions ----------------------------------------------------


def test_store_entry_interval_precomputed():
    from repro.uarch.cpu import _StoreEntry

    entry = _StoreEntry(
        address=0x100, size=8, value=1, old_value=0, addr_ready=3, pc=0
    )
    assert entry.end == 0x108
    assert entry.overlaps(0x104, 8)
    assert not entry.overlaps(0x108, 8)
    assert entry.overlaps_exactly(0x100, 8)


@pytest.mark.parametrize("arch_name", ARCHS)
def test_condition_tables_memoized_at_import(arch_name):
    arch = get_architecture(arch_name)
    if arch_name == "x86_64":
        from repro.isa.instruction_set import _CONDITION_OF

        assert _CONDITION_OF["JNE"] == "NZ"  # alias, canonicalized
        assert arch.condition_of("CMOVNBE") == "A"
        assert arch.condition_of("JMP") is None
    else:
        from repro.arch.aarch64.instruction_set import _CONDITION_OF

        assert _CONDITION_OF["B.HS"] == "CS"  # alias, canonicalized
        assert arch.condition_of("B.LO") == "CC"
        assert arch.condition_of("B") is None
    state = ArchState(SandboxLayout(), arch)
    code = arch.condition_codes[0]
    assert arch.evaluate_condition(code, state) in (True, False)
    with pytest.raises(InvalidProgram):
        arch.evaluate_condition("BOGUS", state)
