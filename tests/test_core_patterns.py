"""Tests for pattern coverage (test diversity analysis, §5.6)."""

import pytest

from repro.isa.assembler import parse_program
from repro.emulator.state import InputData, SandboxLayout
from repro.contracts import get_contract
from repro.core.patterns import (
    ALL_PATTERNS,
    PatternCoverage,
    available_patterns_for_subsets,
    patterns_in_log,
)


def log_for(program_text, registers=None, flags=None, memory=b""):
    layout = SandboxLayout()
    contract = get_contract("CT-COND")
    program = parse_program(program_text)
    _, log = contract.collect_trace_and_log(
        program,
        InputData(registers=registers or {}, flags=flags or {}, memory=memory),
        layout,
    )
    return log


class TestPatternExtraction:
    def test_load_after_store(self):
        log = log_for(
            "MOV qword ptr [R14 + 8], RAX\nMOV RBX, qword ptr [R14 + 8]"
        )
        assert "load-after-store" in patterns_in_log(log)

    def test_store_after_store(self):
        log = log_for(
            "MOV qword ptr [R14 + 8], RAX\nMOV qword ptr [R14 + 8], RBX"
        )
        assert "store-after-store" in patterns_in_log(log)

    def test_load_after_load(self):
        log = log_for(
            "MOV RAX, qword ptr [R14 + 8]\nMOV RBX, qword ptr [R14 + 8]"
        )
        assert "load-after-load" in patterns_in_log(log)

    def test_store_after_load(self):
        log = log_for(
            "MOV RAX, qword ptr [R14 + 8]\nMOV qword ptr [R14 + 8], RBX"
        )
        assert "store-after-load" in patterns_in_log(log)

    def test_different_addresses_no_memory_pattern(self):
        log = log_for(
            "MOV qword ptr [R14 + 8], RAX\nMOV RBX, qword ptr [R14 + 128]"
        )
        patterns = patterns_in_log(log)
        assert not any("after" in p for p in patterns)

    def test_register_dependency(self):
        log = log_for("MOV RAX, 5\nADD RBX, RAX")
        assert "reg-dep" in patterns_in_log(log)

    def test_flag_dependency(self):
        log = log_for("CMP RAX, 0\nCMOVZ RBX, RCX")
        assert "flag-dep" in patterns_in_log(log)

    def test_control_patterns(self):
        log = log_for("JNS .end\nNOP\n.end: NOP")
        patterns = patterns_in_log(log)
        assert "cond-branch" in patterns
        log = log_for("JMP .end\nNOP\n.end: NOP")
        assert "uncond-branch" in patterns_in_log(log)

    def test_non_consecutive_not_counted(self):
        log = log_for("MOV RAX, 5\nNOP\nADD RBX, RAX")
        assert "reg-dep" not in patterns_in_log(log)


class TestPatternCoverage:
    def test_needs_two_matching_members(self):
        coverage = PatternCoverage()
        newly = coverage.update_from_class([{"reg-dep"}])
        assert newly == set()
        newly = coverage.update_from_class([{"reg-dep"}, {"reg-dep"}])
        assert frozenset({"reg-dep"}) in newly

    def test_one_member_matching_insufficient(self):
        coverage = PatternCoverage()
        coverage.update_from_class([{"reg-dep"}, {"flag-dep"}])
        assert frozenset({"reg-dep"}) not in coverage.covered

    def test_combinations_tracked(self):
        coverage = PatternCoverage()
        coverage.update_from_class(
            [{"reg-dep", "flag-dep"}, {"reg-dep", "flag-dep"}]
        )
        assert frozenset({"reg-dep", "flag-dep"}) in coverage.covered

    def test_newly_covered_reported_once(self):
        coverage = PatternCoverage()
        members = [{"reg-dep"}, {"reg-dep"}]
        assert coverage.update_from_class(members)
        assert coverage.update_from_class(members) == set()

    def test_individual_coverage_fraction(self):
        coverage = PatternCoverage()
        coverage.update_from_class([{"reg-dep"}, {"reg-dep"}])
        assert coverage.individual_coverage() == pytest.approx(1 / len(ALL_PATTERNS))

    def test_all_individuals_covered(self):
        coverage = PatternCoverage()
        available = ("reg-dep", "flag-dep")
        assert not coverage.all_individuals_covered(available)
        coverage.update_from_class([{"reg-dep", "flag-dep"}] * 2)
        assert coverage.all_individuals_covered(available)

    def test_all_pairs_covered(self):
        coverage = PatternCoverage()
        available = ("reg-dep", "flag-dep")
        coverage.update_from_class([{"reg-dep", "flag-dep"}] * 2)
        assert coverage.all_pairs_covered(available)
        assert not coverage.all_pairs_covered(("reg-dep", "flag-dep", "cond-branch"))


class TestAvailablePatterns:
    def test_ar_only(self):
        patterns = available_patterns_for_subsets(("AR",))
        assert set(patterns) == {"reg-dep", "flag-dep"}

    def test_with_memory(self):
        patterns = available_patterns_for_subsets(("AR", "MEM"))
        assert "load-after-store" in patterns
        assert "cond-branch" not in patterns

    def test_with_branches(self):
        patterns = available_patterns_for_subsets(("AR", "MEM", "CB"))
        assert set(patterns) == set(ALL_PATTERNS)
