"""Tests for counterexample minimization (§5.7)."""

import pytest

from repro.isa.assembler import parse_program, render_program
from repro.core.config import FuzzerConfig
from repro.core.fuzzer import TestingPipeline
from repro.core.input_gen import InputGenerator
from repro.core.postprocessor import MinimizationResult, Postprocessor


def _result_for(program):
    return MinimizationResult(
        program=program,
        inputs=[],
        original_instruction_count=program.num_instructions,
        original_input_count=0,
    )


class TestLeakRegion:
    def test_fence_shields_all_following_instructions(self):
        """Regression: an LFENCE delimits the whole fence-shielded region,
        not just the single instruction after it (Figure 4)."""
        program = parse_program(
            "MOV RAX, 1\nLFENCE\nMOV RBX, 2\nMOV RCX, 3"
        )
        assert _result_for(program).leak_region() == ["MOV RAX, 1"]

    def test_speculation_source_reopens_region(self):
        """A branch after a fence can start a new speculative path, so it
        reopens the leak region."""
        program = parse_program(
            """
            LFENCE
            JNS .end
            MOV RCX, qword ptr [R14 + 64]
        .end: NOP
            """
        )
        region = _result_for(program).leak_region()
        assert region[0] == "JNS .end"
        assert "MOV RCX, qword ptr [R14 + 64]" in region

    def test_unfenced_program_is_all_region(self):
        program = parse_program("MOV RAX, 1\nMOV RBX, 2")
        assert len(_result_for(program).leak_region()) == 2


@pytest.fixture(scope="module")
def pipeline():
    return TestingPipeline(
        FuzzerConfig(
            contract_name="CT-SEQ",
            cpu_preset="skylake-v4-patched",
            seed=0,
        )
    )


@pytest.fixture(scope="module")
def violating_case(pipeline):
    """A V1 gadget padded with irrelevant instructions, plus inputs."""
    # padding must not write FLAGS before the branch (MOVs only), or the
    # input-controlled branch direction would be destroyed
    program = parse_program(
        """
        MOV RDX, 7
        MOV RSI, RDX
        JNS .end
        AND RBX, 0b111111000000
        MOV RCX, qword ptr [R14 + RBX]
        XOR RDX, RDX
    .end: NOP
        """
    )
    inputs = InputGenerator(seed=42, layout=pipeline.layout).generate(40)
    assert pipeline.check_violation(program, inputs) is not None
    return program, inputs


class TestMinimization:
    def test_rejects_non_violating_case(self, pipeline):
        program = parse_program("NOP\nNOP")
        inputs = InputGenerator(seed=0, layout=pipeline.layout).generate(4)
        with pytest.raises(ValueError):
            Postprocessor(pipeline).minimize(program, inputs)

    def test_input_sequence_shrinks(self, pipeline, violating_case):
        program, inputs = violating_case
        postprocessor = Postprocessor(pipeline)
        minimal = postprocessor.minimize_inputs(program, list(inputs))
        assert 2 <= len(minimal) <= len(inputs)
        assert pipeline.check_violation(program, minimal) is not None

    def test_instructions_shrink(self, pipeline, violating_case):
        program, inputs = violating_case
        postprocessor = Postprocessor(pipeline)
        inputs = postprocessor.minimize_inputs(program, list(inputs))
        minimized = postprocessor.minimize_instructions(program, inputs)
        assert minimized.num_instructions < program.num_instructions
        assert pipeline.check_violation(minimized, inputs) is not None
        # the irrelevant arithmetic must be gone
        text = render_program(minimized)
        assert "MOV RDX, 7" not in text

    def test_full_minimize_inserts_fences(self, pipeline, violating_case):
        program, inputs = violating_case
        result = Postprocessor(pipeline).minimize(program, list(inputs))
        assert result.instruction_count <= program.num_instructions
        assert result.original_instruction_count == program.num_instructions
        assert result.original_input_count == len(inputs)
        # Figure 4: the minimized case still violates, and the region
        # without fences localizes the leak
        assert pipeline.check_violation(result.program, result.inputs)
        region = result.leak_region()
        assert any("MOV RCX" in line or "JNS" in line for line in region)

    def test_fences_never_break_violation(self, pipeline, violating_case):
        program, inputs = violating_case
        postprocessor = Postprocessor(pipeline)
        fenced, count = postprocessor.insert_fences(program, inputs)
        assert pipeline.check_violation(fenced, inputs) is not None
        lfences = sum(
            1 for i in fenced.all_instructions() if i.mnemonic == "LFENCE"
        )
        assert lfences == count

    def test_fully_fenced_program_is_clean(self, pipeline, violating_case):
        """Sanity: LFENCE before the leaking load kills the violation —
        the mechanism stage 3 relies on."""
        program, inputs = violating_case
        fenced = parse_program(
            """
            MOV RDX, 7
            ADD RDX, 3
            JNS .end
            LFENCE
            AND RBX, 0b111111000000
            MOV RCX, qword ptr [R14 + RBX]
            XOR RDX, RDX
        .end: NOP
            """
        )
        assert pipeline.check_violation(fenced, inputs) is None
