"""Tests for the speculative CPU simulator.

Covers architectural correctness (speculation must never change final
architectural state), every leak mechanism the paper's evaluation relies
on (V1, V4, latency races, MDS, LVI-Null, speculative store eviction,
V2, V5-ret), and the patches that disable them.
"""

import pytest

from repro.isa.assembler import parse_program
from repro.emulator.machine import Emulator
from repro.emulator.state import InputData, SandboxLayout
from repro.uarch.config import coffee_lake, skylake
from repro.uarch.cpu import SpeculativeCPU


@pytest.fixture
def layout():
    return SandboxLayout()


def probe_run(cpu, linear, input_data):
    """One Prime+Probe measurement against the CPU."""
    cpu.cache.prime()
    info = cpu.run(linear, input_data)
    return sorted(cpu.cache.probe()), info


class TestArchitecturalEquivalence:
    """Speculation may leak, but the final architectural state must equal
    the functional emulator's for every program and input."""

    PROGRAMS = [
        "MOV RAX, 5\nADD RAX, RBX\nSUB RCX, RAX",
        """
        CMP RAX, 0
        JZ .skip
        MOV RBX, 7
    .skip: ADD RBX, 1
        """,
        """
        MOV qword ptr [R14 + 64], RAX
        MOV RBX, qword ptr [R14 + 64]
        AND RBX, 0b111111000000
        MOV RCX, qword ptr [R14 + RBX]
        """,
        """
        MOV RDX, 0
        OR RBX, 1
        DIV RBX
        """,
    ]

    @pytest.mark.parametrize("text", PROGRAMS)
    @pytest.mark.parametrize("rax", [0, 0x40, 0x80])
    def test_final_state_matches_emulator(self, text, rax, layout):
        program = parse_program(text)
        input_data = InputData(
            registers={"RAX": rax, "RBX": 0x40, "RCX": 0x80},
            memory=bytes(range(1, 255)) * 4,
        )
        emulator = Emulator(program, layout)
        emulator.run(input_data)

        cpu = SpeculativeCPU(skylake(), layout)
        cpu.run(program.linearize(), input_data)

        assert cpu.state.registers == emulator.state.registers
        assert cpu.state.flags == emulator.state.flags
        assert bytes(cpu.state.memory) == bytes(emulator.state.memory)

    def test_training_does_not_change_architecture(self, layout):
        """Repeated runs with different predictor states give identical
        architectural results."""
        program = parse_program(
            """
            CMP RAX, 0
            JZ .skip
            MOV RBX, 7
        .skip: ADD RBX, 1
            """
        )
        linear = program.linearize()
        cpu = SpeculativeCPU(skylake(), layout)
        finals = set()
        for _ in range(5):
            cpu.run(linear, InputData(registers={"RAX": 1}))
            finals.add(cpu.state.read_register("RBX"))
        assert finals == {8}


class TestConditionalSpeculation:
    V1 = """
        JNS .end
        AND RBX, 0b111111000000
        MOV RCX, qword ptr [R14 + RBX]
    .end: NOP
    """

    def test_mispredicted_path_touches_cache(self, layout):
        cpu = SpeculativeCPU(skylake(), layout)
        linear = parse_program(self.V1).linearize()
        # SF clear: branch taken, but predictor starts not-taken -> the
        # fallthrough load runs transiently
        trace, info = probe_run(
            cpu, linear, InputData(registers={"RBX": 0x1C0})
        )
        assert info.squashes == ["cond"]
        assert 7 in trace  # 0x1C0 / 64

    def test_leak_is_input_dependent(self, layout):
        traces = []
        for rbx in (0x1C0, 0x340):
            cpu = SpeculativeCPU(skylake(), layout)
            trace, _ = probe_run(
                cpu, parse_program(self.V1).linearize(),
                InputData(registers={"RBX": rbx}),
            )
            traces.append(tuple(trace))
        assert traces[0] != traces[1]

    def test_correct_prediction_no_leak(self, layout):
        cpu = SpeculativeCPU(skylake(), layout)
        linear = parse_program(self.V1).linearize()
        probe_run(cpu, linear, InputData())  # trains toward taken
        probe_run(cpu, linear, InputData())
        trace, info = probe_run(cpu, linear, InputData(registers={"RBX": 0x1C0}))
        assert info.squashes == []
        assert trace == []

    def test_speculation_disabled_by_config(self, layout):
        config = skylake().with_overrides(conditional_branch_speculation=False)
        cpu = SpeculativeCPU(config, layout)
        trace, info = probe_run(
            cpu, parse_program(self.V1).linearize(),
            InputData(registers={"RBX": 0x1C0}),
        )
        assert info.squashes == [] and trace == []

    def test_lfence_stops_wrong_path(self, layout):
        fenced = """
            JNS .end
            LFENCE
            AND RBX, 0b111111000000
            MOV RCX, qword ptr [R14 + RBX]
        .end: NOP
        """
        cpu = SpeculativeCPU(skylake(), layout)
        trace, info = probe_run(
            cpu, parse_program(fenced).linearize(),
            InputData(registers={"RBX": 0x1C0}),
        )
        assert trace == []
        assert info.squashes == ["cond"]

    def test_rollback_restores_registers(self, layout):
        program = """
            JNS .end
            MOV RBX, 999
        .end: NOP
        """
        cpu = SpeculativeCPU(skylake(), layout)
        cpu.run(parse_program(program).linearize(), InputData(registers={"RBX": 5}))
        assert cpu.state.read_register("RBX") == 5

    def test_rob_bounds_window(self, layout):
        # a long wrong path is cut off after rob_size instructions
        body = "\n".join(["NOP"] * 20) + "\nAND RBX, 0b111111000000\nMOV RCX, qword ptr [R14 + RBX]"
        program = f"JNS .end\n{body}\n.end: NOP"
        config = skylake().with_overrides(rob_size=5, branch_resolve_latency=1000)
        cpu = SpeculativeCPU(config, layout)
        trace, info = probe_run(
            cpu, parse_program(program).linearize(), InputData(registers={"RBX": 0x1C0})
        )
        assert trace == []  # squashed before reaching the load


class TestStoreBypass:
    V4 = """
        MOV qword ptr [R14 + 64], RAX
        MOV RBX, qword ptr [R14 + 64]
        AND RBX, 0b111111000000
        MOV RCX, qword ptr [R14 + RBX]
    """

    def _mem_with_old(self, layout, old):
        memory = bytearray(layout.size)
        memory[64:72] = old.to_bytes(8, "little")
        return bytes(memory)

    def test_bypass_leaks_stale_value(self, layout):
        cpu = SpeculativeCPU(skylake(v4_patch=False), layout)
        trace, info = probe_run(
            cpu, parse_program(self.V4).linearize(),
            InputData(registers={"RAX": 0x80},
                      memory=self._mem_with_old(layout, 0x1C0)),
        )
        assert "bypass" in info.squashes
        assert 7 in trace  # stale 0x1C0 -> set 7

    def test_architectural_value_is_new(self, layout):
        cpu = SpeculativeCPU(skylake(v4_patch=False), layout)
        cpu.run(
            parse_program(self.V4).linearize(),
            InputData(registers={"RAX": 0x80},
                      memory=self._mem_with_old(layout, 0x1C0)),
        )
        assert cpu.state.read_register("RBX") == 0x80  # replayed correctly

    def test_v4_patch_disables_bypass(self, layout):
        cpu = SpeculativeCPU(skylake(v4_patch=True), layout)
        trace, info = probe_run(
            cpu, parse_program(self.V4).linearize(),
            InputData(registers={"RAX": 0x80},
                      memory=self._mem_with_old(layout, 0x1C0)),
        )
        assert info.squashes == []
        assert 7 not in trace

    def test_disambiguator_trains_and_decays(self, layout):
        cpu = SpeculativeCPU(skylake(v4_patch=False), layout)
        linear = parse_program(self.V4).linearize()
        input_data = InputData(registers={"RAX": 0x80},
                               memory=self._mem_with_old(layout, 0x1C0))
        bypasses = []
        for _ in range(4):
            _, info = probe_run(cpu, linear, input_data)
            bypasses.append("bypass" in info.squashes)
        assert bypasses == [True, False, True, False]

    def test_forwarding_when_address_ready(self, layout):
        # spacing the load three cycles after the store yields forwarding
        forwarded = """
            MOV qword ptr [R14 + 64], RAX
            NOP
            NOP
            NOP
            MOV RBX, qword ptr [R14 + 64]
            AND RBX, 0b111111000000
            MOV RCX, qword ptr [R14 + RBX]
        """
        cpu = SpeculativeCPU(skylake(v4_patch=False), layout)
        trace, info = probe_run(
            cpu, parse_program(forwarded).linearize(),
            InputData(registers={"RAX": 0x80},
                      memory=self._mem_with_old(layout, 0x1C0)),
        )
        assert info.squashes == []
        assert 7 not in trace  # no stale leak
        assert 2 in trace      # new value 0x80 -> set 2


class TestMicrocodeAssists:
    MDS = """
        MOV RAX, qword ptr [R14 + 8]
        MOV RBX, qword ptr [R14 + 4096]
        AND RBX, 0b111111000000
        MOV RCX, qword ptr [R14 + RBX]
    """

    def _secret_memory(self, layout, secret):
        memory = bytearray(layout.size)
        memory[8:16] = secret.to_bytes(8, "little")
        return bytes(memory)

    def test_assist_forwards_stale_lfb_value(self, layout):
        cpu = SpeculativeCPU(skylake(v4_patch=True), layout)
        linear = parse_program(self.MDS).linearize()
        cpu.clear_accessed_bit(layout.assist_page_index)
        cpu.cache.prime()
        info = cpu.run(linear, InputData(memory=self._secret_memory(layout, 0x2C0)))
        trace = sorted(cpu.cache.probe())
        assert info.assists_triggered == 1
        assert info.injected_values[0][0] == "stale"
        assert 11 in trace  # secret 0x2C0 -> set 11

    def test_assist_fires_once_per_clear(self, layout):
        cpu = SpeculativeCPU(skylake(), layout)
        linear = parse_program(self.MDS).linearize()
        cpu.clear_accessed_bit(layout.assist_page_index)
        info1 = cpu.run(linear, InputData())
        info2 = cpu.run(linear, InputData())
        assert info1.assists_triggered == 1
        assert info2.assists_triggered == 0  # accessed bit now set

    def test_no_assist_without_cleared_bit(self, layout):
        cpu = SpeculativeCPU(skylake(), layout)
        _, info = probe_run(
            cpu, parse_program(self.MDS).linearize(), InputData()
        )
        assert info.assists_triggered == 0

    def test_mds_patch_forwards_zero(self, layout):
        # the injected value must be zero on MDS-patched silicon (LVI-Null)
        cpu = SpeculativeCPU(coffee_lake(), layout)
        linear = parse_program(self.MDS).linearize()
        cpu.clear_accessed_bit(layout.assist_page_index)
        info = cpu.run(linear, InputData(memory=self._secret_memory(layout, 0x2C0)))
        assert info.injected_values and info.injected_values[0] == ("zero", 0)

    def test_assist_replay_is_architectural(self, layout):
        cpu = SpeculativeCPU(skylake(), layout)
        linear = parse_program(self.MDS).linearize()
        memory = bytearray(layout.size)
        memory[4096:4104] = (0x77).to_bytes(8, "little")
        cpu.clear_accessed_bit(layout.assist_page_index)
        cpu.run(linear, InputData(memory=bytes(memory)))
        assert cpu.state.read_register("RBX") == 0x77 & 0xFC0

    def test_store_buffer_preferred_over_lfb(self, layout):
        # Fallout: the newest store-buffer entry wins
        program = """
            MOV qword ptr [R14 + 8], RAX
            MOV RBX, qword ptr [R14 + 4096]
            AND RBX, 0b111111000000
            MOV RCX, qword ptr [R14 + RBX]
        """
        cpu = SpeculativeCPU(skylake(v4_patch=True), layout)
        cpu.clear_accessed_bit(layout.assist_page_index)
        cpu.cache.prime()
        cpu.run(parse_program(program).linearize(),
                InputData(registers={"RAX": 0x380}))
        assert 14 in cpu.cache.probe()  # 0x380 -> set 14


class TestSpeculativeStoreEviction:
    PROGRAM = """
        JNS .end
        AND RBX, 0b111111000000
        MOV qword ptr [R14 + RBX], RCX
    .end: NOP
    """

    def test_coffee_lake_speculative_store_touches_cache(self, layout):
        cpu = SpeculativeCPU(coffee_lake(), layout)
        trace, info = probe_run(
            cpu, parse_program(self.PROGRAM).linearize(),
            InputData(registers={"RBX": 0x1C0}),
        )
        assert info.squashes == ["cond"]
        assert 7 in trace

    def test_skylake_speculative_store_invisible(self, layout):
        cpu = SpeculativeCPU(skylake(), layout)
        trace, info = probe_run(
            cpu, parse_program(self.PROGRAM).linearize(),
            InputData(registers={"RBX": 0x1C0}),
        )
        assert info.squashes == ["cond"]
        assert 7 not in trace

    def test_memory_rolled_back_on_both(self, layout):
        for config in (skylake(), coffee_lake()):
            cpu = SpeculativeCPU(config, layout)
            cpu.run(parse_program(self.PROGRAM).linearize(),
                    InputData(registers={"RBX": 0x1C0, "RCX": 0x99}))
            assert cpu.state.read_memory(layout.base + 0x1C0, 8) == 0


class TestIndirectAndReturnSpeculation:
    def test_btb_misdirection(self, layout):
        program = """
            MOV RBX, .t1
            MOV RCX, .t2
            CMP RAX, 0
            CMOVNZ RBX, RCX
            JMP RBX
        .t1: NOP
            JMP .end
        .t2: AND RDX, 0b111111000000
            MOV RSI, qword ptr [R14 + RDX]
            JMP .end
        .end: NOP
        """
        linear = parse_program(program).linearize()
        cpu = SpeculativeCPU(skylake(), layout)
        # first run: target .t2 (trains BTB), no prediction yet
        probe_run(cpu, linear, InputData(registers={"RAX": 1, "RDX": 0x1C0}))
        # second run: target .t1, BTB says .t2 -> transient leak of RDX
        trace, info = probe_run(
            cpu, linear, InputData(registers={"RAX": 0, "RDX": 0x340})
        )
        assert "indirect" in info.squashes
        assert 13 in trace  # 0x340 -> set 13

    def test_ret2spec(self, layout):
        program = """
            MOV RDX, .other
            CALL .func
        .cont: AND RBX, 0b111111000000
            MOV RCX, qword ptr [R14 + RBX]
            JMP .end
        .func: MOV qword ptr [RSP], RDX
            RET
        .other: NOP
        .end: NOP
        """
        cpu = SpeculativeCPU(skylake(v4_patch=True), layout)
        trace, info = probe_run(
            cpu, parse_program(program).linearize(),
            InputData(registers={"RBX": 0x1C0}),
        )
        assert "ret" in info.squashes
        assert 7 in trace  # the .cont leak ran transiently

    def test_ret_speculation_disabled(self, layout):
        program = """
            MOV RDX, .other
            CALL .func
        .cont: AND RBX, 0b111111000000
            MOV RCX, qword ptr [R14 + RBX]
            JMP .end
        .func: MOV qword ptr [RSP], RDX
            RET
        .other: NOP
        .end: NOP
        """
        config = skylake(v4_patch=True).with_overrides(
            return_stack_speculation=False
        )
        cpu = SpeculativeCPU(config, layout)
        trace, info = probe_run(
            cpu, parse_program(program).linearize(),
            InputData(registers={"RBX": 0x1C0}),
        )
        assert "ret" not in info.squashes
        assert 7 not in trace


class TestLatencyRace:
    """The §6.3 mechanism: DIV latency gates a transient access."""

    V1_VAR = """
        JNZ .end
        MOV RDX, 0
        OR RBX, 1
        DIV RBX
        AND RAX, 0b111111000000
        MOV RDI, qword ptr [R14 + RAX]
    .end: NOP
    """

    def _run(self, layout, dividend):
        cpu = SpeculativeCPU(skylake(), layout)
        linear = parse_program(self.V1_VAR).linearize()
        # ZF clear -> branch taken architecturally; predictor fresh
        # (weakly not-taken) -> the div+load path runs transiently
        cpu.cache.prime()
        info = cpu.run(linear, InputData(registers={"RAX": dividend, "RBX": 0}))
        return sorted(cpu.cache.probe()), info

    def test_fast_division_leaks(self, layout):
        trace, info = self._run(layout, 5)
        assert info.squashes == ["cond"]
        assert 0 in trace  # quotient 5 -> set 0

    def test_slow_division_does_not_leak(self, layout):
        trace, info = self._run(layout, (1 << 62) + 5)
        assert info.squashes == ["cond"]
        assert trace == []  # division outlasted the speculation window

    def test_latency_is_the_only_difference(self, layout):
        # both quotients map to the same cache set; only timing differs
        fast, _ = self._run(layout, 5)
        slow, _ = self._run(layout, (1 << 62) + 5)
        assert fast != slow
