"""Tests for the cross-ISA sweep engine: grid construction, cell seed
derivation, report rendering, determinism across runs, and trace-cache
sharing between cells and across processes."""

import json

import pytest

from repro.core.config import FuzzerConfig
from repro.core.sweep import (
    SweepCell,
    SweepRunner,
    SweepSpec,
    derive_cell_seed,
    run_sweep,
)


def tiny_config(**overrides):
    """A fast, budget-bound base config for grid tests."""
    defaults = dict(
        instruction_subsets=("AR",),
        num_test_cases=4,
        inputs_per_test_case=6,
        diversity_feedback=False,
        seed=7,
    )
    defaults.update(overrides)
    return FuzzerConfig(**defaults)


class TestSpec:
    def test_cells_are_arch_major_cartesian(self):
        spec = SweepSpec(
            arches=("x86_64", "aarch64"),
            contracts=("CT-SEQ", "CT-COND"),
            cpus=("skylake",),
        )
        labels = [cell.label for cell in spec.cells()]
        assert labels == [
            "x86_64/CT-SEQ/skylake",
            "x86_64/CT-COND/skylake",
            "aarch64/CT-SEQ/skylake",
            "aarch64/CT-COND/skylake",
        ]

    def test_unknown_axis_values_rejected(self):
        with pytest.raises(ValueError, match="unknown arch"):
            SweepSpec(arches=("riscv64",))
        with pytest.raises(ValueError, match="unknown contract"):
            SweepSpec(contracts=("CT-BOGUS",))
        with pytest.raises(ValueError, match="unknown cpu"):
            SweepSpec(cpus=("m1",))
        with pytest.raises(ValueError, match="must not be empty"):
            SweepSpec(arches=())

    def test_duplicate_axis_values_rejected(self):
        with pytest.raises(ValueError, match="duplicate cpu"):
            SweepSpec(cpus=("skylake", "skylake"))

    def test_override_for_missing_cell_rejected(self):
        with pytest.raises(ValueError, match="matches no grid cell"):
            SweepSpec(
                budget_overrides={("x86-64", "CT-SEQ", "skylake"): 5}
            )

    def test_cell_config_inherits_base_and_replaces_target(self):
        spec = SweepSpec(
            arches=("aarch64",),
            contracts=("CT-COND",),
            cpus=("coffee-lake",),
            base_config=tiny_config(inputs_per_test_case=13),
        )
        config = spec.cell_config(spec.cells()[0])
        assert config.arch == "aarch64"
        assert config.contract_name == "CT-COND"
        assert config.cpu_preset == "coffee-lake"
        assert config.inputs_per_test_case == 13
        assert config.seed == derive_cell_seed(7, spec.cells()[0])

    def test_total_budget_splits_like_shard_budgets(self):
        spec = SweepSpec(
            arches=("x86_64",),
            contracts=("CT-SEQ", "CT-COND"),
            cpus=("skylake", "coffee-lake"),
            base_config=tiny_config(),
            total_budget=10,
        )
        cells = spec.cells()
        budgets = [
            spec.cell_config(cell, index, len(cells)).num_test_cases
            for index, cell in enumerate(cells)
        ]
        assert budgets == [3, 3, 2, 2]
        assert sum(budgets) == 10

    def test_budget_overrides_pin_cells(self):
        spec = SweepSpec(
            arches=("x86_64",),
            contracts=("CT-SEQ", "CT-COND"),
            cpus=("skylake",),
            base_config=tiny_config(num_test_cases=50),
            budget_overrides={("x86_64", "CT-COND", "skylake"): 5},
        )
        by_contract = {
            cell.contract: spec.cell_config(cell).num_test_cases
            for cell in spec.cells()
        }
        assert by_contract == {"CT-SEQ": 50, "CT-COND": 5}


class TestCellSeeds:
    def test_deterministic(self):
        cell = SweepCell("x86_64", "CT-SEQ", "skylake")
        assert derive_cell_seed(3, cell) == derive_cell_seed(3, cell)

    def test_varies_with_base_seed_arch_and_contract(self):
        cell = SweepCell("x86_64", "CT-SEQ", "skylake")
        assert derive_cell_seed(3, cell) != derive_cell_seed(4, cell)
        assert derive_cell_seed(3, cell) != derive_cell_seed(
            3, SweepCell("aarch64", "CT-SEQ", "skylake")
        )
        assert derive_cell_seed(3, cell) != derive_cell_seed(
            3, SweepCell("x86_64", "CT-COND", "skylake")
        )

    def test_cpu_axis_shares_the_battery(self):
        # deliberate: cells along the cpu axis replay identical
        # program/input streams (fair comparison + cache sharing)
        assert derive_cell_seed(
            3, SweepCell("x86_64", "CT-SEQ", "skylake")
        ) == derive_cell_seed(
            3, SweepCell("x86_64", "CT-SEQ", "coffee-lake")
        )


class TestRunnerAndReport:
    @pytest.fixture(scope="class")
    def report(self):
        spec = SweepSpec(
            arches=("x86_64",),
            contracts=("CT-SEQ", "CT-COND"),
            cpus=("skylake", "coffee-lake"),
            base_config=tiny_config(),
        )
        return run_sweep(spec)

    def test_one_result_per_cell(self, report):
        assert len(report.results) == 4
        assert [result.cell for result in report.results] == (
            report.spec.cells()
        )
        for result in report.results:
            assert result.campaign.merged.test_cases == 4

    def test_markdown_matrix_shape(self, report):
        markdown = report.to_markdown()
        assert "## x86_64" in markdown
        assert "| contract \\ cpu | skylake | coffee-lake |" in markdown
        assert "| CT-SEQ |" in markdown
        assert "| CT-COND |" in markdown

    def test_json_report_shape(self, report):
        data = report.to_json()
        assert data["grid"]["contracts"] == ["CT-SEQ", "CT-COND"]
        assert len(data["cells"]) == 4
        assert set(data["timing"]) == {
            result.cell.label for result in report.results
        }
        # the full report is json-serializable as-is
        json.dumps(data)

    def test_cell_result_lookup(self, report):
        cell = SweepCell("x86_64", "CT-COND", "coffee-lake")
        assert report.cell_result(cell).cell == cell
        with pytest.raises(KeyError):
            report.cell_result(SweepCell("aarch64", "CT-SEQ", "skylake"))

    def test_same_spec_reproduces_cell_reports_byte_for_byte(self, report):
        spec = SweepSpec(
            arches=("x86_64",),
            contracts=("CT-SEQ", "CT-COND"),
            cpus=("skylake", "coffee-lake"),
            base_config=tiny_config(),
        )
        again = run_sweep(spec)
        assert again.cell_reports_json() == report.cell_reports_json()

    def test_progress_callback_sees_every_cell(self):
        spec = SweepSpec(
            arches=("x86_64",), contracts=("CT-SEQ",),
            cpus=("skylake",), base_config=tiny_config(),
        )
        seen = []
        SweepRunner(spec).run(
            progress=lambda cell, campaign: seen.append(cell.label)
        )
        assert seen == ["x86_64/CT-SEQ/skylake"]


class TestCacheSharing:
    def test_cpu_axis_cells_reuse_traces_from_disk(self, tmp_path):
        spec = SweepSpec(
            arches=("x86_64",),
            contracts=("CT-SEQ",),
            cpus=("skylake", "coffee-lake"),
            base_config=tiny_config(),
        )
        report = SweepRunner(spec, cache_dir=str(tmp_path)).run()
        skylake, coffee = report.results
        # the first cell misses (cold cache), the second replays the
        # identical battery and resolves it from the shared disk tier
        assert skylake.campaign.merged.trace_cache_disk_hits == 0
        assert coffee.campaign.merged.trace_cache_disk_hits > 0

    def test_cache_does_not_change_results(self, tmp_path):
        spec = SweepSpec(
            arches=("x86_64",),
            contracts=("CT-SEQ", "CT-COND"),
            cpus=("skylake", "coffee-lake"),
            base_config=tiny_config(),
        )
        uncached = SweepRunner(spec).run()
        cached = SweepRunner(spec, cache_dir=str(tmp_path)).run()
        warm = SweepRunner(spec, cache_dir=str(tmp_path)).run()
        assert (
            uncached.cell_reports_json()
            == cached.cell_reports_json()
            == warm.cell_reports_json()
        )
        assert warm.trace_cache_disk_hits > cached.trace_cache_disk_hits

    def test_sharded_workers_share_the_cache_across_processes(self, tmp_path):
        # two pooled worker processes populate the cache; a second
        # campaign (new processes) resolves their traces from disk
        spec = SweepSpec(
            arches=("x86_64",),
            contracts=("CT-SEQ",),
            cpus=("skylake",),
            base_config=tiny_config(num_test_cases=6),
            workers=2,
            shards=2,
        )
        cold = SweepRunner(spec, cache_dir=str(tmp_path)).run()
        warm = SweepRunner(spec, cache_dir=str(tmp_path)).run()
        assert warm.trace_cache_disk_hits > 0
        assert warm.cell_reports_json() == cold.cell_reports_json()
