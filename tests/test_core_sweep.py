"""Tests for the cross-ISA sweep engine: grid construction, cell seed
derivation, report rendering, determinism across runs, parallel cell
scheduling, trace-cache sharing between cells and across processes,
and the size-bounded disk-cache GC."""

import json
from dataclasses import replace

import pytest

from repro.core.config import FuzzerConfig
from repro.core.sweep import (
    SweepCell,
    SweepRunner,
    SweepSpec,
    cell_worker_budget,
    derive_cell_seed,
    run_sweep,
)
from repro.core.trace_cache import PersistentTraceCache


def tiny_config(**overrides):
    """A fast, budget-bound base config for grid tests."""
    defaults = dict(
        instruction_subsets=("AR",),
        num_test_cases=4,
        inputs_per_test_case=6,
        diversity_feedback=False,
        seed=7,
    )
    defaults.update(overrides)
    return FuzzerConfig(**defaults)


class TestSpec:
    def test_cells_are_arch_major_cartesian(self):
        spec = SweepSpec(
            arches=("x86_64", "aarch64"),
            contracts=("CT-SEQ", "CT-COND"),
            cpus=("skylake",),
        )
        labels = [cell.label for cell in spec.cells()]
        assert labels == [
            "x86_64/CT-SEQ/skylake",
            "x86_64/CT-COND/skylake",
            "aarch64/CT-SEQ/skylake",
            "aarch64/CT-COND/skylake",
        ]

    def test_unknown_axis_values_rejected(self):
        with pytest.raises(ValueError, match="unknown arch"):
            SweepSpec(arches=("riscv64",))
        with pytest.raises(ValueError, match="unknown contract"):
            SweepSpec(contracts=("CT-BOGUS",))
        with pytest.raises(ValueError, match="unknown cpu"):
            SweepSpec(cpus=("m1",))
        with pytest.raises(ValueError, match="must not be empty"):
            SweepSpec(arches=())

    def test_duplicate_axis_values_rejected(self):
        with pytest.raises(ValueError, match="duplicate cpu"):
            SweepSpec(cpus=("skylake", "skylake"))

    def test_override_for_missing_cell_rejected(self):
        with pytest.raises(ValueError, match="matches no grid cell"):
            SweepSpec(
                budget_overrides={("x86-64", "CT-SEQ", "skylake"): 5}
            )

    def test_cell_config_inherits_base_and_replaces_target(self):
        spec = SweepSpec(
            arches=("aarch64",),
            contracts=("CT-COND",),
            cpus=("coffee-lake",),
            base_config=tiny_config(inputs_per_test_case=13),
        )
        config = spec.cell_config(spec.cells()[0])
        assert config.arch == "aarch64"
        assert config.contract_name == "CT-COND"
        assert config.cpu_preset == "coffee-lake"
        assert config.inputs_per_test_case == 13
        assert config.seed == derive_cell_seed(7, spec.cells()[0])

    def test_total_budget_splits_like_shard_budgets(self):
        spec = SweepSpec(
            arches=("x86_64",),
            contracts=("CT-SEQ", "CT-COND"),
            cpus=("skylake", "coffee-lake"),
            base_config=tiny_config(),
            total_budget=10,
        )
        cells = spec.cells()
        budgets = [
            spec.cell_config(cell, index, len(cells)).num_test_cases
            for index, cell in enumerate(cells)
        ]
        assert budgets == [3, 3, 2, 2]
        assert sum(budgets) == 10

    def test_budget_overrides_pin_cells(self):
        spec = SweepSpec(
            arches=("x86_64",),
            contracts=("CT-SEQ", "CT-COND"),
            cpus=("skylake",),
            base_config=tiny_config(num_test_cases=50),
            budget_overrides={("x86_64", "CT-COND", "skylake"): 5},
        )
        by_contract = {
            cell.contract: spec.cell_config(cell).num_test_cases
            for cell in spec.cells()
        }
        assert by_contract == {"CT-SEQ": 50, "CT-COND": 5}


class TestCellSeeds:
    def test_deterministic(self):
        cell = SweepCell("x86_64", "CT-SEQ", "skylake")
        assert derive_cell_seed(3, cell) == derive_cell_seed(3, cell)

    def test_varies_with_base_seed_arch_and_contract(self):
        cell = SweepCell("x86_64", "CT-SEQ", "skylake")
        assert derive_cell_seed(3, cell) != derive_cell_seed(4, cell)
        assert derive_cell_seed(3, cell) != derive_cell_seed(
            3, SweepCell("aarch64", "CT-SEQ", "skylake")
        )
        assert derive_cell_seed(3, cell) != derive_cell_seed(
            3, SweepCell("x86_64", "CT-COND", "skylake")
        )

    def test_cpu_axis_shares_the_battery(self):
        # deliberate: cells along the cpu axis replay identical
        # program/input streams (fair comparison + cache sharing)
        assert derive_cell_seed(
            3, SweepCell("x86_64", "CT-SEQ", "skylake")
        ) == derive_cell_seed(
            3, SweepCell("x86_64", "CT-SEQ", "coffee-lake")
        )


class TestRunnerAndReport:
    @pytest.fixture(scope="class")
    def report(self):
        spec = SweepSpec(
            arches=("x86_64",),
            contracts=("CT-SEQ", "CT-COND"),
            cpus=("skylake", "coffee-lake"),
            base_config=tiny_config(),
        )
        return run_sweep(spec)

    def test_one_result_per_cell(self, report):
        assert len(report.results) == 4
        assert [result.cell for result in report.results] == (
            report.spec.cells()
        )
        for result in report.results:
            assert result.campaign.merged.test_cases == 4

    def test_markdown_matrix_shape(self, report):
        markdown = report.to_markdown()
        assert "## x86_64" in markdown
        assert "| contract \\ cpu | skylake | coffee-lake |" in markdown
        assert "| CT-SEQ |" in markdown
        assert "| CT-COND |" in markdown

    def test_json_report_shape(self, report):
        data = report.to_json()
        assert data["grid"]["contracts"] == ["CT-SEQ", "CT-COND"]
        assert len(data["cells"]) == 4
        assert set(data["timing"]) == {
            result.cell.label for result in report.results
        }
        # the full report is json-serializable as-is
        json.dumps(data)

    def test_cell_result_lookup(self, report):
        cell = SweepCell("x86_64", "CT-COND", "coffee-lake")
        assert report.cell_result(cell).cell == cell
        with pytest.raises(KeyError):
            report.cell_result(SweepCell("aarch64", "CT-SEQ", "skylake"))

    def test_same_spec_reproduces_cell_reports_byte_for_byte(self, report):
        spec = SweepSpec(
            arches=("x86_64",),
            contracts=("CT-SEQ", "CT-COND"),
            cpus=("skylake", "coffee-lake"),
            base_config=tiny_config(),
        )
        again = run_sweep(spec)
        assert again.cell_reports_json() == report.cell_reports_json()

    def test_progress_callback_sees_every_cell(self):
        spec = SweepSpec(
            arches=("x86_64",), contracts=("CT-SEQ",),
            cpus=("skylake",), base_config=tiny_config(),
        )
        seen = []
        SweepRunner(spec).run(
            progress=lambda cell, campaign: seen.append(cell.label)
        )
        assert seen == ["x86_64/CT-SEQ/skylake"]


class TestWorkerBudget:
    def test_single_cell_keeps_full_pool(self):
        assert cell_worker_budget(4, 1) == 4

    def test_budget_splits_across_cells(self):
        assert cell_worker_budget(4, 2) == 2
        assert cell_worker_budget(8, 3) == 2
        assert cell_worker_budget(1, 4) == 1  # never below one

    def test_invariant_never_oversubscribes(self):
        for workers in range(1, 9):
            for cells in range(1, 9):
                budget = cell_worker_budget(workers, cells)
                assert cells * budget <= max(workers, cells)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            cell_worker_budget(0, 1)
        with pytest.raises(ValueError):
            cell_worker_budget(1, 0)


class TestParallelScheduling:
    def grid_spec(self, **config_overrides):
        return SweepSpec(
            arches=("x86_64",),
            contracts=("CT-SEQ", "CT-COND"),
            cpus=("skylake", "coffee-lake"),
            base_config=tiny_config(**config_overrides),
        )

    def test_invalid_parallelism_rejected(self):
        with pytest.raises(ValueError, match="max_parallel_cells"):
            SweepRunner(self.grid_spec(), max_parallel_cells=0)

    def test_parallel_reports_byte_identical_to_sequential(self):
        spec = self.grid_spec()
        sequential = SweepRunner(spec).run()
        parallel = SweepRunner(spec, max_parallel_cells=4).run()
        assert (
            parallel.cell_reports_json() == sequential.cell_reports_json()
        )
        assert [result.cell for result in parallel.results] == spec.cells()
        assert parallel.max_parallel_cells == 4

    def test_parallel_with_shard_pools_byte_identical(self):
        # shards pinned to 2 while the per-cell pool is budgeted down:
        # the partition, and therefore the report, must not move
        spec = self.grid_spec()
        spec.contracts = ("CT-SEQ",)
        spec.workers = 2
        spec.shards = 2
        sequential = SweepRunner(spec).run()
        parallel = SweepRunner(spec, max_parallel_cells=2).run()
        assert (
            parallel.cell_reports_json() == sequential.cell_reports_json()
        )
        for result in parallel.results:
            assert result.campaign.shards == 2
        assert parallel.cell_workers == 1  # 2 workers // 2 cells

    def test_progress_sees_every_cell_in_completion_order(self):
        spec = self.grid_spec()
        seen = []
        SweepRunner(spec, max_parallel_cells=2).run(
            progress=lambda cell, campaign: seen.append(cell.label)
        )
        assert sorted(seen) == sorted(cell.label for cell in spec.cells())

    def test_parallel_cells_share_the_persistent_cache(self, tmp_path):
        spec = self.grid_spec()
        cold = SweepRunner(
            spec, cache_dir=str(tmp_path), max_parallel_cells=2
        ).run()
        warm = SweepRunner(
            spec, cache_dir=str(tmp_path), max_parallel_cells=2
        ).run()
        assert warm.trace_cache_disk_hits > 0
        assert warm.cell_reports_json() == cold.cell_reports_json()

    def test_first_violation_mode_works_in_parallel_cells(self):
        spec = self.grid_spec()
        spec.mode = "first-violation"
        report = SweepRunner(spec, max_parallel_cells=2).run()
        assert len(report.results) == 4
        for result in report.results:
            assert result.campaign.mode == "first-violation"

    def test_worker_failure_surfaces_cell_label(self, monkeypatch):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork so workers inherit the monkeypatch")
        import repro.core.sweep as sweep_module

        def explode(self):
            raise RuntimeError("exploding campaign")

        monkeypatch.setattr(sweep_module.CampaignRunner, "run", explode)
        with pytest.raises(RuntimeError, match="sweep cell x86_64/"):
            SweepRunner(self.grid_spec(), max_parallel_cells=2).run()

    def test_killed_worker_detected_instead_of_hanging(self, monkeypatch):
        import multiprocessing
        import os

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork so workers inherit the monkeypatch")
        import repro.core.sweep as sweep_module

        def die_silently(self):
            os._exit(3)  # skips the worker's exception reporting

        monkeypatch.setattr(sweep_module.CampaignRunner, "run", die_silently)
        with pytest.raises(RuntimeError, match="died with exit code 3"):
            SweepRunner(self.grid_spec(), max_parallel_cells=2).run()

    def test_json_reports_scheduling_and_cache_sections(self, tmp_path):
        spec = self.grid_spec()
        report = SweepRunner(
            spec, cache_dir=str(tmp_path), max_parallel_cells=3
        ).run()
        data = report.to_json()
        assert data["scheduling"] == {
            "max_parallel_cells": 3,
            "cell_workers": 1,
            "schedule": "static",
            "steal_workers": None,
        }
        assert data["trace_cache"]["disk_bytes"] is not None
        assert data["trace_cache"]["max_bytes"] is None
        json.dumps(data)  # still serializable as-is


class TestWorkStealing:
    def grid_spec(self, **spec_overrides):
        """A 2-ISA grid with pinned shards so there is real stealing
        granularity (workers=1 would otherwise mean 1 shard/cell)."""
        values = dict(
            arches=("x86_64", "aarch64"),
            contracts=("CT-SEQ",),
            cpus=("skylake",),
            base_config=tiny_config(num_test_cases=6),
            workers=1,
            shards=2,
        )
        values.update(spec_overrides)
        return SweepSpec(**values)

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            SweepRunner(self.grid_spec(), schedule="round-robin")

    def test_work_stealing_requires_full_mode(self):
        spec = self.grid_spec(mode="first-violation")
        with pytest.raises(ValueError, match="requires mode='full'"):
            SweepRunner(spec, schedule="work-stealing")

    def test_resume_requires_a_journal(self):
        with pytest.raises(ValueError, match="resume requires"):
            SweepRunner(
                self.grid_spec(), schedule="work-stealing", resume=True
            )

    def test_journal_requires_work_stealing(self, tmp_path):
        with pytest.raises(ValueError, match="work-stealing"):
            SweepRunner(self.grid_spec(), journal_dir=str(tmp_path))

    def test_byte_identical_to_static_across_isas(self):
        spec = self.grid_spec()
        static = SweepRunner(spec).run()
        stealing = SweepRunner(
            spec, schedule="work-stealing", max_parallel_cells=2
        ).run()
        assert (
            stealing.cell_reports_json() == static.cell_reports_json()
        )
        assert stealing.schedule == "work-stealing"
        assert stealing.steal_workers == 2
        assert static.schedule == "static"
        assert static.steal_workers is None
        assert stealing.report_digest() == static.report_digest()

    def test_byte_identical_with_heterogeneous_budgets(self):
        # the scheduler's target shape: one cell much bigger than the
        # others must not perturb any merged report
        spec = self.grid_spec(
            budget_overrides={("x86_64", "CT-SEQ", "skylake"): 18}
        )
        static = SweepRunner(spec).run()
        stealing = SweepRunner(
            spec, schedule="work-stealing", max_parallel_cells=4
        ).run()
        assert (
            stealing.cell_reports_json() == static.cell_reports_json()
        )

    def test_inline_when_pool_is_one(self):
        spec = self.grid_spec(arches=("x86_64",))
        static = SweepRunner(spec).run()
        stealing = SweepRunner(spec, schedule="work-stealing").run()
        assert (
            stealing.cell_reports_json() == static.cell_reports_json()
        )
        assert stealing.steal_workers == 1

    def test_progress_fires_once_per_cell(self):
        seen = []
        SweepRunner(
            self.grid_spec(), schedule="work-stealing",
            max_parallel_cells=2,
        ).run(progress=lambda cell, campaign: seen.append(cell.label))
        assert sorted(seen) == sorted(
            cell.label for cell in self.grid_spec().cells()
        )

    def test_journal_records_every_unit(self, tmp_path):
        spec = self.grid_spec()
        SweepRunner(
            spec, schedule="work-stealing", max_parallel_cells=2,
            journal_dir=str(tmp_path / "journal"),
        ).run()
        records = sorted(
            name for name in (tmp_path / "journal").iterdir()
            if name.name.startswith("shard-")
        )
        assert len(records) == len(spec.cells()) * 2  # 2 shards/cell
        assert (tmp_path / "journal" / "spec.json").exists()

    def test_resume_reproduces_the_digest(self, tmp_path):
        spec = self.grid_spec()
        journal_dir = tmp_path / "journal"
        first = SweepRunner(
            spec, schedule="work-stealing", max_parallel_cells=2,
            journal_dir=str(journal_dir),
        ).run()
        # lose half the checkpoints, as a crash would
        records = sorted(
            path for path in journal_dir.iterdir()
            if path.name.startswith("shard-")
        )
        for path in records[::2]:
            path.unlink()
        resumed = SweepRunner(
            spec, schedule="work-stealing", max_parallel_cells=2,
            journal_dir=str(journal_dir), resume=True,
        ).run()
        assert resumed.report_digest() == first.report_digest()
        assert (
            resumed.cell_reports_json() == first.cell_reports_json()
        )

    def test_complete_journal_resumes_without_rerunning(self, tmp_path):
        import repro.core.sweep as sweep_module

        spec = self.grid_spec()
        journal_dir = tmp_path / "journal"
        first = SweepRunner(
            spec, schedule="work-stealing", max_parallel_cells=2,
            journal_dir=str(journal_dir),
        ).run()

        def forbidden(config):
            raise AssertionError("a complete journal must not re-fuzz")

        # the inline path calls _run_unit directly, so patching it
        # proves a full journal replays without any fuzzing
        original = sweep_module._run_unit
        sweep_module._run_unit = forbidden
        try:
            resumed = SweepRunner(
                spec, schedule="work-stealing", max_parallel_cells=2,
                journal_dir=str(journal_dir), resume=True,
            ).run()
        finally:
            sweep_module._run_unit = original
        assert resumed.report_digest() == first.report_digest()

    def test_resume_with_conflicting_spec_is_a_hard_error(self, tmp_path):
        from repro.core.journal import JournalMismatch

        journal_dir = tmp_path / "journal"
        SweepRunner(
            self.grid_spec(), schedule="work-stealing",
            max_parallel_cells=2, journal_dir=str(journal_dir),
        ).run()
        conflicting = self.grid_spec(
            base_config=tiny_config(num_test_cases=9)
        )
        with pytest.raises(JournalMismatch, match="digest"):
            SweepRunner(
                conflicting, schedule="work-stealing",
                max_parallel_cells=2,
                journal_dir=str(journal_dir), resume=True,
            ).run()

    def test_torn_record_is_rerun_not_trusted(self, tmp_path):
        spec = self.grid_spec()
        journal_dir = tmp_path / "journal"
        first = SweepRunner(
            spec, schedule="work-stealing", max_parallel_cells=2,
            journal_dir=str(journal_dir),
        ).run()
        victim = sorted(
            path for path in journal_dir.iterdir()
            if path.name.startswith("shard-")
        )[0]
        victim.write_bytes(b"torn mid-write")
        resumed = SweepRunner(
            spec, schedule="work-stealing", max_parallel_cells=2,
            journal_dir=str(journal_dir), resume=True,
        ).run()
        assert resumed.report_digest() == first.report_digest()

    def test_dead_worker_unit_requeued_on_fresh_process(
        self, monkeypatch, tmp_path
    ):
        import multiprocessing
        import os

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork so workers inherit the monkeypatch")
        import repro.core.sweep as sweep_module

        real_run_unit = sweep_module._run_unit
        died_once = tmp_path / "died-once"

        def die_once_then_work(config):
            # kill the worker holding the aarch64 cell's first unit,
            # exactly once; the flag file is fork-shared state
            if config.arch == "aarch64" and not died_once.exists():
                died_once.write_text("x")
                os._exit(9)
            return real_run_unit(config)

        spec = self.grid_spec()
        static = SweepRunner(spec).run()
        monkeypatch.setattr(
            sweep_module, "_run_unit", die_once_then_work
        )
        healed = SweepRunner(
            spec, schedule="work-stealing", max_parallel_cells=2
        ).run()
        assert died_once.exists()  # the kill actually happened
        assert healed.cell_reports_json() == static.cell_reports_json()

    def test_repeatedly_dying_unit_fails_the_sweep(
        self, monkeypatch, tmp_path
    ):
        import multiprocessing
        import os

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork so workers inherit the monkeypatch")
        import repro.core.sweep as sweep_module

        real_run_unit = sweep_module._run_unit

        def poison_pill(config):
            if config.arch == "aarch64":
                os._exit(9)
            return real_run_unit(config)

        monkeypatch.setattr(sweep_module, "_run_unit", poison_pill)
        with pytest.raises(RuntimeError, match="giving up"):
            SweepRunner(
                self.grid_spec(), schedule="work-stealing",
                max_parallel_cells=2,
            ).run()


class TestSweepCacheGC:
    def test_bounded_sweep_keeps_cache_within_the_bound(self, tmp_path):
        bound = 8 * 1024
        spec = SweepSpec(
            arches=("x86_64",),
            contracts=("CT-SEQ",),
            cpus=("skylake", "coffee-lake"),
            base_config=tiny_config(
                num_test_cases=8, trace_cache_max_bytes=bound
            ),
        )
        report = SweepRunner(spec, cache_dir=str(tmp_path)).run()
        assert report.trace_cache_disk_bytes <= bound
        usage = PersistentTraceCache(str(tmp_path)).disk_usage_bytes()
        assert usage <= bound
        # the tiny bound forces evictions somewhere in the run
        assert report.trace_cache_gc_evictions > 0
        assert report.trace_cache_gc_bytes > 0

    def test_gc_does_not_change_results(self, tmp_path):
        spec = SweepSpec(
            arches=("x86_64",),
            contracts=("CT-SEQ",),
            cpus=("skylake", "coffee-lake"),
            base_config=tiny_config(),
        )
        unbounded = SweepRunner(spec, cache_dir=str(tmp_path / "a")).run()
        bounded_spec = replace(spec)
        bounded_spec.base_config = replace(
            spec.base_config, trace_cache_max_bytes=4 * 1024
        )
        bounded = SweepRunner(
            bounded_spec, cache_dir=str(tmp_path / "b")
        ).run()
        assert bounded.cell_reports_json() == unbounded.cell_reports_json()


class TestCacheSharing:
    def test_cpu_axis_cells_reuse_traces_from_disk(self, tmp_path):
        spec = SweepSpec(
            arches=("x86_64",),
            contracts=("CT-SEQ",),
            cpus=("skylake", "coffee-lake"),
            base_config=tiny_config(),
        )
        report = SweepRunner(spec, cache_dir=str(tmp_path)).run()
        skylake, coffee = report.results
        # the first cell misses (cold cache), the second replays the
        # identical battery and resolves it from the shared disk tier
        assert skylake.campaign.merged.trace_cache_disk_hits == 0
        assert coffee.campaign.merged.trace_cache_disk_hits > 0

    def test_cache_does_not_change_results(self, tmp_path):
        spec = SweepSpec(
            arches=("x86_64",),
            contracts=("CT-SEQ", "CT-COND"),
            cpus=("skylake", "coffee-lake"),
            base_config=tiny_config(),
        )
        uncached = SweepRunner(spec).run()
        cached = SweepRunner(spec, cache_dir=str(tmp_path)).run()
        warm = SweepRunner(spec, cache_dir=str(tmp_path)).run()
        assert (
            uncached.cell_reports_json()
            == cached.cell_reports_json()
            == warm.cell_reports_json()
        )
        assert warm.trace_cache_disk_hits > cached.trace_cache_disk_hits

    def test_sharded_workers_share_the_cache_across_processes(self, tmp_path):
        # two pooled worker processes populate the cache; a second
        # campaign (new processes) resolves their traces from disk
        spec = SweepSpec(
            arches=("x86_64",),
            contracts=("CT-SEQ",),
            cpus=("skylake",),
            base_config=tiny_config(num_test_cases=6),
            workers=2,
            shards=2,
        )
        cold = SweepRunner(spec, cache_dir=str(tmp_path)).run()
        warm = SweepRunner(spec, cache_dir=str(tmp_path)).run()
        assert warm.trace_cache_disk_hits > 0
        assert warm.cell_reports_json() == cold.cell_reports_json()
