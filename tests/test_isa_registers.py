"""Unit tests for the register file description."""

import pytest

from repro.isa.registers import (
    FLAG_BITS,
    GPR_NAMES,
    SANDBOX_BASE_REGISTER,
    canonical_register,
    is_register,
    register_width,
    view_name,
)


class TestCanonicalRegister:
    def test_sixteen_gprs(self):
        assert len(GPR_NAMES) == 16

    def test_canonical_of_canonical(self):
        for name in GPR_NAMES:
            assert canonical_register(name) == name

    @pytest.mark.parametrize(
        "view,canonical",
        [
            ("EAX", "RAX"),
            ("AX", "RAX"),
            ("AL", "RAX"),
            ("AH", "RAX"),
            ("BL", "RBX"),
            ("SIL", "RSI"),
            ("R8D", "R8"),
            ("R15W", "R15"),
            ("R10B", "R10"),
        ],
    )
    def test_views(self, view, canonical):
        assert canonical_register(view) == canonical

    def test_case_insensitive(self):
        assert canonical_register("eax") == "RAX"
        assert canonical_register("r9d") == "R9"

    def test_unknown_register_raises(self):
        with pytest.raises(ValueError):
            canonical_register("XMM0")


class TestRegisterWidth:
    @pytest.mark.parametrize(
        "name,width",
        [
            ("RAX", 64),
            ("EBX", 32),
            ("CX", 16),
            ("DL", 8),
            ("R8", 64),
            ("R8D", 32),
            ("R8W", 16),
            ("R8B", 8),
        ],
    )
    def test_widths(self, name, width):
        assert register_width(name) == width

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            register_width("FOO")


class TestViewName:
    @pytest.mark.parametrize(
        "canonical,width,expected",
        [
            ("RAX", 64, "RAX"),
            ("RAX", 32, "EAX"),
            ("RAX", 16, "AX"),
            ("RAX", 8, "AL"),
            ("RSI", 8, "SIL"),
            ("R10", 32, "R10D"),
            ("R10", 16, "R10W"),
            ("R10", 8, "R10B"),
        ],
    )
    def test_names(self, canonical, width, expected):
        assert view_name(canonical, width) == expected

    def test_view_name_roundtrip(self):
        for canonical in GPR_NAMES:
            for width in (8, 16, 32, 64):
                name = view_name(canonical, width)
                assert canonical_register(name) == canonical
                assert register_width(name) == width

    def test_non_canonical_rejected(self):
        with pytest.raises(ValueError):
            view_name("EAX", 16)


class TestMisc:
    def test_sandbox_base_is_r14(self):
        # the paper's Figure 3 keeps the sandbox base in R14
        assert SANDBOX_BASE_REGISTER == "R14"

    def test_flag_bits(self):
        assert set(FLAG_BITS) == {"CF", "PF", "AF", "ZF", "SF", "OF"}

    def test_is_register(self):
        assert is_register("rax")
        assert is_register("R11B")
        assert not is_register("0x40")
        assert not is_register("qword")
