"""Tests for the parallel campaign engine: deterministic sharding,
report merging (coverage union, first-violation-wins), and inline-vs-
pooled parity."""

import pytest

from repro.isa.instruction import TestCaseProgram
from repro.traces import CTrace, HTrace
from repro.core.campaign import (
    CampaignRunner,
    derive_shard_seed,
    merge_reports,
    run_campaign,
    shard_budgets,
    shard_fuzzer_config,
)
from repro.core.config import FuzzerConfig
from repro.core.fuzzer import FuzzingReport
from repro.core.patterns import PatternCoverage
from repro.core.violation import Violation


def quick_config(**overrides):
    defaults = dict(
        instruction_subsets=("AR",),
        contract_name="CT-SEQ",
        cpu_preset="skylake-v4-patched",
        num_test_cases=16,
        inputs_per_test_case=10,
        diversity_feedback=False,
        seed=3,
    )
    defaults.update(overrides)
    return FuzzerConfig(**defaults)


class TestSharding:
    def test_shard_seeds_deterministic(self):
        assert derive_shard_seed(7, 0) == derive_shard_seed(7, 0)
        assert derive_shard_seed(7, 1) == derive_shard_seed(7, 1)

    def test_shard_seeds_distinct(self):
        seeds = [derive_shard_seed(0, index) for index in range(64)]
        seeds += [derive_shard_seed(1, index) for index in range(64)]
        assert len(set(seeds)) == len(seeds)
        assert all(0 <= seed < 2**31 for seed in seeds)

    def test_negative_shard_rejected(self):
        with pytest.raises(ValueError):
            derive_shard_seed(0, -1)

    def test_budget_split(self):
        assert shard_budgets(10, 4) == [3, 3, 2, 2]
        assert shard_budgets(8, 4) == [2, 2, 2, 2]
        assert shard_budgets(2, 4) == [1, 1, 0, 0]
        assert sum(shard_budgets(1234, 7)) == 1234

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_budgets(10, 0)

    def test_shard_config_derivation(self):
        config = quick_config(num_test_cases=10, seed=7)
        first = shard_fuzzer_config(config, 0, 4)
        last = shard_fuzzer_config(config, 3, 4)
        assert first.seed == derive_shard_seed(7, 0)
        assert last.seed == derive_shard_seed(7, 3)
        assert first.num_test_cases == 3
        assert last.num_test_cases == 2
        # everything else is inherited
        assert first.contract_name == config.contract_name
        assert first.inputs_per_test_case == config.inputs_per_test_case


def _report(test_cases=10, effectiveness=0.5, found_after=None, covered=()):
    report = FuzzingReport(
        test_cases=test_cases,
        inputs_tested=test_cases * 10,
        duration_seconds=1.0,
        mean_effectiveness=effectiveness,
        coverage=PatternCoverage(covered={frozenset({p}) for p in covered}),
        unconfirmed_candidates=1,
    )
    if found_after is not None:
        report.violation = Violation(
            program=TestCaseProgram(),
            contract_name="CT-SEQ",
            cpu_name="skylake",
            ctrace=CTrace(()),
            input_sequence=[],
            position_a=0,
            position_b=1,
            htrace_a=HTrace.empty(),
            htrace_b=HTrace.empty(),
            test_cases_until_found=found_after,
            inputs_until_found=found_after * 10,
        )
    return report


class TestMerging:
    def test_counters_summed_and_coverage_unioned(self):
        merged, winner = merge_reports(
            [
                _report(test_cases=10, effectiveness=1.0, covered={"reg-dep"}),
                _report(test_cases=30, effectiveness=0.5,
                        covered={"reg-dep", "flag-dep"}),
            ]
        )
        assert winner is None
        assert not merged.found
        assert merged.test_cases == 40
        assert merged.inputs_tested == 400
        assert merged.unconfirmed_candidates == 2
        assert merged.duration_seconds == pytest.approx(2.0)
        # test-case-weighted mean: (10*1.0 + 30*0.5) / 40
        assert merged.mean_effectiveness == pytest.approx(0.625)
        assert merged.coverage.covered == {
            frozenset({"reg-dep"}),
            frozenset({"flag-dep"}),
        }

    def test_first_violation_wins(self):
        merged, winner = merge_reports(
            [
                _report(found_after=20),
                _report(found_after=5),
                _report(),
            ]
        )
        assert winner == 1
        assert merged.violation.test_cases_until_found == 5

    def test_tie_breaks_on_shard_index(self):
        merged, winner = merge_reports(
            [_report(), _report(found_after=5), _report(found_after=5)]
        )
        assert winner == 1
        assert merged.violation is not None

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError):
            merge_reports([])


class TestCampaignRuns:
    def test_inline_matches_pooled(self):
        """The merged report depends on the shard partition only, not on
        the worker count or process scheduling."""
        config = quick_config()
        inline = CampaignRunner(config, workers=1, shards=2).run()
        pooled = CampaignRunner(config, workers=2, shards=2).run()
        assert inline.merged.test_cases == pooled.merged.test_cases
        assert inline.merged.inputs_tested == pooled.merged.inputs_tested
        assert inline.found == pooled.found
        assert inline.merged.coverage.covered == pooled.merged.coverage.covered
        assert [r.test_cases for r in inline.shard_reports] == [
            r.test_cases for r in pooled.shard_reports
        ]

    def test_campaign_finds_violation(self):
        config = quick_config(
            instruction_subsets=("AR", "MEM", "CB"),
            num_test_cases=160,
            inputs_per_test_case=25,
            diversity_feedback=True,
            seed=7,
        )
        report = run_campaign(config, workers=2, shards=2)
        assert report.found
        assert report.winning_shard in (0, 1)
        assert report.violation.classification.startswith("V1")
        assert "VIOLATION" in report.summary()
        assert report.merged.contract_emulations > 0

    def test_clean_campaign_summary(self):
        report = CampaignRunner(quick_config(), workers=1, shards=2).run()
        assert not report.found
        assert report.shards == 2
        assert "no violation" in report.summary()
        assert report.wall_seconds > 0
        assert report.observed_concurrency > 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CampaignRunner(quick_config(), workers=0)
        with pytest.raises(ValueError):
            CampaignRunner(quick_config(), workers=2, shards=0)
        with pytest.raises(ValueError):
            CampaignRunner(quick_config(), mode="sometimes")


def violating_config(**overrides):
    """A config whose shards reliably find a V1 within their budget."""
    defaults = dict(
        instruction_subsets=("AR", "MEM", "CB"),
        num_test_cases=160,
        inputs_per_test_case=25,
        diversity_feedback=True,
        seed=7,
    )
    defaults.update(overrides)
    return quick_config(**defaults)


class TestFirstViolationMode:
    def test_fuzzer_honours_stop_signal(self):
        from repro.core.fuzzer import Fuzzer

        report = Fuzzer(quick_config()).run(should_stop=lambda: True)
        assert report.cancelled
        assert report.test_cases == 0

    def test_inline_early_cancel_skips_remaining_shards(self):
        config = violating_config()
        full = CampaignRunner(config, workers=1, shards=4).run()
        early = CampaignRunner(
            config, workers=1, shards=4, mode="first-violation"
        ).run()
        assert full.found and early.found
        assert early.mode == "first-violation"
        winner = early.winning_shard
        # shards up to and including the winner ran exactly as in full
        # mode (merged-report determinism for completed shards) ...
        for index in range(winner + 1):
            assert (
                early.shard_reports[index].test_cases
                == full.shard_reports[index].test_cases
            )
            assert not early.shard_reports[index].cancelled
        # ... and every later shard was cancelled without spending budget
        for index in range(winner + 1, 4):
            assert early.shard_reports[index].cancelled
            assert early.shard_reports[index].test_cases == 0
        assert early.cancelled_shards == 4 - (winner + 1)
        assert early.merged.test_cases <= full.merged.test_cases
        assert (
            early.violation.test_cases_until_found
            == full.shard_reports[winner].violation.test_cases_until_found
        )

    def test_inline_clean_campaign_runs_everything(self):
        report = CampaignRunner(
            quick_config(), workers=1, shards=2, mode="first-violation"
        ).run()
        assert not report.found
        assert report.cancelled_shards == 0
        assert sum(r.test_cases for r in report.shard_reports) == 16

    def test_pooled_early_cancel(self):
        config = violating_config()
        report = CampaignRunner(
            config, workers=2, shards=2, mode="first-violation"
        ).run()
        assert report.found
        assert report.violation.classification.startswith("V1")
        # no shard overshoots its deterministic budget
        budgets = shard_budgets(config.num_test_cases, 2)
        for shard, budget in zip(report.shard_reports, budgets):
            assert shard.test_cases <= budget
        if report.cancelled_shards:
            assert "cancelled early" in report.summary()


class TestJournal:
    """Checkpoint/resume: one atomic record per completed shard, spec
    pinning, and digest-equal resumed reports."""

    def run_journaled(self, tmp_path, resume=False, **config_overrides):
        return CampaignRunner(
            quick_config(**config_overrides), workers=1, shards=3,
            journal_dir=str(tmp_path / "ckpt"), resume=resume,
        ).run()

    def records(self, tmp_path):
        return sorted((tmp_path / "ckpt").glob("shard-*.pkl"))

    def test_every_shard_gets_a_record(self, tmp_path):
        self.run_journaled(tmp_path)
        names = [path.name for path in self.records(tmp_path)]
        assert names == [
            "shard-0000-0000.pkl", "shard-0000-0001.pkl",
            "shard-0000-0002.pkl",
        ]
        assert (tmp_path / "ckpt" / "spec.json").exists()

    def test_complete_journal_resumes_without_rerunning(self, tmp_path):
        import repro.core.campaign as campaign_module

        first = self.run_journaled(tmp_path)

        def refuse(task):
            raise AssertionError("journaled shard was re-run")

        real = campaign_module._run_shard
        campaign_module._run_shard = refuse
        try:
            resumed = self.run_journaled(tmp_path, resume=True)
        finally:
            campaign_module._run_shard = real
        assert resumed.report_digest() == first.report_digest()

    def test_partial_journal_resumes_to_the_same_digest(self, tmp_path):
        first = self.run_journaled(tmp_path)
        self.records(tmp_path)[1].unlink()
        resumed = self.run_journaled(tmp_path, resume=True)
        assert resumed.report_digest() == first.report_digest()
        assert resumed.merged.test_cases == first.merged.test_cases
        assert len(self.records(tmp_path)) == 3  # record republished

    def test_torn_record_is_rerun(self, tmp_path):
        first = self.run_journaled(tmp_path)
        self.records(tmp_path)[0].write_bytes(b"torn mid-write")
        resumed = self.run_journaled(tmp_path, resume=True)
        assert resumed.report_digest() == first.report_digest()

    def test_conflicting_spec_is_a_hard_error(self, tmp_path):
        from repro.core.journal import JournalMismatch

        self.run_journaled(tmp_path)
        with pytest.raises(JournalMismatch, match="digest"):
            self.run_journaled(tmp_path, resume=True, num_test_cases=17)

    def test_engine_knobs_do_not_invalidate_checkpoints(self, tmp_path):
        # byte-identity knobs are excluded from the spec digest, so a
        # resume may legally flip them (docs/performance.md)
        first = self.run_journaled(tmp_path)
        resumed = self.run_journaled(
            tmp_path, resume=True, battery_eval=False
        )
        assert resumed.report_digest() == first.report_digest()

    def test_resume_requires_a_journal_dir(self):
        with pytest.raises(ValueError, match="resume requires"):
            CampaignRunner(quick_config(), resume=True)

    def test_resume_without_a_started_journal(self, tmp_path):
        from repro.core.journal import JournalMismatch

        with pytest.raises(JournalMismatch, match="cannot resume"):
            self.run_journaled(tmp_path, resume=True)

    def test_first_violation_mode_refuses_journaling(self, tmp_path):
        with pytest.raises(ValueError, match="requires mode='full'"):
            CampaignRunner(
                quick_config(), mode="first-violation",
                journal_dir=str(tmp_path / "ckpt"),
            )
