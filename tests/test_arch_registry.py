"""Tests for the architecture-plugin layer (repro.arch).

The core guarantee of the registry: for *every* registered backend,
every catalog entry can be instantiated the way the generator would,
round-tripped through the backend's assembler, and single-stepped on the
emulator — and the execution's observable register/flag writes stay
within the spec's declared clobbers. A backend whose semantics disagree
with its own catalog metadata would silently corrupt the dependency
analysis (issue cycles, pattern mining), so this is checked exhaustively.

Also here: the renamed-fence regression tests. Contracts and the
postprocessor must consult the architecture's serializing-instruction
set; a hard-coded ``"LFENCE"`` check would mis-handle any backend (or
any renamed fence).
"""

import os

import pytest

from repro.arch import architecture_names, get_architecture
from repro.arch.x86_64 import X86_64
from repro.contracts.contract import get_contract
from repro.emulator.state import ArchState, InputData, SandboxLayout
from repro.isa.instruction import Instruction
from repro.isa.operands import (
    AgenOperand,
    ImmediateOperand,
    LabelOperand,
    MemoryOperand,
    RegisterOperand,
)
from repro.isa.registers import canonical_register, is_register, register_width
from repro.core.postprocessor import MinimizationResult

ARCHS = architecture_names()


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert "x86_64" in ARCHS
        assert "aarch64" in ARCHS

    def test_lookup_is_case_insensitive(self):
        assert get_architecture("X86_64") is get_architecture("x86_64")

    def test_unknown_architecture_rejected(self):
        with pytest.raises(KeyError, match="unknown architecture"):
            get_architecture("riscv64")

    def test_descriptor_fields_populated(self):
        for name in ARCHS:
            arch = get_architecture(name)
            assert arch.name == name
            assert arch.registers.gpr_names
            assert arch.registers.flag_bits
            assert arch.registers.sandbox_base_register in arch.registers.gpr_names
            assert len(arch.instruction_set) > 0
            assert arch.condition_codes
            assert arch.serializing_instructions
            assert arch.fence_mnemonic in arch.serializing_instructions
            assert arch.default_register_pool
            # the fence is constructible from the catalog
            assert arch.fence_instruction().mnemonic == arch.fence_mnemonic
            # every condition code has a branch in the catalog
            for code in arch.condition_codes:
                spec = arch.instruction_set.find(
                    arch.cond_branch_mnemonic(code), ("LABEL",)
                )
                assert spec.category == "CB"

    def test_subset_expressions(self):
        for name in ARCHS:
            arch = get_architecture(name)
            subset = arch.parse_subset_expression("AR+MEM+CB")
            assert len(subset) > 0
            categories = {spec.category for spec in subset}
            assert categories <= {"AR", "MEM", "VAR", "CB", "UNCOND"}
            with pytest.raises(ValueError):
                arch.instruction_subset(["NOPE"])

    def test_register_view_registry_spans_architectures(self):
        # x86 and aarch64 names resolve through the same global registry
        assert canonical_register("EAX") == "RAX"
        assert canonical_register("W5") == "X5"
        assert register_width("W5") == 32
        assert register_width("X5") == 64
        assert is_register("R14") and is_register("X27")
        assert not is_register("XZR")

    def test_view_names_round_trip(self):
        for name in ARCHS:
            regfile = get_architecture(name).registers
            for canonical in regfile.gpr_names:
                assert regfile.view_name(canonical, 64) == canonical
                narrow = regfile.view_name(canonical, 32)
                assert regfile.canonical(narrow) == canonical
                assert regfile.width(narrow) == 32


# -- exhaustive catalog round-trip (generator -> assembler -> emulator) -------


def _concrete_operands(arch, spec):
    """Instantiate a spec the way the generator would (deterministically)."""
    pool = list(arch.default_register_pool)
    if spec.category == "VAR":
        pool = list(arch.division_register_pool(pool))
    operands = []
    position = 0
    for template in spec.operands:
        if template.kind == "REG":
            register = pool[position % len(pool)]
            position += 1
            operands.append(
                RegisterOperand(
                    arch.registers.view_name(register, template.width)
                )
            )
        elif template.kind == "IMM":
            operands.append(ImmediateOperand(3))
        elif template.kind == "MEM":
            operands.append(
                MemoryOperand(
                    arch.registers.sandbox_base_register,
                    pool[0],
                    displacement=16,
                    width=template.width,
                )
            )
        elif template.kind == "AGEN":
            operands.append(
                AgenOperand(
                    arch.registers.sandbox_base_register, pool[0], 16
                )
            )
        elif template.kind == "LABEL":
            operands.append(LabelOperand("target"))
        else:  # pragma: no cover
            raise AssertionError(template.kind)
    return tuple(operands)


def _prepared_state(arch):
    """A state whose pool registers hold small values (sandbox-safe
    addresses, non-faulting divisions)."""
    state = ArchState(SandboxLayout(), arch)
    for register in arch.default_register_pool:
        state.write_register(register, 3)
    return state


@pytest.mark.parametrize("arch_name", ARCHS)
def test_catalog_round_trips_and_single_steps(arch_name):
    """Satellite guarantee: every catalog entry survives
    generator-style instantiation -> render -> parse, and a single
    emulator step honours the spec's declared register/flag clobbers."""
    arch = get_architecture(arch_name)
    resolve = lambda label: 7

    for spec in arch.instruction_set:
        instruction = Instruction(spec, _concrete_operands(arch, spec))

        # -- assembler round trip ------------------------------------------
        rendered = arch.render_instruction(instruction)
        reparsed_program = arch.parse_program(rendered)
        reparsed = list(reparsed_program.all_instructions())
        assert len(reparsed) == 1, rendered
        parsed = reparsed[0]
        assert parsed.mnemonic == instruction.mnemonic, rendered
        assert parsed.category == instruction.category, rendered
        assert [str(op) for op in parsed.operands] == [
            str(op) for op in instruction.operands
        ], rendered

        # -- emulator single step under both flag polarities ----------------
        for polarity in (False, True):
            state = _prepared_state(arch)
            for flag in arch.registers.flag_bits:
                state.write_flag(flag, polarity)
            # division guards make the (possibly faulting) division safe,
            # exactly as the generator instruments it
            if spec.category == "VAR":
                for guard in arch.division_guards(instruction):
                    arch.execute(guard, state, 0, resolve)
            registers_before = dict(state.registers)
            flags_before = dict(state.flags)

            result = arch.execute(instruction, state, 0, resolve)
            assert result.instruction is instruction

            changed_registers = {
                name
                for name, value in state.registers.items()
                if registers_before[name] != value
            }
            declared = set(instruction.registers_written())
            assert changed_registers <= declared, (
                f"{rendered}: wrote {changed_registers - declared} "
                f"beyond declared clobbers {declared}"
            )
            changed_flags = {
                flag
                for flag, value in state.flags.items()
                if flags_before[flag] != value
            }
            declared_flags = set(spec.flags_written)
            assert changed_flags <= declared_flags, (
                f"{rendered}: clobbered flags {changed_flags - declared_flags} "
                f"beyond declared {declared_flags}"
            )


# -- CI matrix entry point: fuzz whichever backend REPRO_ARCH selects ---------

#: per-backend budgets known to surface a V1-style violation quickly
_SMOKE_BUDGETS = {
    "x86_64": dict(seed=7, num_test_cases=160, inputs_per_test_case=25),
    "aarch64": dict(seed=3, num_test_cases=120, inputs_per_test_case=50),
}


def test_env_selected_arch_fuzzes_end_to_end():
    """CI runs the suite as a matrix over REPRO_ARCH; this smoke test
    drives the full generate -> trace -> analyze pipeline on whichever
    backend the matrix leg selects (x86_64 when unset)."""
    from repro.core.config import FuzzerConfig
    from repro.core.fuzzer import Fuzzer

    arch_name = os.environ.get("REPRO_ARCH", "x86_64")
    config = FuzzerConfig(
        arch=arch_name,
        instruction_subsets=("AR", "MEM", "CB"),
        contract_name="CT-SEQ",
        cpu_preset="skylake-v4-patched",
        **_SMOKE_BUDGETS[arch_name],
    )
    report = Fuzzer(config).run()
    assert report.found
    assert report.violation.arch_name == arch_name


# -- renamed-fence regression (serializing set, not a literal mnemonic) -------


class RenamedFenceArch(X86_64):
    """x86-64 with the serializing set renamed: only MFENCE serializes.

    If any layer still checked the literal ``"LFENCE"``, traces and leak
    regions under this backend would silently keep x86 behaviour.
    """

    name = "x86_64-renamed-fence"
    serializing_instructions = frozenset({"MFENCE"})
    fence_mnemonic = "MFENCE"


class TestRenamedFence:
    GADGET = """
        JNS .end
        LFENCE
        AND RBX, 0b111111000000
        MOV RCX, qword ptr [R14 + RBX]
    .end: NOP
    """

    def _trace(self, arch, flags):
        program = get_architecture("x86_64").parse_program(self.GADGET)
        contract = get_contract("CT-COND")
        layout = SandboxLayout()
        input_data = InputData(registers={"RBX": 0x140}, flags=flags)
        return contract.collect_trace(program, input_data, layout, arch)

    def test_contract_uses_architecture_serializing_set(self):
        # Branch taken (SF clear is false -> JNS not taken? use SF=False
        # so JNS *is* taken and the wrong path is the fallthrough).
        flags = {"SF": False}
        default_trace = self._trace(get_architecture("x86_64"), flags)
        renamed_trace = self._trace(RenamedFenceArch(), flags)
        # Default backend: LFENCE closes the window before the wrong-path
        # load; renamed backend: LFENCE no longer serializes, the load's
        # address is observed.
        assert 0x10140 not in default_trace.addresses("ld")
        assert 0x10140 in renamed_trace.addresses("ld")

    def test_leak_region_uses_architecture_serializing_set(self):
        program = get_architecture("x86_64").parse_program(
            """
            LFENCE
            MOV RAX, qword ptr [R14 + 8]
            """
        )
        shielded = MinimizationResult(
            program=program,
            inputs=[],
            original_instruction_count=2,
            original_input_count=0,
            serializing=frozenset({"LFENCE", "MFENCE"}),
        )
        assert shielded.leak_region() == []
        renamed = MinimizationResult(
            program=program,
            inputs=[],
            original_instruction_count=2,
            original_input_count=0,
            serializing=frozenset({"MFENCE"}),
        )
        # under the renamed set the LFENCE is an ordinary instruction:
        # it no longer closes the region and the load stays leaking
        assert renamed.leak_region() == [
            "LFENCE",
            "MOV RAX, qword ptr [R14 + 8]",
        ]

    def test_leak_region_defaults_to_x86_backend(self):
        program = get_architecture("x86_64").parse_program(
            "LFENCE\nMOV RAX, qword ptr [R14 + 8]"
        )
        result = MinimizationResult(
            program=program,
            inputs=[],
            original_instruction_count=2,
            original_input_count=0,
        )
        assert result.leak_region() == []
