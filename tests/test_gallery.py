"""End-to-end tests of the handwritten vulnerability gallery.

Each gadget must violate its target contract on its target CPU (the
positive direction), and the corresponding patch/stronger CPU must be
clean (the negative direction) — mirroring Table 3's checkmarks and
crosses.
"""

import pytest

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import TestingPipeline
from repro.core.input_gen import InputGenerator
from repro.gallery import GALLERY, TABLE5_GADGETS, Gadget, gadget


def check(gadget_obj: Gadget, max_inputs=100, cpu_preset=None, contract=None,
          input_seed=42, confirm=True):
    """Run a gadget through the pipeline; return the input count that
    surfaced a confirmed violation, or None."""
    config = FuzzerConfig(
        arch=gadget_obj.arch,
        contract_name=contract or gadget_obj.contract,
        cpu_preset=cpu_preset or gadget_obj.cpu_preset,
        executor_mode=gadget_obj.executor_mode,
        analyzer_mode=gadget_obj.analyzer_mode,
        seed=11,
    )
    pipeline = TestingPipeline(config)
    generator = InputGenerator(
        seed=input_seed,
        entropy_bits=gadget_obj.entropy_bits,
        layout=pipeline.layout,
        registers=pipeline.arch.default_register_pool,
        flag_bits=pipeline.arch.registers.flag_bits,
    )
    program = gadget_obj.program()
    count = 4
    while count <= max_inputs:
        inputs = generator.generate(count)
        if pipeline.check_violation(program, inputs, confirm=confirm):
            return count
        count *= 2
    return None


class TestGalleryStructure:
    def test_lookup(self):
        assert gadget("spectre-v1").vulnerability == "V1"
        with pytest.raises(KeyError):
            gadget("spectre-v9")

    def test_all_programs_parse_and_validate(self):
        for entry in GALLERY.values():
            program = entry.program()
            program.validate_dag()
            assert program.num_instructions > 0

    def test_table5_set(self):
        assert len(TABLE5_GADGETS) == 7
        for name in TABLE5_GADGETS:
            assert name in GALLERY


@pytest.mark.parametrize(
    "name",
    [
        "spectre-v1",
        "spectre-v1-a64",
        "spectre-v1.1",
        "spectre-v2",
        "spectre-v4",
        "spectre-v5-ret",
        "mds-lfb",
        "mds-sb",
        "lvi-null",
        "fig6a-nonspec-data",
        "fig6b-spec-data",
        "spec-store-eviction",
    ],
)
def test_gadget_violates_its_target(name):
    assert check(GALLERY[name], max_inputs=128) is not None, name


def test_a6_bypass_variant_violates():
    """The A.6 variant is rare under random inputs (the paper's instance
    was found by accident during artifact evaluation); a known-good input
    seed surfaces it deterministically."""
    assert check(GALLERY["a6-bypass-variant"], max_inputs=64, input_seed=7) is not None


class TestNegativeDirections:
    """The crosses of Table 3: patched or permissive setups are clean."""

    def test_v4_gadget_clean_with_ssbd(self):
        assert check(gadget("spectre-v4"), cpu_preset="skylake-v4-patched",
                     max_inputs=64) is None

    def test_v4_gadget_clean_under_ct_bpas(self):
        # CT-BPAS permits the bypass leak (Table 3, Target 2)
        assert check(gadget("spectre-v4"), contract="CT-BPAS",
                     max_inputs=64) is None

    def test_v1_gadget_clean_under_ct_cond(self):
        # CT-COND permits branch-misprediction leakage (Target 5)
        assert check(gadget("spectre-v1"), contract="CT-COND",
                     max_inputs=64) is None

    def test_fig6a_clean_under_arch_seq(self):
        """§6.6: ARCH-SEQ permits leaking non-speculatively loaded data."""
        assert check(gadget("fig6a-nonspec-data"), contract="ARCH-SEQ",
                     max_inputs=64) is None

    def test_fig6b_violates_even_arch_seq(self):
        """...but not speculatively loaded data (the STT property)."""
        assert check(gadget("fig6b-spec-data"), contract="ARCH-SEQ",
                     max_inputs=64) is not None

    def test_store_eviction_clean_on_skylake(self):
        """§6.4: the STT assumption holds on Skylake..."""
        assert check(gadget("spec-store-eviction"), cpu_preset="skylake",
                     max_inputs=64) is None

    def test_store_eviction_violates_on_coffee_lake(self):
        """...but not on Coffee Lake."""
        assert check(gadget("spec-store-eviction"), max_inputs=64) is not None

    def test_mds_gadget_on_coffee_lake_still_violates_as_lvi(self):
        """Target 8: the MDS patch converts the leak into LVI-Null for
        value-combining gadgets, here exercised via the lvi-null gadget."""
        assert check(gadget("lvi-null"), max_inputs=64) is not None
