"""Unit tests for cache, predictors, line-fill buffer and configuration."""

import pytest

from repro.uarch.cache import L1DCache
from repro.uarch.config import UarchConfig, coffee_lake, preset, preset_names, skylake
from repro.uarch.lfb import LineFillBuffer
from repro.uarch.predictors import (
    BranchTargetBuffer,
    ConditionalBranchPredictor,
    MemoryDisambiguator,
    ReturnStackBuffer,
)


class TestCache:
    def test_miss_then_hit(self):
        cache = L1DCache()
        assert not cache.access(0x10000)
        assert cache.access(0x10000)
        assert cache.access(0x10004)  # same line

    def test_set_mapping(self):
        cache = L1DCache()
        assert cache.set_index(0) == 0
        assert cache.set_index(64) == 1
        assert cache.set_index(64 * 64) == 0  # wraps

    def test_lru_eviction(self):
        cache = L1DCache(num_sets=1, ways=2)
        cache.access(0)
        cache.access(64)
        cache.access(128)  # evicts 0 (LRU)
        assert not cache.contains(0)
        assert cache.contains(64) and cache.contains(128)

    def test_lru_updated_on_hit(self):
        cache = L1DCache(num_sets=1, ways=2)
        cache.access(0)
        cache.access(64)
        cache.access(0)  # refresh 0
        cache.access(128)  # evicts 64 now
        assert cache.contains(0) and not cache.contains(64)

    def test_set_never_exceeds_ways(self):
        cache = L1DCache(num_sets=2, ways=4)
        for i in range(100):
            cache.access(i * 128)  # all map to set 0
        assert all(len(lines) <= 4 for lines in cache.snapshot_tags())

    def test_flush_line(self):
        cache = L1DCache()
        cache.access(0x10040)
        cache.flush_line(0x10040)
        assert not cache.contains(0x10040)

    def test_flush_all(self):
        cache = L1DCache()
        cache.access(0x10040)
        cache.flush_all()
        assert not cache.contains(0x10040)

    def test_prime_probe_empty(self):
        cache = L1DCache()
        cache.prime()
        assert cache.probe() == set()

    def test_prime_probe_detects_access(self):
        cache = L1DCache()
        cache.prime()
        cache.access(0x10000 + 5 * 64)  # set 5
        cache.access(0x10000 + 9 * 64)  # set 9
        assert cache.probe() == {(0x10000 // 64 + 5) % 64, (0x10000 // 64 + 9) % 64}

    def test_probe_aliasing_same_set(self):
        cache = L1DCache()
        cache.prime()
        cache.access(64)
        cache.access(64 + 64 * 64)  # same set, different line
        assert cache.probe() == {1}

    def test_evict_region_and_cached_lines(self):
        cache = L1DCache()
        base = 0x10000
        cache.access(base)
        cache.access(base + 64)
        cache.evict_region(base, 4096)
        assert cache.cached_lines(base, 4096) == set()
        cache.access(base + 3 * 64)
        assert cache.cached_lines(base, 4096) == {3}


class TestConditionalPredictor:
    def test_initial_weakly_not_taken(self):
        predictor = ConditionalBranchPredictor()
        assert predictor.predict(0) is False

    def test_training(self):
        predictor = ConditionalBranchPredictor()
        predictor.update(0, True)
        assert predictor.predict(0) is True  # 1 -> 2
        predictor.update(0, False)
        assert predictor.predict(0) is False

    def test_saturation(self):
        predictor = ConditionalBranchPredictor()
        for _ in range(10):
            predictor.update(0, True)
        predictor.update(0, False)
        assert predictor.predict(0) is True  # 3 -> 2, still taken

    def test_per_pc_isolation(self):
        predictor = ConditionalBranchPredictor()
        predictor.update(0, True)
        assert predictor.predict(1) is False

    def test_history_mode_distinguishes_contexts(self):
        predictor = ConditionalBranchPredictor(history_bits=2)
        predictor.update(0, True)   # history 0 -> counter trained taken
        assert predictor.predict(0) is False  # history changed: fresh context

    def test_reset(self):
        predictor = ConditionalBranchPredictor()
        predictor.update(0, True)
        predictor.reset()
        assert predictor.predict(0) is False


class TestBTBAndRSB:
    def test_btb_last_target(self):
        btb = BranchTargetBuffer()
        assert btb.predict(5) is None
        btb.update(5, 10)
        assert btb.predict(5) == 10
        btb.update(5, 20)
        assert btb.predict(5) == 20

    def test_rsb_lifo(self):
        rsb = ReturnStackBuffer()
        rsb.push(1)
        rsb.push(2)
        assert rsb.pop() == 2
        assert rsb.pop() == 1
        assert rsb.pop() is None

    def test_rsb_bounded(self):
        rsb = ReturnStackBuffer(depth=2)
        rsb.push(1)
        rsb.push(2)
        rsb.push(3)  # drops 1
        assert rsb.pop() == 3
        assert rsb.pop() == 2
        assert rsb.pop() is None


class TestMemoryDisambiguator:
    def test_optimistic_initially(self):
        disambiguator = MemoryDisambiguator()
        assert disambiguator.predict_no_alias(0)

    def test_trained_by_squash(self):
        disambiguator = MemoryDisambiguator()
        disambiguator.predict_no_alias(0)
        disambiguator.update(0, aliased=True)
        assert not disambiguator.predict_no_alias(0)

    def test_decay_re_enables_bypass(self):
        """After a wrong bypass, the counter decays back: bypass, skip,
        bypass, skip ... — a deterministic alternation (needed for
        repeatable traces)."""
        disambiguator = MemoryDisambiguator()
        outcomes = []
        for _ in range(6):
            prediction = disambiguator.predict_no_alias(0)
            outcomes.append(prediction)
            if prediction:
                disambiguator.update(0, aliased=True)
        assert outcomes == [True, False, True, False, True, False]

    def test_global_reset_interval(self):
        disambiguator = MemoryDisambiguator(reset_interval=3)
        disambiguator.update(0, aliased=True)
        disambiguator.update(0, aliased=True)
        disambiguator.predict_no_alias(0)
        disambiguator.predict_no_alias(0)
        # third prediction triggers the periodic table reset
        assert disambiguator.predict_no_alias(0)


class TestLFB:
    def test_stale_value_is_newest(self):
        lfb = LineFillBuffer()
        assert lfb.stale_value() is None
        lfb.record(0x100, 1)
        lfb.record(0x140, 2)
        assert lfb.stale_value() == 2

    def test_bounded(self):
        lfb = LineFillBuffer(num_entries=2)
        for i in range(5):
            lfb.record(i, i)
        assert len(lfb) == 2
        assert lfb.entries() == ((3, 3), (4, 4))

    def test_reset(self):
        lfb = LineFillBuffer()
        lfb.record(0, 9)
        lfb.reset()
        assert lfb.stale_value() is None


class TestConfig:
    def test_presets(self):
        assert set(preset_names()) == {
            "skylake",
            "skylake-v4-patched",
            "coffee-lake",
        }
        for name in preset_names():
            assert isinstance(preset(name), UarchConfig)

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            preset("alderlake")

    def test_skylake_v4_patch_toggles_bypass(self):
        assert skylake(v4_patch=False).store_bypass
        assert not skylake(v4_patch=True).store_bypass

    def test_skylake_is_mds_vulnerable(self):
        assert skylake().assists_leak_stale_data
        assert not skylake().speculative_stores_update_cache

    def test_coffee_lake_is_mds_patched(self):
        config = coffee_lake()
        assert not config.assists_leak_stale_data  # LVI-Null zeros
        assert config.speculative_stores_update_cache  # §6.4

    def test_division_latency_operand_dependent(self):
        config = skylake()
        fast = config.division_latency(10, 3)
        slow = config.division_latency(1 << 50, 3)
        assert slow > fast
        assert config.division_latency(0, 0) == config.div_base_latency

    def test_with_overrides(self):
        config = skylake().with_overrides(rob_size=100)
        assert config.rob_size == 100
        assert skylake().rob_size == 250  # original untouched

    def test_disambiguation_window_exceeds_miss_latency(self):
        # dependents of a bypassed load must be able to issue before the
        # squash even when the load misses
        config = skylake()
        assert config.disambiguation_penalty > config.load_miss_latency - config.store_agu_latency
