"""Property-based tests (hypothesis) for core data structures and
cross-component invariants:

- arithmetic/flag algebra of the emulator;
- register-view write semantics;
- generated programs always validate, assemble round-trip, execute
  fault-free, and stay inside the sandbox;
- contract traces are deterministic functions of (program, input);
- the speculative CPU never changes architectural results relative to the
  functional emulator, for arbitrary generated programs and inputs;
- cache LRU invariants and trace algebra.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.isa.assembler import parse_program, render_program
from repro.isa.instruction_set import instruction_subset
from repro.emulator.machine import Emulator
from repro.emulator.semantics import execute
from repro.emulator.state import ArchState, SandboxLayout
from repro.contracts import get_contract
from repro.core.analyzer import RelationalAnalyzer
from repro.core.config import GeneratorConfig
from repro.core.generator import TestCaseGenerator
from repro.core.input_gen import InputGenerator
from repro.traces import HTrace, merge_hardware_traces
from repro.uarch.cache import L1DCache
from repro.uarch.config import skylake
from repro.uarch.cpu import SpeculativeCPU

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
U8 = st.integers(min_value=0, max_value=255)

_LAYOUT = SandboxLayout()


def _parse_line(line):
    from repro.isa.assembler import parse_instruction

    return parse_instruction(line)


# -- emulator algebra ---------------------------------------------------------


class TestArithmeticProperties:
    @given(a=U64, b=U64)
    def test_add_matches_modular_arithmetic(self, a, b):
        state = ArchState()
        state.write_register("RAX", a)
        state.write_register("RBX", b)
        execute(_parse_line("ADD RAX, RBX"), state)
        assert state.read_register("RAX") == (a + b) % (1 << 64)
        assert state.read_flag("CF") == (a + b >= 1 << 64)
        assert state.read_flag("ZF") == ((a + b) % (1 << 64) == 0)

    @given(a=U64, b=U64)
    def test_sub_borrow_is_unsigned_less_than(self, a, b):
        state = ArchState()
        state.write_register("RAX", a)
        state.write_register("RBX", b)
        execute(_parse_line("SUB RAX, RBX"), state)
        assert state.read_flag("CF") == (a < b)
        assert state.read_register("RAX") == (a - b) % (1 << 64)

    @given(a=U64, b=U64)
    def test_add_then_sub_roundtrips(self, a, b):
        state = ArchState()
        state.write_register("RAX", a)
        state.write_register("RBX", b)
        execute(_parse_line("ADD RAX, RBX"), state)
        execute(_parse_line("SUB RAX, RBX"), state)
        assert state.read_register("RAX") == a

    @given(a=U64)
    def test_neg_is_involution(self, a):
        state = ArchState()
        state.write_register("RAX", a)
        execute(_parse_line("NEG RAX"), state)
        execute(_parse_line("NEG RAX"), state)
        assert state.read_register("RAX") == a

    @given(a=U64)
    def test_not_is_involution(self, a):
        state = ArchState()
        state.write_register("RAX", a)
        execute(_parse_line("NOT RAX"), state)
        execute(_parse_line("NOT RAX"), state)
        assert state.read_register("RAX") == a

    @given(a=U64, b=U64)
    def test_xor_self_inverse(self, a, b):
        state = ArchState()
        state.write_register("RAX", a)
        state.write_register("RBX", b)
        execute(_parse_line("XOR RAX, RBX"), state)
        execute(_parse_line("XOR RAX, RBX"), state)
        assert state.read_register("RAX") == a

    @given(a=U64, b=U64)
    def test_cmp_equals_sub_flags_without_write(self, a, b):
        state_cmp = ArchState()
        state_sub = ArchState()
        for state in (state_cmp, state_sub):
            state.write_register("RAX", a)
            state.write_register("RBX", b)
        execute(_parse_line("CMP RAX, RBX"), state_cmp)
        execute(_parse_line("SUB RAX, RBX"), state_sub)
        assert state_cmp.flags == state_sub.flags
        assert state_cmp.read_register("RAX") == a

    @given(dividend=U64, divisor=st.integers(min_value=1, max_value=(1 << 64) - 1))
    def test_div_quotient_remainder_identity(self, dividend, divisor):
        state = ArchState()
        state.write_register("RAX", dividend)
        state.write_register("RDX", 0)
        state.write_register("RBX", divisor)
        execute(_parse_line("DIV RBX"), state)
        quotient = state.read_register("RAX")
        remainder = state.read_register("RDX")
        assert quotient * divisor + remainder == dividend
        assert remainder < divisor


class TestRegisterViewProperties:
    @given(value=U64, low=st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_32bit_write_zero_extends(self, value, low):
        state = ArchState()
        state.write_register("RAX", value)
        state.write_register("EAX", low)
        assert state.read_register("RAX") == low

    @given(value=U64, low=U8)
    def test_8bit_write_merges(self, value, low):
        state = ArchState()
        state.write_register("RAX", value)
        state.write_register("AL", low)
        assert state.read_register("RAX") == (value & ~0xFF) | low

    @given(value=U64)
    def test_views_are_projections(self, value):
        state = ArchState()
        state.write_register("RAX", value)
        assert state.read_register("EAX") == value & 0xFFFFFFFF
        assert state.read_register("AX") == value & 0xFFFF
        assert state.read_register("AL") == value & 0xFF


# -- generator / assembler / emulator integration ------------------------------

_SUBSET = instruction_subset(["AR", "MEM", "VAR", "CB"])


@st.composite
def generated_programs(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    instructions = draw(st.integers(min_value=2, max_value=16))
    blocks = draw(st.integers(min_value=1, max_value=4))
    memory = draw(st.integers(min_value=0, max_value=4))
    generator = TestCaseGenerator(
        _SUBSET,
        GeneratorConfig(
            instructions_per_test=instructions,
            basic_blocks=blocks,
            memory_accesses=memory,
        ),
        _LAYOUT,
        seed=seed,
    )
    return generator.generate()


@st.composite
def random_inputs(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    entropy = draw(st.sampled_from([1, 2, 4, 8]))
    return InputGenerator(
        seed=seed, entropy_bits=entropy, layout=_LAYOUT
    ).generate_one()


class TestGeneratedProgramProperties:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(program=generated_programs())
    def test_programs_validate_and_roundtrip(self, program):
        program.validate_dag()
        text = render_program(program)
        reparsed = parse_program(text)
        assert render_program(reparsed) == text

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(program=generated_programs(), input_data=random_inputs())
    def test_execution_never_faults_and_stays_sandboxed(
        self, program, input_data
    ):
        emulator = Emulator(program, _LAYOUT)
        for result in emulator.run(input_data):
            for access in result.mem_accesses:
                assert _LAYOUT.contains(access.address, access.size)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(program=generated_programs(), input_data=random_inputs())
    def test_contract_traces_deterministic(self, program, input_data):
        contract = get_contract("CT-COND-BPAS")
        first = contract.collect_trace(program, input_data, _LAYOUT)
        second = contract.collect_trace(program, input_data, _LAYOUT)
        assert first == second

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(program=generated_programs(), input_data=random_inputs())
    def test_speculation_preserves_architectural_state(
        self, program, input_data
    ):
        """The central soundness invariant of the CPU model: all
        speculation rolls back; final state equals the emulator's."""
        emulator = Emulator(program, _LAYOUT)
        emulator.run(input_data)
        cpu = SpeculativeCPU(skylake(), _LAYOUT)
        cpu.run(program.linearize(), input_data)
        assert cpu.state.registers == emulator.state.registers
        assert cpu.state.flags == emulator.state.flags
        assert bytes(cpu.state.memory) == bytes(emulator.state.memory)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(program=generated_programs(), input_data=random_inputs())
    def test_seq_trace_matches_architectural_execution(
        self, program, input_data
    ):
        """A CT-SEQ contract trace is exactly the architectural pc +
        address stream."""
        contract = get_contract("CT-SEQ")
        trace = contract.collect_trace(program, input_data, _LAYOUT)
        emulator = Emulator(program, _LAYOUT)
        observations = []
        for result in emulator.run(input_data):
            observations.append(("pc", result.pc))
            for access in result.mem_accesses:
                tag = "st" if access.is_write else "ld"
                observations.append((tag, access.address))
        assert trace.observations == tuple(observations)


# -- cache and trace algebra ----------------------------------------------------


class TestCacheProperties:
    @given(addresses=st.lists(U64, min_size=1, max_size=200))
    def test_most_recent_access_always_cached(self, addresses):
        cache = L1DCache()
        for address in addresses:
            cache.access(address)
            assert cache.contains(address)

    @given(addresses=st.lists(U64, max_size=200))
    def test_ways_never_exceeded(self, addresses):
        cache = L1DCache(num_sets=4, ways=3)
        for address in addresses:
            cache.access(address)
        assert all(len(lines) <= 3 for lines in cache.snapshot_tags())

    @given(addresses=st.lists(st.integers(min_value=0, max_value=8191),
                              max_size=64))
    def test_probe_is_exactly_touched_sets(self, addresses):
        cache = L1DCache()
        cache.prime()
        for address in addresses:
            cache.access(0x10000 + address)
        expected = {cache.set_index(0x10000 + a) for a in addresses}
        assert cache.probe() == expected


class TestTraceAlgebra:
    @given(a=st.frozensets(st.integers(0, 63)), b=st.frozensets(st.integers(0, 63)))
    def test_union_commutative_and_monotone(self, a, b):
        ta, tb = HTrace(a), HTrace(b)
        assert ta.union(tb).signals == tb.union(ta).signals
        assert ta.issubset(ta.union(tb))

    @given(sets=st.lists(st.frozensets(st.integers(0, 63)), min_size=1, max_size=5))
    def test_merge_is_total_union(self, sets):
        merged = merge_hardware_traces([HTrace(s) for s in sets])
        assert merged.signals == frozenset().union(*sets)

    @given(a=st.frozensets(st.integers(0, 63)), b=st.frozensets(st.integers(0, 63)))
    def test_subset_equivalence_symmetric(self, a, b):
        analyzer = RelationalAnalyzer("subset")
        assert analyzer.equivalent(HTrace(a), HTrace(b)) == analyzer.equivalent(
            HTrace(b), HTrace(a)
        )

    @given(a=st.frozensets(st.integers(0, 63)))
    def test_equivalence_reflexive(self, a):
        for mode in ("subset", "strict"):
            analyzer = RelationalAnalyzer(mode)
            assert analyzer.equivalent(HTrace(a), HTrace(a))

    @given(signals=st.frozensets(st.integers(0, 63)))
    def test_bitmap_roundtrip(self, signals):
        trace = HTrace(signals)
        bitmap = trace.bitmap()
        assert len(bitmap) == 64
        assert {i for i, bit in enumerate(bitmap) if bit == "1"} == set(signals)


class TestInputGeneratorProperties:
    @given(seed=st.integers(0, 100_000), entropy=st.integers(1, 20))
    def test_values_respect_entropy_mask(self, seed, entropy):
        generator = InputGenerator(seed=seed, entropy_bits=entropy, layout=_LAYOUT)
        input_data = generator.generate_one()
        bound = 1 << (entropy + 6)
        for value in input_data.registers.values():
            assert value % 64 == 0 and value < bound

    @given(seed=st.integers(0, 100_000))
    def test_same_seed_same_inputs(self, seed):
        a = InputGenerator(seed=seed, layout=_LAYOUT).generate(3)
        b = InputGenerator(seed=seed, layout=_LAYOUT).generate(3)
        assert [x.fingerprint() for x in a] == [x.fingerprint() for x in b]
