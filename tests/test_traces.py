"""Unit tests for the shared trace types."""

import pytest

from repro.traces import (
    CTrace,
    ExecutionLog,
    ExecutionLogEntry,
    HTrace,
    merge_hardware_traces,
)


class TestCTrace:
    def test_hashable_and_equal(self):
        a = CTrace((("ld", 0x110), ("st", 0x220)))
        b = CTrace((("ld", 0x110), ("st", 0x220)))
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_order_matters(self):
        a = CTrace((("ld", 1), ("ld", 2)))
        b = CTrace((("ld", 2), ("ld", 1)))
        assert a != b

    def test_addresses_filter(self):
        trace = CTrace((("pc", 0), ("ld", 0x110), ("st", 0x220), ("ld", 0x330)))
        assert trace.addresses("ld") == (0x110, 0x330)
        assert trace.addresses("st") == (0x220,)
        assert trace.addresses("val") == ()

    def test_str_rendering(self):
        trace = CTrace((("ld", 0x110),))
        assert str(trace) == "[ld:0x110]"

    def test_iteration_and_len(self):
        trace = CTrace((("pc", 0), ("pc", 1)))
        assert len(trace) == 2
        assert list(trace) == [("pc", 0), ("pc", 1)]


class TestHTrace:
    def test_empty(self):
        trace = HTrace.empty()
        assert len(trace) == 0
        assert trace.bitmap() == "0" * 64

    def test_merge_requires_traces(self):
        with pytest.raises(ValueError):
            merge_hardware_traces([])

    def test_merge_many(self):
        merged = merge_hardware_traces(
            [HTrace.from_signals({1}), HTrace.from_signals({2}),
             HTrace.from_signals({1, 3})]
        )
        assert merged.signals == {1, 2, 3}

    def test_paper_bitmap_example(self):
        """§5.3: 'accesses to sets 0, 4, 5' renders 10001100...'"""
        trace = HTrace.from_signals({0, 4, 5}, num_slots=32)
        assert trace.bitmap() == "10001100" + "0" * 24

    def test_union_is_the_merged_variant_semantics(self):
        """§5.3: the merged trace of a sometimes-speculating input is the
        union of the observed variants."""
        with_misprediction = HTrace.from_signals({4, 6, 13, 31})
        without = HTrace.from_signals({4, 13, 31})
        assert with_misprediction.union(without) == with_misprediction


class TestExecutionLog:
    def _entry(self, speculative):
        return ExecutionLogEntry(
            pc=0, mnemonic="NOP", registers_read=(), registers_written=(),
            flags_read=(), flags_written=(), is_load=False, is_store=False,
            is_cond_branch=False, is_uncond_branch=False, addresses=(),
            speculative=speculative,
        )

    def test_architectural_filter(self):
        log = ExecutionLog([self._entry(False), self._entry(True), self._entry(False)])
        assert len(log) == 3
        assert len(log.architectural()) == 2
