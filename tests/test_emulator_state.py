"""Unit tests for architectural state and the sandbox."""

import pytest

from repro.emulator.errors import SandboxViolation
from repro.emulator.state import ArchState, InputData, SandboxLayout, PAGE_SIZE


class TestSandboxLayout:
    def test_default_geometry(self):
        layout = SandboxLayout()
        assert layout.num_pages == 2
        assert layout.size == 2 * PAGE_SIZE
        assert layout.end == layout.base + 8192

    def test_contains(self):
        layout = SandboxLayout()
        assert layout.contains(layout.base)
        assert layout.contains(layout.end - 8, 8)
        assert not layout.contains(layout.end - 4, 8)
        assert not layout.contains(layout.base - 1)

    def test_page_of(self):
        layout = SandboxLayout()
        assert layout.page_of(layout.base) == 0
        assert layout.page_of(layout.base + PAGE_SIZE) == 1

    def test_assist_page_is_last(self):
        assert SandboxLayout().assist_page_index == 1
        assert SandboxLayout(num_pages=1).assist_page_index == 0

    def test_stack_top_inside_sandbox(self):
        layout = SandboxLayout()
        assert layout.contains(layout.stack_top, 8)


class TestRegisters:
    def test_64bit_write_read(self):
        state = ArchState()
        state.write_register("RAX", 0x123456789ABCDEF0)
        assert state.read_register("RAX") == 0x123456789ABCDEF0

    def test_32bit_write_zero_extends(self):
        state = ArchState()
        state.write_register("RAX", 0xFFFFFFFFFFFFFFFF)
        state.write_register("EAX", 0x12345678)
        assert state.read_register("RAX") == 0x12345678

    def test_16bit_write_merges(self):
        state = ArchState()
        state.write_register("RAX", 0x1111111111111111)
        state.write_register("AX", 0xFFFF)
        assert state.read_register("RAX") == 0x111111111111FFFF

    def test_8bit_write_merges(self):
        state = ArchState()
        state.write_register("RBX", 0x2222222222222222)
        state.write_register("BL", 0xAB)
        assert state.read_register("RBX") == 0x22222222222222AB

    def test_narrow_reads_masked(self):
        state = ArchState()
        state.write_register("RCX", 0xDEADBEEFCAFEBABE)
        assert state.read_register("ECX") == 0xCAFEBABE
        assert state.read_register("CX") == 0xBABE
        assert state.read_register("CL") == 0xBE

    def test_values_wrap_to_64_bits(self):
        state = ArchState()
        state.write_register("RAX", 1 << 70)
        assert state.read_register("RAX") == 0

    def test_r14_holds_sandbox_base(self):
        state = ArchState()
        assert state.read_register("R14") == state.layout.base

    def test_rsp_holds_stack_top(self):
        state = ArchState()
        assert state.read_register("RSP") == state.layout.stack_top


class TestMemory:
    def test_little_endian_roundtrip(self):
        state = ArchState()
        state.write_memory(state.layout.base, 8, 0x0102030405060708)
        assert state.read_memory(state.layout.base, 8) == 0x0102030405060708
        assert state.read_memory(state.layout.base, 1) == 0x08

    def test_write_masks_to_size(self):
        state = ArchState()
        state.write_memory(state.layout.base, 1, 0x1FF)
        assert state.read_memory(state.layout.base, 1) == 0xFF

    def test_out_of_sandbox_read_raises(self):
        state = ArchState()
        with pytest.raises(SandboxViolation):
            state.read_memory(state.layout.end, 1)

    def test_out_of_sandbox_write_raises(self):
        state = ArchState()
        with pytest.raises(SandboxViolation):
            state.write_memory(state.layout.base - 8, 8, 0)

    def test_straddling_end_raises(self):
        state = ArchState()
        with pytest.raises(SandboxViolation):
            state.read_memory(state.layout.end - 4, 8)


class TestInputLoading:
    def test_load_input_sets_everything(self):
        state = ArchState()
        state.write_register("RAX", 999)
        input_data = InputData(
            registers={"RAX": 0x40, "RBX": 0x80},
            flags={"ZF": True},
            memory=b"\xAA" * 16,
        )
        state.load_input(input_data)
        assert state.read_register("RAX") == 0x40
        assert state.read_register("RBX") == 0x80
        assert state.read_register("RCX") == 0  # reset
        assert state.read_flag("ZF") and not state.read_flag("CF")
        assert state.read_memory(state.layout.base, 1) == 0xAA
        assert state.read_memory(state.layout.base + 16, 1) == 0  # zero-filled

    def test_load_input_resets_previous_memory(self):
        state = ArchState()
        state.write_memory(state.layout.base + 100, 1, 0xFF)
        state.load_input(InputData())
        assert state.read_memory(state.layout.base + 100, 1) == 0

    def test_load_input_preserves_fixed_registers(self):
        state = ArchState()
        state.load_input(InputData(registers={"R14": 0, "RSP": 0}))
        # R14/RSP are reset to their sandbox roles after input load
        assert state.read_register("R14") == state.layout.base
        assert state.read_register("RSP") == state.layout.stack_top

    def test_unknown_flag_rejected(self):
        state = ArchState()
        with pytest.raises(KeyError):
            state.load_input(InputData(flags={"XX": True}))


class TestSnapshots:
    def test_snapshot_restore(self):
        state = ArchState()
        state.write_register("RAX", 1)
        state.write_flag("CF", True)
        state.write_memory(state.layout.base, 8, 42)
        snapshot = state.snapshot()
        state.write_register("RAX", 2)
        state.write_flag("CF", False)
        state.write_memory(state.layout.base, 8, 43)
        state.restore(snapshot)
        assert state.read_register("RAX") == 1
        assert state.read_flag("CF")
        assert state.read_memory(state.layout.base, 8) == 42

    def test_snapshot_is_immutable_copy(self):
        state = ArchState()
        snapshot = state.snapshot()
        state.write_register("RAX", 7)
        state.restore(snapshot)
        assert state.read_register("RAX") == 0


class TestInputData:
    def test_fingerprint_stable(self):
        a = InputData(registers={"RAX": 1}, memory=b"ab")
        b = InputData(registers={"RAX": 1}, memory=b"ab")
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_differs(self):
        a = InputData(registers={"RAX": 1})
        b = InputData(registers={"RAX": 2})
        assert a.fingerprint() != b.fingerprint()

    def test_repr_mentions_seed(self):
        assert "seed=5" in repr(InputData(seed=5))
