"""Tests for violation reports and classification."""

import pytest

from repro.isa.assembler import parse_program
from repro.core.violation import Violation, classify_speculation_kinds
from repro.emulator.state import InputData
from repro.traces import CTrace, HTrace
from repro.uarch.config import coffee_lake, skylake


class TestClassification:
    @pytest.mark.parametrize(
        "kinds,expected",
        [
            ({"cond"}, "V1"),
            ({"bypass"}, "V4"),
            ({"indirect"}, "V2"),
            ({"ret"}, "V5-ret"),
            ({"cond", "bypass"}, "V1+V4"),
        ],
    )
    def test_basic_families(self, kinds, expected):
        assert classify_speculation_kinds(kinds, skylake()) == expected

    def test_assist_depends_on_patch(self):
        assert classify_speculation_kinds({"assist"}, skylake()) == "MDS"
        assert (
            classify_speculation_kinds({"assist"}, coffee_lake()) == "LVI-Null"
        )

    def test_division_marks_variants(self):
        assert (
            classify_speculation_kinds({"cond"}, skylake(), True) == "V1-var"
        )
        assert (
            classify_speculation_kinds({"bypass"}, skylake(), True) == "V4-var"
        )

    def test_empty_kinds(self):
        assert "unknown" in classify_speculation_kinds(set(), skylake())


class TestViolationReport:
    def _violation(self):
        program = parse_program("NOP")
        return Violation(
            program=program,
            contract_name="CT-SEQ",
            cpu_name="skylake",
            ctrace=CTrace((("pc", 0),)),
            input_sequence=[InputData(seed=1), InputData(seed=2)],
            position_a=0,
            position_b=1,
            htrace_a=HTrace.from_signals({1, 2}),
            htrace_b=HTrace.from_signals({1, 5}),
            classification="V1",
        )

    def test_describe_contains_essentials(self):
        text = self._violation().describe()
        assert "CT-SEQ" in text and "skylake" in text and "V1" in text
        assert "seed=1" in text and "seed=2" in text

    def test_differing_signals(self):
        only_a, only_b = self._violation().differing_signals()
        assert only_a == {2} and only_b == {5}

    def test_input_accessors(self):
        violation = self._violation()
        assert violation.input_a.seed == 1
        assert violation.input_b.seed == 2
