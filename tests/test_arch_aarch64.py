"""Tests for the AArch64 backend: semantics, assembler, and the full
MRT pipeline (generate -> contract trace -> uarch trace -> analyze ->
minimize) running end to end on a second architecture."""

import pytest

from repro.arch import get_architecture
from repro.contracts.contract import get_contract
from repro.core.config import FuzzerConfig
from repro.core.fuzzer import Fuzzer, TestingPipeline
from repro.core.input_gen import InputGenerator
from repro.core.postprocessor import Postprocessor
from repro.emulator.machine import Emulator
from repro.emulator.state import ArchState, InputData, SandboxLayout

ARCH = get_architecture("aarch64")


def run_snippet(asm, registers=None, flags=None, memory=b""):
    """Execute an AArch64 snippet; return the final state."""
    program = ARCH.parse_program(asm)
    emulator = Emulator(program, SandboxLayout(), ARCH)
    emulator.run(
        InputData(registers=registers or {}, flags=flags or {}, memory=memory)
    )
    return emulator.state


class TestSemantics:
    def test_three_operand_add(self):
        state = run_snippet("ADD X0, X1, X2", {"X1": 40, "X2": 2})
        assert state.read_register("X0") == 42
        # plain ADD leaves NZCV untouched
        assert not any(state.flags.values())

    def test_subs_carry_is_inverted_borrow(self):
        # AArch64: C set when NO borrow occurred (opposite of x86 CF)
        state = run_snippet("SUBS X0, X1, X2", {"X1": 5, "X2": 3})
        assert state.read_register("X0") == 2
        assert state.read_flag("C") and not state.read_flag("N")
        state = run_snippet("SUBS X0, X1, X2", {"X1": 3, "X2": 5})
        assert not state.read_flag("C") and state.read_flag("N")

    def test_adds_signed_overflow(self):
        state = run_snippet(
            "ADDS X0, X1, X2", {"X1": (1 << 63) - 1, "X2": 1}
        )
        assert state.read_flag("V") and state.read_flag("N")

    def test_cmp_sets_zero_flag(self):
        state = run_snippet("CMP X1, X2", {"X1": 7, "X2": 7})
        assert state.read_flag("Z") and state.read_flag("C")

    def test_udiv_by_zero_yields_zero(self):
        state = run_snippet("UDIV X0, X1, X2", {"X1": 100, "X2": 0})
        assert state.read_register("X0") == 0

    def test_udiv_quotient(self):
        state = run_snippet("UDIV X0, X1, X2", {"X1": 100, "X2": 7})
        assert state.read_register("X0") == 14

    def test_w_register_writes_zero_extend(self):
        state = run_snippet(
            "MOV W0, W1", {"X0": 0xDEADBEEF_00000000, "X1": 0x1_2345}
        )
        assert state.read_register("X0") == 0x1_2345

    def test_ldr_str_round_trip(self):
        state = run_snippet(
            "STR X1, [X27, #64]\nLDR X2, [X27, #64]", {"X1": 0xABCD}
        )
        assert state.read_register("X2") == 0xABCD

    def test_str_w_is_32_bit(self):
        state = run_snippet(
            "STR W1, [X27, #8]\nLDR X2, [X27, #8]",
            {"X1": 0xFFFF_FFFF_FFFF_FFFF},
        )
        assert state.read_register("X2") == 0xFFFF_FFFF

    def test_register_offset_addressing(self):
        state = run_snippet(
            "STR X1, [X27, X2]\nLDR X3, [X27, X2]", {"X1": 99, "X2": 128}
        )
        assert state.read_register("X3") == 99

    def test_conditional_branch_on_nzcv(self):
        # Z set -> B.EQ taken -> the MOV is skipped
        state = run_snippet(
            "B.EQ .end\nMOV X0, #1\n.end: NOP", flags={"Z": True}
        )
        assert state.read_register("X0") == 0
        state = run_snippet(
            "B.EQ .end\nMOV X0, #1\n.end: NOP", flags={"Z": False}
        )
        assert state.read_register("X0") == 1

    def test_indirect_branch(self):
        state = run_snippet(
            "ADR X0, .skip\nBR X0\n.mid: MOV X1, #1\n.skip: NOP"
        )
        assert state.read_register("X1") == 0

    def test_sandbox_base_is_fixed(self):
        state = ArchState(SandboxLayout(), ARCH)
        assert state.read_register("X27") == state.layout.base
        state.load_input(InputData(registers={"X27": 5}))
        # inputs cannot move the sandbox base
        assert state.read_register("X27") == state.layout.base


class TestAssembler:
    def test_program_round_trip(self):
        source = "\n".join(
            [
                "CMP X1, #0",
                "B.NE .skip",
                "AND X2, X2, #4032",
                "LDR X3, [X27, X2]",
                "STR W1, [X27, #16]",
                ".skip: DSB",
            ]
        )
        program = ARCH.parse_program(source)
        rendered = ARCH.render_program(program)
        again = ARCH.parse_program(rendered)
        assert ARCH.render_program(again) == rendered

    def test_condition_alias(self):
        program = ARCH.parse_program("B.HS .end\n.end: NOP")
        assert next(program.all_instructions()).mnemonic == "B.CS"

    def test_comments(self):
        program = ARCH.parse_program(
            "MOV X0, #1 // move\nNOP ; trailing\n// full line\nNOP"
        )
        assert [i.mnemonic for i in program.all_instructions()] == [
            "MOV",
            "NOP",
            "NOP",
        ]

    def test_x86_register_rejected(self):
        with pytest.raises((ValueError, KeyError)):
            ARCH.parse_program("MOV RAX, #1")


SPECTRE_V1_A64 = """
    B.PL .end
    AND X1, X1, #0b111111000000
    LDR X2, [X27, X1]
.end: NOP
"""


class TestContractTraces:
    def test_dsb_closes_speculation_window(self):
        """The wrong-path load behind a DSB is never observed: the
        architecture's serializing set closes the window."""
        contract = get_contract("CT-COND")
        layout = SandboxLayout()
        naked = ARCH.parse_program(SPECTRE_V1_A64)
        fenced = ARCH.parse_program(
            """
            B.PL .end
            DSB
            AND X1, X1, #0b111111000000
            LDR X2, [X27, X1]
        .end: NOP
        """
        )
        input_data = InputData(registers={"X1": 0x180}, flags={"N": False})
        naked_trace = contract.collect_trace(naked, input_data, layout, ARCH)
        fenced_trace = contract.collect_trace(fenced, input_data, layout, ARCH)
        assert layout.base + 0x180 in naked_trace.addresses("ld")
        assert layout.base + 0x180 not in fenced_trace.addresses("ld")


def aarch64_config(**overrides):
    defaults = dict(
        arch="aarch64",
        instruction_subsets=("AR", "MEM", "CB"),
        contract_name="CT-SEQ",
        cpu_preset="skylake",
        num_test_cases=120,
        inputs_per_test_case=50,
        seed=3,
    )
    defaults.update(overrides)
    return FuzzerConfig(**defaults)


class TestPipeline:
    def test_handwritten_v1_gadget_detected(self):
        """The AArch64 Spectre-V1 analogue violates CT-SEQ on the
        simulated CPU, exactly like the x86 gallery gadget."""
        pipeline = TestingPipeline(aarch64_config())
        program = ARCH.parse_program(SPECTRE_V1_A64, name="spectre-v1-a64")
        generator = InputGenerator(
            seed=42,
            layout=pipeline.layout,
            registers=ARCH.default_register_pool,
            flag_bits=ARCH.registers.flag_bits,
        )
        found = None
        count = 4
        while count <= 128 and found is None:
            found = pipeline.check_violation(
                program, generator.generate(count), confirm=True
            )
            count *= 2
        assert found is not None

    def test_fuzz_finds_seeded_violation_end_to_end(self):
        """Full pipeline on aarch64: generate -> contract trace ->
        uarch trace -> analyze -> confirm."""
        report = Fuzzer(aarch64_config()).run()
        assert report.found
        violation = report.violation
        assert violation.arch_name == "aarch64"
        assert violation.classification.startswith("V1")
        # the report renders in AArch64 syntax
        assert "X27" in violation.describe()
        assert "R14" not in violation.describe()

    def test_minimization_inserts_dsb_fences(self):
        """Stage-3 postprocessing on aarch64 uses the architecture's
        fence, and the leak region honours DSB/ISB."""
        fuzzer = Fuzzer(aarch64_config())
        report = fuzzer.run()
        assert report.found
        result = Postprocessor(fuzzer.pipeline).minimize(
            report.violation.program, list(report.violation.input_sequence)
        )
        assert result.instruction_count <= report.violation.program.num_instructions
        assert result.serializing == frozenset({"DSB", "ISB"})
        mnemonics = {
            instruction.mnemonic
            for instruction in result.program.all_instructions()
        }
        if result.fences_inserted:
            assert "DSB" in mnemonics
            assert "LFENCE" not in mnemonics
        assert result.leak_region()  # something is left leaking
