"""Tests for the ``repro.api`` facade: the options bag's config
mapping, JSON round-trips, validation, and the per-subcommand entry
points the CLI and the campaign service route through."""

import json

import pytest

from repro import api


def quick_options(**overrides):
    values = dict(
        subsets="AR",
        contract="CT-SEQ",
        cpu="skylake-v4-patched",
        num_test_cases=6,
        inputs_per_test_case=8,
        seed=3,
    )
    values.update(overrides)
    return api.EngineOptions(**values)


class TestEngineOptions:
    def test_defaults_match_the_cli(self):
        options = api.EngineOptions()
        assert options.arch == "x86_64"
        assert options.contract == "CT-SEQ"
        assert options.cpu == "skylake"
        assert options.num_test_cases == 200
        assert options.inputs_per_test_case == 50
        assert options.battery_eval is True
        assert options.cache is False

    def test_to_fuzzer_config_maps_every_knob(self):
        options = quick_options(
            arch="aarch64",
            subsets="AR+MEM",
            executor_mode="F+R",
            entropy_bits=3,
            battery_eval=False,
            masked_fusion=False,
            dead_flags=False,
            compile_programs=False,
            cache=True,
            cache_entries=128,
        )
        config = options.to_fuzzer_config()
        assert config.arch == "aarch64"
        assert config.instruction_subsets == ("AR", "MEM")
        assert config.contract_name == "CT-SEQ"
        assert config.cpu_preset == "skylake-v4-patched"
        assert config.executor_mode == "F+R"
        assert config.entropy_bits == 3
        assert config.battery_eval is False
        assert config.optimize_masked_access is False
        assert config.optimize_dead_flags is False
        assert config.compile_programs is False
        assert config.contract_trace_cache is True
        assert config.trace_cache_entries == 128

    def test_cache_max_bytes_requires_cache_dir(self):
        with pytest.raises(ValueError, match="requires --cache-dir"):
            quick_options(cache_max_bytes=4096).to_fuzzer_config()

    def test_cache_compress_requires_cache_dir(self):
        with pytest.raises(ValueError, match="requires --cache-dir"):
            quick_options(cache_compress=True).to_fuzzer_config()

    def test_dict_round_trip_is_json_stable(self):
        options = quick_options(cache=True, corpus_dir="corpus/x")
        data = json.loads(json.dumps(options.to_dict()))
        assert api.EngineOptions.from_dict(data) == options

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown EngineOptions"):
            api.EngineOptions.from_dict({"contract": "CT-SEQ", "nope": 1})


class TestRunners:
    def test_run_fuzz_returns_a_fuzzing_report(self):
        report = api.run_fuzz(quick_options())
        assert report.test_cases == 6

    def test_run_campaign_matches_inline_fuzzing_partition(self):
        # workers=1, shards=1 degenerates to one fuzzing run
        campaign = api.run_campaign(quick_options(), workers=1)
        assert campaign.merged.test_cases == 6
        assert campaign.shards == 1

    def test_run_campaign_journal_round_trip(self, tmp_path):
        journal_dir = str(tmp_path / "ckpt")
        first = api.run_campaign(
            quick_options(), workers=1, shards=2, journal_dir=journal_dir
        )
        resumed = api.run_campaign(
            quick_options(), workers=1, shards=2,
            journal_dir=journal_dir, resume=True,
        )
        assert resumed.report_digest() == first.report_digest()

    def test_run_campaign_resume_spec_conflict_raises(self, tmp_path):
        journal_dir = str(tmp_path / "ckpt")
        api.run_campaign(
            quick_options(), workers=1, shards=2, journal_dir=journal_dir
        )
        with pytest.raises(api.JournalMismatch):
            api.run_campaign(
                quick_options(num_test_cases=9), workers=1, shards=2,
                journal_dir=journal_dir, resume=True,
            )

    def test_journal_mismatch_is_a_value_error(self):
        # the CLI's except ValueError path must catch it
        assert issubclass(api.JournalMismatch, ValueError)

    def test_run_sweep_defaults_axes_to_the_options_scalars(self):
        report = api.run_sweep(quick_options())
        assert len(report.results) == 1
        cell = report.results[0].cell
        assert (cell.arch, cell.contract, cell.cpu) == (
            "x86_64", "CT-SEQ", "skylake-v4-patched"
        )

    def test_run_sweep_axes_and_schedule_pass_through(self):
        static = api.run_sweep(
            quick_options(), contracts=("CT-SEQ", "CT-COND"), shards=2
        )
        stealing = api.run_sweep(
            quick_options(), contracts=("CT-SEQ", "CT-COND"), shards=2,
            schedule="work-stealing", parallel_cells=2,
        )
        assert (
            stealing.cell_reports_json() == static.cell_reports_json()
        )
        assert stealing.schedule == "work-stealing"

    def test_run_minimize_returns_none_without_violation(self):
        report, result = api.run_minimize(
            quick_options(contract="CT-COND")
        )
        assert not report.found
        assert result is None
