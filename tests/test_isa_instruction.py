"""Unit tests for instructions, basic blocks and programs."""

import pytest

from repro.isa.instruction import (
    BasicBlock,
    Instruction,
    TestCaseProgram,
)
from repro.isa.instruction_set import FULL_INSTRUCTION_SET
from repro.isa.operands import (
    ImmediateOperand,
    LabelOperand,
    MemoryOperand,
    RegisterOperand,
)


def make(mnemonic, kinds, operands, width=None, lock=False):
    spec = FULL_INSTRUCTION_SET.find(mnemonic, kinds, width)
    return Instruction(spec, tuple(operands), lock=lock)


class TestInstructionProperties:
    def test_add_reg_reg(self):
        instr = make("ADD", ("REG", "REG"), [RegisterOperand("RAX"), RegisterOperand("RBX")], 64)
        assert instr.registers_read() == ("RAX", "RBX")
        assert instr.registers_written() == ("RAX",)
        assert not instr.is_load and not instr.is_store
        assert "ZF" in instr.flags_written

    def test_store_instruction(self):
        instr = make(
            "MOV",
            ("MEM", "REG"),
            [MemoryOperand("R14", "RAX", width=64), RegisterOperand("RBX")],
            64,
        )
        assert instr.is_store and not instr.is_load
        # address registers are reads
        assert set(instr.registers_read()) == {"R14", "RAX", "RBX"}
        assert instr.registers_written() == ()

    def test_rmw_instruction_is_load_and_store(self):
        instr = make(
            "ADD",
            ("MEM", "IMM"),
            [MemoryOperand("R14", "RAX", width=8), ImmediateOperand(1)],
            8,
        )
        assert instr.is_load and instr.is_store

    def test_cmp_mem_does_not_store(self):
        instr = make(
            "CMP",
            ("MEM", "IMM"),
            [MemoryOperand("R14", width=16), ImmediateOperand(1)],
            16,
        )
        assert instr.is_load and not instr.is_store

    def test_lock_prefix_on_lockable(self):
        instr = make(
            "SUB",
            ("MEM", "IMM"),
            [MemoryOperand("R14", "RAX", width=8), ImmediateOperand(35)],
            8,
            lock=True,
        )
        assert str(instr).startswith("LOCK SUB")

    def test_lock_rejected_on_non_lockable(self):
        spec = FULL_INSTRUCTION_SET.find("MOV", ("REG", "REG"), 64)
        with pytest.raises(ValueError):
            Instruction(
                spec, (RegisterOperand("RAX"), RegisterOperand("RBX")), lock=True
            )

    def test_operand_count_validated(self):
        spec = FULL_INSTRUCTION_SET.find("MOV", ("REG", "REG"), 64)
        with pytest.raises(ValueError):
            Instruction(spec, (RegisterOperand("RAX"),))

    def test_branch_properties(self):
        jns = make("JNS", ("LABEL",), [LabelOperand("bb1")])
        assert jns.is_cond_branch and jns.is_control_flow
        assert jns.label_target() == "bb1"
        assert jns.flags_read == ("SF",)

        jmp = make("JMP", ("LABEL",), [LabelOperand("end")])
        assert jmp.is_uncond_branch and not jmp.is_cond_branch

        ind = make("JMP", ("REG",), [RegisterOperand("RAX")])
        assert ind.is_indirect_branch

    def test_fence(self):
        lfence = make("LFENCE", (), [])
        assert lfence.is_fence and not lfence.is_control_flow

    def test_div_implicit_operands(self):
        div = make("DIV", ("REG",), [RegisterOperand("RBX")], 64)
        assert set(div.registers_read()) == {"RAX", "RDX", "RBX"}
        assert set(div.registers_written()) == {"RAX", "RDX"}

    def test_cmov_reads_flags(self):
        cmov = make(
            "CMOVBE", ("REG", "REG"), [RegisterOperand("RAX"), RegisterOperand("RBX")], 64
        )
        assert set(cmov.flags_read) == {"CF", "ZF"}


class TestProgramStructure:
    def _program(self):
        j = make("JNS", ("LABEL",), [LabelOperand("bb1")])
        add = make("ADD", ("REG", "REG"), [RegisterOperand("RAX"), RegisterOperand("RBX")], 64)
        nop = make("NOP", (), [])
        return TestCaseProgram(
            blocks=[
                BasicBlock("bb0", [add], [j]),
                BasicBlock("bb1", [nop], []),
            ]
        )

    def test_linearize(self):
        program = self._program()
        linear = program.linearize()
        assert len(linear) == 3
        assert linear.label_to_index["bb0"] == 0
        assert linear.label_to_index["bb1"] == 2
        assert linear.label_to_index["exit"] == 3
        assert linear.block_of == ["bb0", "bb0", "bb1"]

    def test_target_index(self):
        program = self._program()
        linear = program.linearize()
        branch = linear.instructions[1]
        assert linear.target_index(branch) == 2
        assert linear.target_index(linear.instructions[0]) is None

    def test_validate_dag_accepts_forward(self):
        self._program().validate_dag()

    def test_validate_dag_rejects_backward(self):
        j = make("JMP", ("LABEL",), [LabelOperand("bb0")])
        program = TestCaseProgram(
            blocks=[BasicBlock("bb0"), BasicBlock("bb1", [], [j])]
        )
        with pytest.raises(ValueError, match="backward"):
            program.validate_dag()

    def test_validate_dag_rejects_undefined_label(self):
        j = make("JMP", ("LABEL",), [LabelOperand("nowhere")])
        program = TestCaseProgram(blocks=[BasicBlock("bb0", [], [j]), BasicBlock("bb1")])
        with pytest.raises(ValueError, match="undefined"):
            program.validate_dag()

    def test_clone_is_independent(self):
        program = self._program()
        clone = program.clone()
        clone.blocks[0].body.clear()
        assert len(program.blocks[0].body) == 1

    def test_num_instructions(self):
        assert self._program().num_instructions == 3

    def test_block_named(self):
        program = self._program()
        assert program.block_named("bb1").name == "bb1"
        with pytest.raises(KeyError):
            program.block_named("missing")

    def test_successors(self):
        program = self._program()
        assert program.blocks[0].successors() == ["bb1"]
