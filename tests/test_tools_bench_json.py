"""Schema validation for benchmark JSON artifacts: the tier-1 face of
the CI ``check_bench_json`` step.

The checker itself must stay in sync with what the benchmarks emit, so
these tests exercise it both on hand-built payloads (good and broken)
and on a real ``SweepReport``-derived section."""

import json
import os
import sys

import pytest

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(__file__)), "tools"),
)
import check_bench_json  # noqa: E402

from repro.core.config import FuzzerConfig
from repro.core.sweep import SweepRunner, SweepSpec


def write(tmp_path, payload, name="bench.json"):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


GOOD_WORKER_SCALING = {
    "worker_scaling": {
        "arch": "x86_64",
        "cores": 4,
        "test_cases": 48,
        "wall_seconds_1_worker": 10.0,
        "wall_seconds_4_workers": 3.0,
        "speedup": 3.33,
        "found": True,
    }
}


class TestChecker:
    def test_valid_section_passes(self, tmp_path):
        assert check_bench_json.check_file(
            write(tmp_path, GOOD_WORKER_SCALING)
        ) == []

    def test_unknown_section_rejected(self, tmp_path):
        errors = check_bench_json.check_file(
            write(tmp_path, {"mystery_bench": {}})
        )
        assert errors and "unknown section" in errors[0]

    def test_missing_keys_rejected(self, tmp_path):
        errors = check_bench_json.check_file(
            write(tmp_path, {"worker_scaling": {"arch": "x86_64"}})
        )
        assert errors and "missing keys" in errors[0]

    def test_empty_artifact_rejected(self, tmp_path):
        assert check_bench_json.check_file(write(tmp_path, {}))

    def test_unreadable_json_rejected(self, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text("{not json")
        assert check_bench_json.check_file(str(path))

    def test_scheduling_keys_forbidden_in_cells(self, tmp_path):
        cell = {key: 0 for key in check_bench_json.CELL_KEYS}
        cell["observed_concurrency"] = 1.5  # timing leaked into cells
        payload = {
            "sweep_cross_isa": {
                "grid": {},
                "cells": [cell],
                "timing": {},
                "scheduling": {},
                "trace_cache": {},
                "wall_seconds": 1.0,
                "trace_cache_disk_hits": 0,
                "rerun_disk_hits": 0,
            }
        }
        errors = check_bench_json.check_file(write(tmp_path, payload))
        assert any("observed_concurrency" in error for error in errors)

    def test_nan_breaks_byte_stability(self, tmp_path):
        cell = {key: 0 for key in check_bench_json.CELL_KEYS}
        cell["test_cases"] = float("nan")
        payload = {
            "sweep_cross_isa": {
                "grid": {},
                "cells": [cell],
                "timing": {},
                "scheduling": {},
                "trace_cache": {},
                "wall_seconds": 1.0,
                "trace_cache_disk_hits": 0,
                "rerun_disk_hits": 0,
            }
        }
        path = tmp_path / "nan.json"
        path.write_text(json.dumps(payload))  # json allows NaN by default
        errors = check_bench_json.check_file(str(path))
        assert any("serializable" in error for error in errors)

    def _sweep_payloads(self):
        cell = {key: 0 for key in check_bench_json.CELL_KEYS}
        cross = {
            "grid": {}, "cells": [dict(cell)], "timing": {},
            "scheduling": {}, "trace_cache": {}, "wall_seconds": 1.0,
            "trace_cache_disk_hits": 0, "rerun_disk_hits": 0,
        }
        scaling = {
            "cores": 4, "cells": [dict(cell)], "max_parallel_cells": 4,
            "cell_workers": 1, "wall_seconds_sequential": 2.0,
            "wall_seconds_parallel": 1.0, "speedup": 2.0,
            "trace_cache_max_bytes": 65536, "disk_bytes_sequential": 0,
            "disk_bytes_parallel": 0, "gc_evictions": 1,
        }
        return cross, scaling

    def test_cross_section_byte_stability_enforced(self, tmp_path, capsys):
        cross, scaling = self._sweep_payloads()
        path = write(
            tmp_path,
            {"sweep_cross_isa": cross, "sweep_parallel_scaling": scaling},
        )
        assert check_bench_json.main([path]) == 0
        # the same grid reporting different cells must fail the gate
        scaling["cells"][0]["test_cases"] = 999
        path = write(
            tmp_path,
            {"sweep_cross_isa": cross, "sweep_parallel_scaling": scaling},
            name="diverged.json",
        )
        capsys.readouterr()
        assert check_bench_json.main([path]) == 1
        assert "different reports" in capsys.readouterr().out

    def test_main_requires_sections(self, tmp_path, capsys):
        path = write(tmp_path, GOOD_WORKER_SCALING)
        assert check_bench_json.main([path]) == 0
        assert check_bench_json.main(
            [path, "--require", "worker_scaling"]
        ) == 0
        assert check_bench_json.main(
            [path, "--require", "sweep_cross_isa"]
        ) == 1
        assert "sweep_cross_isa" in capsys.readouterr().out


GOOD_CORPUS_REPLAY = {
    "corpus_replay": {
        "corpus": "corpus/seed",
        "entries": 1,
        "passed": 1,
        "changed": 0,
        "failed": 0,
        "skipped": 0,
        "report_digest": "ab" * 20,
        "detection": [
            {
                "name": "spectre-v1",
                "file": "spectre-v1-0011.json",
                "arch": "x86_64",
                "contract": "CT-SEQ",
                "cpu": "skylake",
                "verdict": "PASS",
                "digest": "cd" * 20,
                "inputs": 5,
                "seconds": 0.02,
            }
        ],
    }
}


class TestCorpusReplaySection:
    def test_valid_section_passes(self, tmp_path):
        assert check_bench_json.check_file(
            write(tmp_path, GOOD_CORPUS_REPLAY)
        ) == []

    def test_missing_keys_rejected(self, tmp_path):
        errors = check_bench_json.check_file(
            write(tmp_path, {"corpus_replay": {"corpus": "x"}})
        )
        assert errors and any("missing keys" in error for error in errors)

    def test_empty_corpus_rejected(self, tmp_path):
        payload = json.loads(json.dumps(GOOD_CORPUS_REPLAY))
        payload["corpus_replay"]["entries"] = 0
        payload["corpus_replay"]["passed"] = 0
        payload["corpus_replay"]["detection"] = []
        errors = check_bench_json.check_file(write(tmp_path, payload))
        assert any("entries must be >= 1" in error for error in errors)

    @pytest.mark.parametrize("counter", ["failed", "changed", "skipped"])
    def test_any_regression_counter_rejected(self, tmp_path, counter):
        payload = json.loads(json.dumps(GOOD_CORPUS_REPLAY))
        payload["corpus_replay"][counter] = 1
        errors = check_bench_json.check_file(write(tmp_path, payload))
        assert any(f"{counter} must be 0" in error for error in errors)

    def test_detection_must_cover_every_entry(self, tmp_path):
        payload = json.loads(json.dumps(GOOD_CORPUS_REPLAY))
        payload["corpus_replay"]["detection"] = []
        errors = check_bench_json.check_file(write(tmp_path, payload))
        assert any("one report per entry" in error for error in errors)

    def test_detection_entry_keys_checked(self, tmp_path):
        payload = json.loads(json.dumps(GOOD_CORPUS_REPLAY))
        del payload["corpus_replay"]["detection"][0]["seconds"]
        errors = check_bench_json.check_file(write(tmp_path, payload))
        assert any("missing keys" in error for error in errors)

    def test_real_replay_report_satisfies_the_schema(self, tmp_path):
        """The CLI's --json artifact and the checker must agree —
        validated against a real replay of the checked-in seed corpus."""
        from repro.corpus import CounterexampleCorpus

        seed_dir = os.path.join(
            os.path.dirname(os.path.dirname(__file__)), "corpus", "seed"
        )
        report = CounterexampleCorpus(seed_dir).replay()
        payload = {"corpus_replay": report.to_json()}
        assert check_bench_json.check_file(write(tmp_path, payload)) == []
        section = payload["corpus_replay"]
        assert set(section) >= check_bench_json.SECTION_SCHEMAS[
            "corpus_replay"
        ]
        assert set(section["detection"][0]) == (
            check_bench_json.DETECTION_KEYS
        )


class TestAgainstRealReports:
    def test_sweep_report_cells_satisfy_the_schema(self, tmp_path):
        spec = SweepSpec(
            arches=("x86_64",),
            contracts=("CT-SEQ",),
            cpus=("skylake",),
            base_config=FuzzerConfig(
                instruction_subsets=("AR",),
                num_test_cases=3,
                inputs_per_test_case=6,
                diversity_feedback=False,
            ),
        )
        report = SweepRunner(spec).run()
        cells = [r.deterministic_report() for r in report.results]
        assert check_bench_json.check_deterministic_cells(
            cells, "cells"
        ) == []
        # and the cell-key schema matches what reports actually carry
        assert set(cells[0]) == check_bench_json.CELL_KEYS


GOOD_WORKSTEALING = {
    "workstealing": {
        "arch": "x86_64",
        "cores": 4,
        "cells": [{key: 0 for key in check_bench_json.CELL_KEYS}],
        "shards_per_cell": 4,
        "total_units": 16,
        "steal_workers": 4,
        "wall_seconds_static": 8.0,
        "wall_seconds_workstealing": 4.0,
        "speedup": 2.0,
        "speedup_gated": True,
        "reports_equal": True,
        "resume_digest_equal": True,
    }
}


class TestWorkStealingSection:
    def test_valid_section_passes(self, tmp_path):
        assert check_bench_json.check_file(
            write(tmp_path, GOOD_WORKSTEALING)
        ) == []

    def test_missing_keys_rejected(self, tmp_path):
        errors = check_bench_json.check_file(
            write(tmp_path, {"workstealing": {"arch": "x86_64"}})
        )
        assert errors and any("missing keys" in error for error in errors)

    def test_unequal_reports_rejected(self, tmp_path):
        payload = json.loads(json.dumps(GOOD_WORKSTEALING))
        payload["workstealing"]["reports_equal"] = False
        errors = check_bench_json.check_file(write(tmp_path, payload))
        assert any("reports_equal" in error for error in errors)

    def test_unequal_resume_digest_rejected(self, tmp_path):
        payload = json.loads(json.dumps(GOOD_WORKSTEALING))
        payload["workstealing"]["resume_digest_equal"] = False
        errors = check_bench_json.check_file(write(tmp_path, payload))
        assert any("resume_digest_equal" in error for error in errors)

    def test_gated_speedup_below_floor_rejected(self, tmp_path):
        payload = json.loads(json.dumps(GOOD_WORKSTEALING))
        payload["workstealing"]["speedup"] = 1.1
        errors = check_bench_json.check_file(write(tmp_path, payload))
        assert any("speedup" in error for error in errors)

    def test_ungated_speedup_below_floor_tolerated(self, tmp_path):
        # on starved runners the gate is advisory; equality still holds
        payload = json.loads(json.dumps(GOOD_WORKSTEALING))
        payload["workstealing"]["speedup"] = 0.9
        payload["workstealing"]["speedup_gated"] = False
        assert check_bench_json.check_file(write(tmp_path, payload)) == []

    def test_nonpositive_speedup_rejected(self, tmp_path):
        payload = json.loads(json.dumps(GOOD_WORKSTEALING))
        payload["workstealing"]["speedup"] = 0
        payload["workstealing"]["speedup_gated"] = False
        errors = check_bench_json.check_file(write(tmp_path, payload))
        assert any("speedup" in error for error in errors)

    def test_degenerate_unit_count_rejected(self, tmp_path):
        # one unit total means nothing could ever be stolen
        payload = json.loads(json.dumps(GOOD_WORKSTEALING))
        payload["workstealing"]["total_units"] = 1
        errors = check_bench_json.check_file(write(tmp_path, payload))
        assert any("total_units" in error for error in errors)

    def test_cell_determinism_checked(self, tmp_path):
        payload = json.loads(json.dumps(GOOD_WORKSTEALING))
        payload["workstealing"]["cells"][0]["wall_seconds"] = 1.5
        errors = check_bench_json.check_file(write(tmp_path, payload))
        assert any("wall_seconds" in error for error in errors)
