"""Tests of the replayable counterexample corpus (repro.corpus).

Covers the full round trip (persist -> load -> replay) on both ISA
backends, the storage discipline (atomic publish, digest dedup,
schema-version rejection, torn-file degradation to SKIP), the replay
verdict semantics, the persistence hooks (Fuzzer.run and
Postprocessor.minimize), and — against the checked-in ``corpus/seed``
artifact — the cross-knob determinism matrix: the replay report digest
must be byte-identical across the pass-pipeline and battery-engine
knobs (the PR 5-7 contracts, pinned by a fixed external artifact
instead of self-parity).
"""

import functools
import json
import os
from dataclasses import replace
from pathlib import Path

import pytest

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import Fuzzer, TestingPipeline
from repro.core.input_gen import InputGenerator
from repro.core.postprocessor import Postprocessor
from repro.corpus import (
    CHANGED,
    FAIL,
    FORMAT,
    PASS,
    SKIP,
    CorpusRecord,
    CounterexampleCorpus,
    decode_input,
    encode_input,
    record_from_violation,
)
from repro.gallery import GALLERY

#: the checked-in seed corpus this repo's CI replays on every leg
SEED_CORPUS = str(Path(__file__).resolve().parent.parent / "corpus" / "seed")


@functools.lru_cache(maxsize=None)
def detect(name, max_inputs=128):
    """(config, violation) of one gallery gadget, fully confirmed —
    the same deterministic procedure tools/seed_corpus.py runs."""
    entry = GALLERY[name]
    config = FuzzerConfig(
        arch=entry.arch,
        contract_name=entry.contract,
        cpu_preset=entry.cpu_preset,
        executor_mode=entry.executor_mode,
        analyzer_mode=entry.analyzer_mode,
        seed=11,
    )
    pipeline = TestingPipeline(config)
    generator = InputGenerator(
        seed=42,
        entropy_bits=entry.entropy_bits,
        layout=pipeline.layout,
        registers=pipeline.arch.default_register_pool,
        flag_bits=pipeline.arch.registers.flag_bits,
    )
    program = entry.program()
    count = 4
    while count <= max_inputs:
        inputs = generator.generate(count)
        outcome = pipeline.test_program(program, inputs)
        for candidate in outcome.analysis.candidates:
            if pipeline.confirm_candidate(outcome, candidate):
                return config, pipeline.build_violation(outcome, candidate)
        count *= 2
    raise AssertionError(f"{name} did not violate within {max_inputs} inputs")


def gadget_record(name):
    config, violation = detect(name)
    return record_from_violation(violation, config, name=name)


class TestInputCodec:
    def test_round_trip(self):
        pipeline = TestingPipeline(FuzzerConfig())
        generator = InputGenerator(seed=3, layout=pipeline.layout)
        for original in generator.generate(4):
            decoded = decode_input(encode_input(original))
            assert dict(decoded.registers) == dict(original.registers)
            assert dict(decoded.flags) == dict(original.flags)
            assert decoded.memory == original.memory
            assert decoded.seed == original.seed

    def test_encoding_is_json_safe(self):
        pipeline = TestingPipeline(FuzzerConfig())
        generator = InputGenerator(seed=3, layout=pipeline.layout)
        payload = encode_input(generator.generate_one())
        assert decode_input(json.loads(json.dumps(payload))).memory


@pytest.mark.parametrize("name", ["spectre-v1", "spectre-v1-a64"])
class TestRoundTrip:
    """Persist -> load -> replay on both ISA backends."""

    def test_persist_load_replay(self, tmp_path, name):
        corpus = CounterexampleCorpus(str(tmp_path))
        record = gadget_record(name)
        path = corpus.add(record)
        assert path is not None and os.path.exists(path)

        entries = corpus.load()
        assert len(entries) == 1
        loaded = entries[0].record
        assert loaded is not None
        assert loaded.arch == record.arch
        assert loaded.program_text == record.program_text
        assert loaded.expected_digest == record.expected_digest
        assert len(loaded.inputs) == len(record.inputs)

        result = corpus.replay_entry(entries[0])
        assert result.verdict == PASS
        assert result.observed_digest == record.expected_digest
        assert result.inputs == len(record.inputs)

    def test_record_json_is_self_contained(self, tmp_path, name):
        """A record round-trips through plain JSON text — no pickles,
        no references into this process."""
        record = gadget_record(name)
        rehydrated = CorpusRecord.from_json(
            json.loads(json.dumps(record.to_json()))
        )
        assert rehydrated.expected_digest == record.expected_digest
        assert rehydrated.program_text == record.program_text


class TestStorageDiscipline:
    def test_duplicate_digest_dedups(self, tmp_path):
        corpus = CounterexampleCorpus(str(tmp_path))
        record = gadget_record("spectre-v1")
        assert corpus.add(record) is not None
        assert corpus.add(record) is None  # same evidence, same file
        assert len(corpus) == 1

    def test_no_temp_files_survive_publish(self, tmp_path):
        corpus = CounterexampleCorpus(str(tmp_path))
        corpus.add(gadget_record("spectre-v1"))
        leftovers = [
            name for name in os.listdir(tmp_path) if name.startswith(".tmp-")
        ]
        assert leftovers == []

    def test_foreign_schema_version_degrades_to_skip(self, tmp_path):
        corpus = CounterexampleCorpus(str(tmp_path))
        payload = gadget_record("spectre-v1").to_json()
        payload["format"] = FORMAT + 1
        (tmp_path / "future.json").write_text(
            json.dumps(payload), encoding="utf-8"
        )
        entries = corpus.load()
        assert len(entries) == 1
        assert entries[0].record is None
        assert "format" in entries[0].skip_reason
        assert corpus.replay_entry(entries[0]).verdict == SKIP

    def test_torn_file_degrades_to_skip(self, tmp_path):
        corpus = CounterexampleCorpus(str(tmp_path))
        blob = json.dumps(gadget_record("spectre-v1").to_json())
        (tmp_path / "torn.json").write_text(
            blob[: len(blob) // 2], encoding="utf-8"
        )
        entries = corpus.load()
        assert len(entries) == 1
        assert entries[0].record is None
        assert corpus.replay_entry(entries[0]).verdict == SKIP

    def test_missing_keys_degrade_to_skip(self, tmp_path):
        corpus = CounterexampleCorpus(str(tmp_path))
        (tmp_path / "empty.json").write_text(
            json.dumps({"format": FORMAT}), encoding="utf-8"
        )
        report = corpus.replay()
        assert [result.verdict for result in report.results] == [SKIP]
        assert not report.strict_ok()
        assert report.ok  # non-strict: SKIP alone is not a failure

    def test_hidden_and_foreign_files_are_ignored(self, tmp_path):
        corpus = CounterexampleCorpus(str(tmp_path))
        (tmp_path / ".tmp-half-written").write_text("{", encoding="utf-8")
        (tmp_path / "notes.txt").write_text("hi", encoding="utf-8")
        assert corpus.paths() == []


class TestReplayVerdicts:
    def test_changed_on_evidence_drift(self, tmp_path):
        corpus = CounterexampleCorpus(str(tmp_path))
        record = replace(
            gadget_record("spectre-v1"), expected_digest="0" * 40
        )
        corpus.add(record)
        report = corpus.replay()
        assert [result.verdict for result in report.results] == [CHANGED]
        assert not report.ok

    def test_fail_when_detection_is_lost(self, tmp_path):
        """A record whose program no longer violates is a
        detection-power regression, not a crash."""
        corpus = CounterexampleCorpus(str(tmp_path))
        record = replace(gadget_record("spectre-v1"), program_text="NOP")
        corpus.add(record)
        report = corpus.replay()
        assert [result.verdict for result in report.results] == [FAIL]
        assert not report.ok

    def test_unknown_contract_degrades_to_skip(self, tmp_path):
        corpus = CounterexampleCorpus(str(tmp_path))
        record = replace(
            gadget_record("spectre-v1"), contract="CT-FROM-THE-FUTURE"
        )
        corpus.add(record)
        assert [r.verdict for r in corpus.replay().results] == [SKIP]

    def test_arch_filter(self, tmp_path):
        corpus = CounterexampleCorpus(str(tmp_path))
        corpus.add(gadget_record("spectre-v1"))
        corpus.add(gadget_record("spectre-v1-a64"))
        report = corpus.replay(arch="aarch64")
        assert len(report.results) == 1
        assert report.results[0].entry.record.arch == "aarch64"


class TestPersistenceHooks:
    def test_fuzzer_run_persists_its_violation(self, tmp_path):
        """The corpus_dir config knob records the find of a plain
        fuzzing run, and the record replays PASS."""
        config = FuzzerConfig(
            instruction_subsets=("AR", "MEM", "CB"),
            contract_name="CT-SEQ",
            cpu_preset="skylake-v4-patched",
            num_test_cases=120,
            inputs_per_test_case=25,
            seed=7,
            corpus_dir=str(tmp_path),
        )
        report = Fuzzer(config).run()
        assert report.found
        corpus = CounterexampleCorpus(str(tmp_path))
        entries = corpus.load()
        assert len(entries) == 1
        assert entries[0].record.provenance["found_by"] == "fuzz"
        result = corpus.replay_entry(entries[0])
        assert result.verdict == PASS

    def test_postprocessor_minimize_persists(self, tmp_path):
        """Postprocessor.minimize records the *pre-fence* minimized
        counterexample; it replays PASS at its own confirmation level."""
        config, violation = detect("spectre-v1")
        pipeline = TestingPipeline(
            replace(config, corpus_dir=str(tmp_path))
        )
        Postprocessor(pipeline).minimize(
            violation.program, list(violation.input_sequence)
        )
        corpus = CounterexampleCorpus(str(tmp_path))
        entries = corpus.load()
        assert len(entries) == 1
        record = entries[0].record
        assert record.provenance["found_by"] == "minimize"
        assert record.confirmed is False  # shrunk at confirm=False
        assert corpus.replay_entry(entries[0]).verdict == PASS


class TestKnobParity:
    """Replay is engine-independent: per-input vs battery, compiled vs
    interpretive — same verdicts, same digests (ISSUE satellite on
    --no-battery-eval / compile_programs=False parity)."""

    @pytest.fixture(scope="class")
    def small_corpus(self, tmp_path_factory):
        corpus = CounterexampleCorpus(
            str(tmp_path_factory.mktemp("knob-corpus"))
        )
        corpus.add(gadget_record("spectre-v1"))
        corpus.add(gadget_record("spectre-v1-a64"))
        return corpus

    @pytest.mark.parametrize(
        "overrides",
        [
            {"battery_eval": False},
            {"compile_programs": False},
            {"battery_eval": False, "compile_programs": False},
        ],
        ids=["no-battery", "interpretive", "interpretive-no-battery"],
    )
    def test_digest_parity(self, small_corpus, overrides):
        baseline = small_corpus.replay()
        assert baseline.strict_ok()
        knobbed = small_corpus.replay(config_overrides=overrides)
        assert knobbed.strict_ok()
        assert knobbed.report_digest() == baseline.report_digest()


class TestSeedCorpusDeterminismMatrix:
    """The checked-in corpus/seed is the fixed external artifact that
    pins the PR 6-7 byte-identical pass-pipeline contract: the replay
    report digest must not move across optimize_dead_flags x
    optimize_masked_access x battery_eval."""

    @pytest.fixture(scope="class")
    def seed_corpus(self):
        corpus = CounterexampleCorpus(SEED_CORPUS)
        assert len(corpus) >= 3, "checked-in corpus/seed is missing"
        return corpus

    @pytest.fixture(scope="class")
    def baseline_digest(self, seed_corpus):
        report = seed_corpus.replay()
        assert report.strict_ok(), [r.detail for r in report.results]
        return report.report_digest()

    def test_seed_corpus_covers_both_isas(self, seed_corpus):
        arches = {
            entry.record.arch
            for entry in seed_corpus.load()
            if entry.record is not None
        }
        assert {"x86_64", "aarch64"} <= arches

    @pytest.mark.parametrize("dead_flags", [True, False])
    @pytest.mark.parametrize("masked_access", [True, False])
    @pytest.mark.parametrize("battery", [True, False])
    def test_digest_is_knob_invariant(
        self, seed_corpus, baseline_digest, dead_flags, masked_access,
        battery,
    ):
        report = seed_corpus.replay(
            config_overrides={
                "optimize_dead_flags": dead_flags,
                "optimize_masked_access": masked_access,
                "battery_eval": battery,
            }
        )
        assert report.strict_ok(), [r.detail for r in report.results]
        assert report.report_digest() == baseline_digest
