"""Unit tests for the emulator run loop."""

import pytest

from repro.isa.assembler import parse_program
from repro.emulator.errors import (
    ExecutionLimitExceeded,
    InvalidProgram,
)
from repro.emulator.machine import Emulator
from repro.emulator.state import InputData


class TestRun:
    def test_straight_line(self):
        emu = Emulator(parse_program("MOV RAX, 1\nADD RAX, 2"))
        results = emu.run(InputData())
        assert len(results) == 2
        assert emu.state.read_register("RAX") == 3

    def test_branching_taken(self):
        program = parse_program(
            """
            CMP RAX, 0
            JZ .skip
            MOV RBX, 1
        .skip: MOV RCX, 2
            """
        )
        emu = Emulator(program)
        emu.run(InputData(registers={"RAX": 0}))
        assert emu.state.read_register("RBX") == 0  # skipped
        assert emu.state.read_register("RCX") == 2

    def test_branching_not_taken(self):
        program = parse_program(
            """
            CMP RAX, 0
            JZ .skip
            MOV RBX, 1
        .skip: MOV RCX, 2
            """
        )
        emu = Emulator(program)
        emu.run(InputData(registers={"RAX": 7}))
        assert emu.state.read_register("RBX") == 1

    def test_jump_to_exit_label(self):
        program = parse_program("JMP .exit\nMOV RAX, 1")
        emu = Emulator(program)
        emu.run(InputData())
        assert emu.state.read_register("RAX") == 0

    def test_call_ret_roundtrip(self):
        program = parse_program(
            """
            CALL .func
            MOV RBX, 2
            JMP .end
        .func: MOV RAX, 1
            RET
        .end: NOP
            """
        )
        emu = Emulator(program)
        emu.run(InputData())
        assert emu.state.read_register("RAX") == 1
        assert emu.state.read_register("RBX") == 2

    def test_hook_sees_every_step(self):
        emu = Emulator(parse_program("MOV RAX, 1\nNOP\nNOP"))
        seen = []
        emu.run(InputData(), hook=lambda result: seen.append(result.pc))
        assert seen == [0, 1, 2]

    def test_step_limit(self):
        # a self-targeting indirect jump loops forever without the limit
        program = parse_program("MOV RAX, .loop\n.loop: JMP RAX")
        emu = Emulator(program)
        with pytest.raises(ExecutionLimitExceeded):
            emu.run(InputData(), max_steps=100)

    def test_input_isolation_between_runs(self):
        emu = Emulator(parse_program("ADD RAX, 1"))
        emu.run(InputData(registers={"RAX": 1}))
        emu.run(InputData(registers={"RAX": 5}))
        assert emu.state.read_register("RAX") == 6  # not 2+5

    def test_resolve_label(self):
        emu = Emulator(parse_program("NOP\n.here: NOP"))
        assert emu.resolve_label("here") == 1
        with pytest.raises(InvalidProgram):
            emu.resolve_label("missing")

    def test_step_out_of_range(self):
        emu = Emulator(parse_program("NOP"))
        with pytest.raises(InvalidProgram):
            emu.step(5)

    def test_checkpoint_rollback(self):
        emu = Emulator(parse_program("MOV RAX, 1\nMOV RAX, 2"))
        emu.state.load_input(InputData())
        emu.step(0)
        checkpoint = emu.checkpoint()
        emu.step(1)
        assert emu.state.read_register("RAX") == 2
        emu.rollback(checkpoint)
        assert emu.state.read_register("RAX") == 1
