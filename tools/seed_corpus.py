#!/usr/bin/env python3
"""Regenerate the checked-in seed corpus (``corpus/seed/``).

The seed corpus pins the detection of the canonical gallery gadgets —
Spectre V1 and V4 on x86_64, V1 on aarch64 — as replayable records
(see repro.corpus and docs/corpus.md): CI replays them with
``python -m repro replay --corpus corpus/seed --strict`` on both
REPRO_ARCH matrix legs, so a detection-power or determinism regression
fails the build.

Everything here is deterministic (fixed config seed, fixed input-
generator seed, doubling input batteries, confirm-level minimization),
so re-running the tool after an engine change shows exactly which
records' evidence digests moved — that diff *is* the review surface.

Usage::

    PYTHONPATH=src python tools/seed_corpus.py [--out corpus/seed]
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.core.config import FuzzerConfig  # noqa: E402
from repro.core.fuzzer import TestingPipeline  # noqa: E402
from repro.core.input_gen import InputGenerator  # noqa: E402
from repro.core.postprocessor import Postprocessor  # noqa: E402
from repro.corpus import CounterexampleCorpus, record_from_violation  # noqa: E402
from repro.gallery import GALLERY  # noqa: E402

#: the gadgets the seed corpus pins: V1/V4 on x86_64, V1 on aarch64
SEED_GADGETS = ("spectre-v1", "spectre-v4", "spectre-v1-a64")

#: deterministic seeds, matching `repro reproduce`'s defaults
CONFIG_SEED = 11
INPUT_SEED = 42
MAX_INPUTS = 128


def detect(entry):
    """Find the gadget's confirmed violation on a doubling battery.

    Returns ``(pipeline, config, violation)`` with the violation built
    on the *minimized* input battery (Postprocessor stage 1 at full
    confirmation level), so replay re-detects on the smallest — and
    fastest — battery that still violates.
    """
    config = FuzzerConfig(
        arch=entry.arch,
        contract_name=entry.contract,
        cpu_preset=entry.cpu_preset,
        executor_mode=entry.executor_mode,
        analyzer_mode=entry.analyzer_mode,
        seed=CONFIG_SEED,
    )
    pipeline = TestingPipeline(config)
    generator = InputGenerator(
        seed=INPUT_SEED,
        entropy_bits=entry.entropy_bits,
        layout=pipeline.layout,
        registers=pipeline.arch.default_register_pool,
        flag_bits=pipeline.arch.registers.flag_bits,
    )
    program = entry.program()
    count = 4
    inputs = None
    while count <= MAX_INPUTS:
        battery = generator.generate(count)
        if pipeline.check_violation(program, battery, confirm=True):
            inputs = battery
            break
        count *= 2
    if inputs is None:
        raise SystemExit(
            f"{entry.name}: no confirmed violation within "
            f"{MAX_INPUTS} inputs — the gallery contract is broken"
        )
    inputs = Postprocessor(pipeline, confirm=True).minimize_inputs(
        program, inputs
    )
    outcome = pipeline.test_program(program, inputs)
    for candidate in outcome.analysis.candidates:
        if pipeline.confirm_candidate(outcome, candidate):
            return pipeline, config, pipeline.build_violation(
                outcome, candidate
            )
    raise SystemExit(
        f"{entry.name}: input minimization lost the confirmed violation"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="corpus/seed", metavar="DIR",
        help="corpus directory to (re)populate (default: corpus/seed)",
    )
    args = parser.parse_args(argv)

    corpus = CounterexampleCorpus(args.out)
    for name in SEED_GADGETS:
        entry = GALLERY[name]
        _, config, violation = detect(entry)
        record = record_from_violation(
            violation,
            config,
            name=entry.name,
            provenance={
                "found_by": "tools/seed_corpus.py",
                "gadget": entry.name,
                "vulnerability": entry.vulnerability,
                "input_seed": INPUT_SEED,
            },
            confirmed=True,
        )
        path = corpus.add(record)
        if path is None:
            path = corpus.path_for(record) + " (already present)"
        print(
            f"{entry.name}: {violation.classification} on "
            f"{len(record.inputs)} inputs -> {path}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
