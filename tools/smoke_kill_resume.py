#!/usr/bin/env python
"""Kill-and-resume smoke test for journaled campaigns (the CI step).

Launches a journaled campaign in a child process group, SIGKILLs the
whole group once some — but not all — shard checkpoints have been
published, resumes from the journal in-process, and asserts the
resumed report's digest equals an uninterrupted run's. This exercises
the crash-consistency contract of ``docs/campaigns-and-sweeps.md``
end to end: atomic record publish (a torn record is re-run, never
trusted), spec-digest pinning, and replay of completed shards.

The campaign targets a holds-everywhere contract (CT-COND), so every
shard is budget-bound and the uninterrupted baseline is deterministic.
The ISA follows ``REPRO_ARCH`` (the CI matrix), x86_64 by default.

Usage::

    PYTHONPATH=src python tools/smoke_kill_resume.py [--workdir DIR]
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(
    0,
    os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    ),
)

from repro import api  # noqa: E402

SHARDS = 4
WORKERS = 2
#: budget-bound shape: big enough that the kill lands mid-campaign,
#: small enough that the smoke stays a smoke
TEST_CASES = 240
INPUTS = 20
KILL_DEADLINE_SECONDS = 300.0


def engine_options() -> api.EngineOptions:
    return api.EngineOptions(
        arch=os.environ.get("REPRO_ARCH", "x86_64"),
        contract="CT-COND",
        cpu="skylake-v4-patched",
        num_test_cases=TEST_CASES,
        inputs_per_test_case=INPUTS,
        seed=11,
    )


def journal_records(journal_dir: str) -> int:
    try:
        names = os.listdir(journal_dir)
    except FileNotFoundError:
        return 0
    return sum(
        1
        for name in names
        if name.startswith("shard-") and name.endswith(".pkl")
    )


def child_main(journal_dir: str) -> int:
    api.run_campaign(
        engine_options(),
        workers=WORKERS,
        shards=SHARDS,
        journal_dir=journal_dir,
    )
    return 0


def kill_midway(journal_dir: str) -> str:
    """Run the journaled campaign in a child group; SIGKILL it once
    1 <= published checkpoints < SHARDS. Returns a status string."""
    child = subprocess.Popen(
        [sys.executable, os.path.abspath(__file__), "--child", journal_dir],
        start_new_session=True,  # its own process group: pool dies too
    )
    deadline = time.monotonic() + KILL_DEADLINE_SECONDS
    try:
        while time.monotonic() < deadline:
            records = journal_records(journal_dir)
            if 1 <= records < SHARDS:
                os.killpg(child.pid, signal.SIGKILL)
                child.wait(timeout=30)
                return f"killed mid-run with {records}/{SHARDS} checkpoints"
            if child.poll() is not None:
                # finished before the kill window — the resume below
                # degenerates to a pure journal replay, still a valid
                # (if weaker) digest check
                return "child finished before the kill landed"
            time.sleep(0.05)
    finally:
        if child.poll() is None:
            os.killpg(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
    return f"killed at the {KILL_DEADLINE_SECONDS:.0f}s deadline"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--child", metavar="JOURNAL_DIR", default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--workdir", default=None,
                        help="scratch directory (default: a temp dir)")
    args = parser.parse_args()
    if args.child:
        return child_main(args.child)

    workdir = args.workdir or tempfile.mkdtemp(prefix="kill-resume-")
    journal_dir = os.path.join(workdir, "journal")
    options = engine_options()
    print(f"workdir: {workdir}")
    print(f"target: {options.arch} {options.contract} {options.cpu}, "
          f"{TEST_CASES} cases x {INPUTS} inputs, "
          f"{SHARDS} shards / {WORKERS} workers")

    status = kill_midway(journal_dir)
    survivors = journal_records(journal_dir)
    print(f"kill: {status}; {survivors} checkpoint(s) survived")

    resumed = api.run_campaign(
        options,
        workers=WORKERS,
        shards=SHARDS,
        journal_dir=journal_dir,
        resume=True,
    )
    print(f"resume: completed, digest {resumed.report_digest()}")

    baseline = api.run_campaign(options, workers=WORKERS, shards=SHARDS)
    print(f"baseline: uninterrupted digest {baseline.report_digest()}")

    if resumed.report_digest() != baseline.report_digest():
        print("FAIL: resumed digest differs from the uninterrupted run")
        return 1
    if resumed.merged.test_cases != baseline.merged.test_cases:
        print("FAIL: resumed merged budget differs")
        return 1
    print("PASS: killed-and-resumed campaign reproduced the "
          "uninterrupted report digest")
    return 0


if __name__ == "__main__":
    sys.exit(main())
