#!/usr/bin/env python
"""Kill-and-resume smoke test for journaled campaigns (the CI step).

Launches a journaled campaign in a child process group, SIGKILLs the
whole group once some — but not all — shard checkpoints have been
published, resumes from the journal in-process, and asserts the
resumed report's digest equals an uninterrupted run's. This exercises
the crash-consistency contract of ``docs/campaigns-and-sweeps.md``
end to end: atomic record publish (a torn record is re-run, never
trusted), spec-digest pinning, and replay of completed shards.

``--serve`` runs the service-level variant instead: a ``serve
--state-dir`` process is started, a journaled campaign job is
submitted over the wire, the whole serve process group is SIGKILLed
mid-campaign, and a restarted serve on the same state dir must recover
the job table, resubmit the interrupted job with ``resume`` flipped
on, and converge on the uninterrupted digest (docs/service.md
"Robustness"). When ``REPRO_BENCH_JSON`` names a file, the serve
variant records a ``service_resilience`` section there
(schema-checked by ``tools/check_bench_json.py``).

The campaign targets a holds-everywhere contract (CT-COND), so every
shard is budget-bound and the uninterrupted baseline is deterministic.
The ISA follows ``REPRO_ARCH`` (the CI matrix), x86_64 by default.

Usage::

    PYTHONPATH=src python tools/smoke_kill_resume.py [--workdir DIR]
    PYTHONPATH=src python tools/smoke_kill_resume.py --serve
"""

from __future__ import annotations

import argparse
import json
import os
import re
import select
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(
    0,
    os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    ),
)

from repro import api  # noqa: E402

SHARDS = 4
WORKERS = 2
#: budget-bound shape: big enough that the kill lands mid-campaign,
#: small enough that the smoke stays a smoke
TEST_CASES = 240
INPUTS = 20
KILL_DEADLINE_SECONDS = 300.0


def engine_options() -> api.EngineOptions:
    return api.EngineOptions(
        arch=os.environ.get("REPRO_ARCH", "x86_64"),
        contract="CT-COND",
        cpu="skylake-v4-patched",
        num_test_cases=TEST_CASES,
        inputs_per_test_case=INPUTS,
        seed=11,
    )


def journal_records(journal_dir: str) -> int:
    try:
        names = os.listdir(journal_dir)
    except FileNotFoundError:
        return 0
    return sum(
        1
        for name in names
        if name.startswith("shard-") and name.endswith(".pkl")
    )


def child_main(journal_dir: str) -> int:
    api.run_campaign(
        engine_options(),
        workers=WORKERS,
        shards=SHARDS,
        journal_dir=journal_dir,
    )
    return 0


def kill_midway(journal_dir: str) -> str:
    """Run the journaled campaign in a child group; SIGKILL it once
    1 <= published checkpoints < SHARDS. Returns a status string."""
    child = subprocess.Popen(
        [sys.executable, os.path.abspath(__file__), "--child", journal_dir],
        start_new_session=True,  # its own process group: pool dies too
    )
    deadline = time.monotonic() + KILL_DEADLINE_SECONDS
    try:
        while time.monotonic() < deadline:
            records = journal_records(journal_dir)
            if 1 <= records < SHARDS:
                os.killpg(child.pid, signal.SIGKILL)
                child.wait(timeout=30)
                return f"killed mid-run with {records}/{SHARDS} checkpoints"
            if child.poll() is not None:
                # finished before the kill window — the resume below
                # degenerates to a pure journal replay, still a valid
                # (if weaker) digest check
                return "child finished before the kill landed"
            time.sleep(0.05)
    finally:
        if child.poll() is None:
            os.killpg(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
    return f"killed at the {KILL_DEADLINE_SECONDS:.0f}s deadline"


def emit_bench_json(section: str, payload: dict) -> None:
    """Merge one section into the ``REPRO_BENCH_JSON`` sink (no-op
    unless the variable names a file; matches benchmarks/conftest.py)."""
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path:
        return
    data = {}
    if os.path.exists(path):
        with open(path) as handle:
            data = json.load(handle)
    data[section] = payload
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


# -- the service-level variant (--serve) -------------------------------

SERVE_READY_SECONDS = 60.0
SERVE_RESULT_TIMEOUT = 600.0
_LISTENING = re.compile(r"listening on ([0-9.]+):(\d+)")


def start_serve(state_dir: str):
    """Start ``serve --state-dir`` in its own process group; return
    ``(process, host, port, recovered_job_ids)`` once it is listening."""
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--state-dir", state_dir],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        start_new_session=True,  # its own group: job workers die too
    )
    deadline = time.monotonic() + SERVE_READY_SECONDS
    host, port = None, None
    recovered = []
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise RuntimeError("serve exited before listening")
        sys.stdout.write(f"  serve: {line}")
        match = _LISTENING.search(line)
        if match:
            host, port = match.group(1), int(match.group(2))
            break
    if host is None:
        raise RuntimeError("serve never printed its listening address")
    # the recovery line (if any) follows immediately; poll briefly
    poll_until = time.monotonic() + 2.0
    while time.monotonic() < poll_until:
        ready, _, _ = select.select([process.stdout], [], [], 0.1)
        if not ready:
            continue
        line = process.stdout.readline()
        if not line:
            break
        sys.stdout.write(f"  serve: {line}")
        if line.startswith("recovered "):
            recovered = [
                token.strip(",")
                for token in line.split(":", 1)[1].split()
            ]
            break
    return process, host, port, recovered


def kill_serve(process) -> None:
    if process.poll() is None:
        os.killpg(process.pid, signal.SIGKILL)
        process.wait(timeout=30)


def serve_main(workdir: str) -> int:
    """SIGKILL a serving campaign mid-run; recover from --state-dir."""
    from repro.faults import RetryPolicy
    from repro.service import JobSpec, ServiceClient

    journal_dir = os.path.join(workdir, "journal")
    state_dir = os.path.join(workdir, "state")
    options = engine_options()
    print(f"workdir: {workdir}")
    print(f"target: {options.arch} {options.contract} {options.cpu}, "
          f"{TEST_CASES} cases x {INPUTS} inputs, "
          f"{SHARDS} shards / {WORKERS} workers, via serve --state-dir")

    first, host, port, _ = start_serve(state_dir)
    killed = ""
    try:
        with ServiceClient(host, port, timeout=30.0) as client:
            job_id = client.submit(JobSpec(
                kind="campaign",
                options=options,
                workers=WORKERS,
                shards=SHARDS,
                journal_dir=journal_dir,
            ))
            print(f"submitted {job_id}")
            deadline = time.monotonic() + KILL_DEADLINE_SECONDS
            while time.monotonic() < deadline:
                records = journal_records(journal_dir)
                if 1 <= records < SHARDS:
                    killed = (f"killed serve with {records}/{SHARDS} "
                              "checkpoints")
                    break
                state = client.status(job_id)["state"]
                if state not in ("pending", "running"):
                    killed = f"job reached {state} before the kill landed"
                    break
                time.sleep(0.05)
            else:
                killed = "killed serve at the deadline"
    finally:
        kill_serve(first)
    print(f"kill: {killed}; {journal_records(journal_dir)} "
          "checkpoint(s) survived")

    second, host, port, recovered = start_serve(state_dir)
    try:
        if job_id not in recovered:
            print(f"FAIL: restarted serve did not recover {job_id} "
                  f"(recovered: {recovered})")
            return 1
        retry = RetryPolicy(attempts=4, base_delay=0.2, max_delay=2.0)
        with ServiceClient(host, port, timeout=SERVE_RESULT_TIMEOUT,
                           retry=retry) as client:
            events = list(client.results(job_id))
            status = client.status(job_id)
    finally:
        kill_serve(second)
    if status["state"] != "done":
        print(f"FAIL: recovered job ended {status['state']}: "
              f"{status.get('error')}")
        return 1
    if not any(event.get("event") == "recovered" for event in events):
        print("FAIL: recovered job carries no 'recovered' event")
        return 1
    digest = status["report"]["digest"]
    print(f"recovered job completed, digest {digest}")

    baseline = api.run_campaign(options, workers=WORKERS, shards=SHARDS)
    print(f"baseline: uninterrupted digest {baseline.report_digest()}")
    match = digest == baseline.report_digest()
    emit_bench_json("service_resilience", {
        "arch": options.arch,
        "kill": killed,
        "recovered_jobs": len(recovered),
        "resumed_digest": digest,
        "baseline_digest": baseline.report_digest(),
        "digest_match": match,
    })
    if not match:
        print("FAIL: recovered digest differs from the uninterrupted run")
        return 1
    print("PASS: SIGKILLed serve recovered its job table and "
          "reproduced the uninterrupted report digest")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--child", metavar="JOURNAL_DIR", default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--workdir", default=None,
                        help="scratch directory (default: a temp dir)")
    parser.add_argument("--serve", action="store_true",
                        help="run the service-level variant: SIGKILL a "
                        "serve --state-dir process mid-campaign and "
                        "verify the restarted serve recovers and "
                        "resumes to the same digest")
    args = parser.parse_args()
    if args.child:
        return child_main(args.child)
    if args.serve:
        return serve_main(
            args.workdir or tempfile.mkdtemp(prefix="kill-serve-")
        )

    workdir = args.workdir or tempfile.mkdtemp(prefix="kill-resume-")
    journal_dir = os.path.join(workdir, "journal")
    options = engine_options()
    print(f"workdir: {workdir}")
    print(f"target: {options.arch} {options.contract} {options.cpu}, "
          f"{TEST_CASES} cases x {INPUTS} inputs, "
          f"{SHARDS} shards / {WORKERS} workers")

    status = kill_midway(journal_dir)
    survivors = journal_records(journal_dir)
    print(f"kill: {status}; {survivors} checkpoint(s) survived")

    resumed = api.run_campaign(
        options,
        workers=WORKERS,
        shards=SHARDS,
        journal_dir=journal_dir,
        resume=True,
    )
    print(f"resume: completed, digest {resumed.report_digest()}")

    baseline = api.run_campaign(options, workers=WORKERS, shards=SHARDS)
    print(f"baseline: uninterrupted digest {baseline.report_digest()}")

    if resumed.report_digest() != baseline.report_digest():
        print("FAIL: resumed digest differs from the uninterrupted run")
        return 1
    if resumed.merged.test_cases != baseline.merged.test_cases:
        print("FAIL: resumed merged budget differs")
        return 1
    print("PASS: killed-and-resumed campaign reproduced the "
          "uninterrupted report digest")
    return 0


if __name__ == "__main__":
    sys.exit(main())
