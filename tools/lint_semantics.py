#!/usr/bin/env python
"""Differential catalog-metadata linter (the CI semantics-lint gate).

Thin CLI over :mod:`repro.analysis.metadata_lint`: validates every
instruction form's declared read/write sets, ``addr_regs``/``data_regs``
partition and load/store flags against its observed behaviour on
randomized states. Exits nonzero when any catalog form fails, printing
one line per finding.

Run from the repository root with ``src`` importable::

    PYTHONPATH=src python tools/lint_semantics.py [--arch x86_64 aarch64]
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.metadata_lint import lint_architecture
from repro.arch import architecture_names, get_architecture


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--arch",
        nargs="+",
        default=list(architecture_names()),
        choices=architecture_names(),
        help="ISA backends to lint (default: all registered)",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=3,
        metavar="N",
        help="randomized states per instruction form",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    failed = False
    for name in args.arch:
        arch = get_architecture(name)
        findings = lint_architecture(arch, trials=args.trials, seed=args.seed)
        print(
            f"{name}: {len(arch.instruction_set)} forms linted, "
            f"{len(findings)} finding(s)"
        )
        for finding in findings:
            print(f"  {finding}")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
