#!/usr/bin/env python
"""Schema validation for ``REPRO_BENCH_JSON`` benchmark artifacts.

CI uploads the campaign-scaling and sweep measurements as JSON build
artifacts so the knobs and numbers can be tracked over time. An
artifact nobody can parse is worse than none, so this tool gates the
upload on four invariants:

1. **known sections** — every top-level key is a section this tool
   knows the schema of (an unknown section means a benchmark changed
   its output without updating the schema here);
2. **required keys** — each section carries its required keys, and
   sections with deterministic cell reports carry the per-cell keys;
3. **deterministic-section byte-stability** — the deterministic
   subsections (sweep ``cells``) serialize canonically (``sort_keys``,
   no NaN/Infinity, string keys only), contain none of the
   scheduling-dependent keys (wall clock, concurrency, cache counters)
   whose presence would silently break the byte-reproducibility
   contract of ``docs/campaigns-and-sweeps.md`` — and, decisively, the
   ``sweep_cross_isa`` and ``sweep_parallel_scaling`` benchmarks run
   the *same deterministic grid* under different scheduling (parallel
   cells, worker budgets, cache GC), so when both sections are present
   their ``cells`` lists must be byte-identical: a real end-to-end
   check of the determinism claim on every CI run;
4. **section value gates** — sections that encode a performance
   contract carry it in their values: ``emulation_throughput`` must
   report a compiled-vs-interpretive ratio >= 2.0 and a
   battery-vs-per-input ratio >= 1.5, each with its byte-identical
   traces/reports flags true (the compile-once IR and battery-batching
   guarantees of ``docs/performance.md``), ``prescreen_triage``
   must report a positive screened fraction with both campaign-parity
   flags true and zero gallery gadgets lost (the pre-screen soundness
   contract of ``docs/analysis.md``), and ``corpus_replay`` must
   report a non-empty corpus with zero FAIL/CHANGED/SKIP verdicts and
   one per-entry detection report (the counterexample-corpus
   regression gate of ``docs/corpus.md``), and ``workstealing`` must
   report byte-identical work-stealing-vs-static cell reports, a
   resume run whose report digest matches the uninterrupted run, and —
   when the host had enough cores to make the claim meaningful
   (``speedup_gated``) — a >= 1.3x speedup over static cell placement
   on a heterogeneous grid (the work-stealing scheduler contract of
   ``docs/campaigns-and-sweeps.md``).

Usage::

    python tools/check_bench_json.py artifact.json [...] \
        [--require SECTION ...]

``--require`` additionally fails the check when none of the given
files contains SECTION (CI uses it to assert each artifact actually
recorded its benchmark).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Set

#: required top-level keys per known section
SECTION_SCHEMAS: Dict[str, Set[str]] = {
    "worker_scaling": {
        "arch",
        "cores",
        "test_cases",
        "wall_seconds_1_worker",
        "wall_seconds_4_workers",
        "speedup",
        "found",
    },
    "postprocessor_trace_cache": {
        "emulations_uncached",
        "emulations_cached",
        "cache_hits",
        "hit_rate",
    },
    "sweep_cross_isa": {
        "grid",
        "cells",
        "timing",
        "scheduling",
        "trace_cache",
        "wall_seconds",
        "trace_cache_disk_hits",
        "rerun_disk_hits",
    },
    "sweep_parallel_scaling": {
        "cores",
        "cells",
        "max_parallel_cells",
        "cell_workers",
        "wall_seconds_sequential",
        "wall_seconds_parallel",
        "speedup",
        "trace_cache_max_bytes",
        "disk_bytes_sequential",
        "disk_bytes_parallel",
        "gc_evictions",
    },
    "emulation_throughput": {
        "instructions",
        "programs",
        "inputs",
        "contract",
        "arches",
        "throughput_ratio",
        "battery_ratio",
        "traces_equal",
        "reports_equal",
        "battery_traces_equal",
        "battery_reports_equal",
    },
    "prescreen_triage": {
        "arch",
        "test_cases",
        "screened",
        "screened_fraction",
        "safety_checked",
        "wall_seconds_off",
        "wall_seconds_on",
        "speedup",
        "found_parity",
        "violation_parity",
        "gallery_checked",
        "gallery_lost",
    },
    "corpus_replay": {
        "corpus",
        "entries",
        "passed",
        "changed",
        "failed",
        "skipped",
        "report_digest",
        "detection",
    },
    "workstealing": {
        "arch",
        "cores",
        "cells",
        "shards_per_cell",
        "total_units",
        "steal_workers",
        "wall_seconds_static",
        "wall_seconds_workstealing",
        "speedup",
        "speedup_gated",
        "reports_equal",
        "resume_digest_equal",
    },
    "service_resilience": {
        "arch",
        "kill",
        "recovered_jobs",
        "resumed_digest",
        "baseline_digest",
        "digest_match",
    },
}


def _check_emulation_throughput(payload) -> List[str]:
    """Value gates of the compile-once IR contract: the throughput ratio
    must hold >= 2.0 and the byte-identical-traces/reports flags must be
    true — a regression of either is a build failure, not a data point."""
    errors = []
    ratio = payload.get("throughput_ratio")
    if not isinstance(ratio, (int, float)) or ratio < 2.0:
        errors.append(
            f"emulation_throughput: throughput_ratio must be >= 2.0, "
            f"got {ratio!r}"
        )
    if payload.get("traces_equal") is not True:
        errors.append(
            "emulation_throughput: traces_equal must be true (compiled "
            "and interpretive engines diverged)"
        )
    if payload.get("reports_equal") is not True:
        errors.append(
            "emulation_throughput: reports_equal must be true (the "
            "compile_programs knob changed a fuzzing report)"
        )
    battery_ratio = payload.get("battery_ratio")
    if not isinstance(battery_ratio, (int, float)) or battery_ratio < 1.5:
        errors.append(
            f"emulation_throughput: battery_ratio must be >= 1.5 over "
            f"the per-input compiled path, got {battery_ratio!r}"
        )
    if payload.get("battery_traces_equal") is not True:
        errors.append(
            "emulation_throughput: battery_traces_equal must be true "
            "(the battery engine diverged from the per-input path)"
        )
    if payload.get("battery_reports_equal") is not True:
        errors.append(
            "emulation_throughput: battery_reports_equal must be true "
            "(the battery_eval knob changed a fuzzing report)"
        )
    return errors


def _check_prescreen_triage(payload) -> List[str]:
    """Value gates of the static pre-screen contract: it must screen a
    positive fraction of generated test cases while losing nothing —
    the detecting campaign's outcome is unchanged (parity flags) and no
    handwritten gallery gadget is misclassified INERT."""
    errors = []
    fraction = payload.get("screened_fraction")
    if not isinstance(fraction, (int, float)) or not 0 < fraction < 1:
        errors.append(
            f"prescreen_triage: screened_fraction must be in (0, 1), "
            f"got {fraction!r}"
        )
    for flag in ("found_parity", "violation_parity"):
        if payload.get(flag) is not True:
            errors.append(
                f"prescreen_triage: {flag} must be true (the pre-screen "
                "changed a campaign outcome)"
            )
    if payload.get("gallery_lost") != 0:
        errors.append(
            f"prescreen_triage: gallery_lost must be 0, got "
            f"{payload.get('gallery_lost')!r} (a known gadget was "
            "screened out or no longer violates)"
        )
    return errors


#: required keys of one per-entry detection report (corpus ``detection``
#: lists — the Table 4 trend line: per-counterexample detection time)
DETECTION_KEYS: Set[str] = {
    "name",
    "file",
    "arch",
    "contract",
    "cpu",
    "verdict",
    "digest",
    "inputs",
    "seconds",
}


def _check_corpus_replay(payload) -> List[str]:
    """Value gates of the counterexample-corpus regression contract: a
    non-empty corpus where every record replayed PASS — any FAIL
    (detection-power regression), CHANGED (evidence drift) or SKIP
    (unreadable record) fails the build, not just the trend line."""
    errors = []
    entries = payload.get("entries")
    if not isinstance(entries, int) or entries < 1:
        errors.append(
            f"corpus_replay: entries must be >= 1, got {entries!r} "
            "(an empty corpus gates nothing)"
        )
    for counter in ("failed", "changed", "skipped"):
        value = payload.get(counter)
        if value != 0:
            errors.append(
                f"corpus_replay: {counter} must be 0, got {value!r} "
                "(a counterexample no longer replays cleanly)"
            )
    digest = payload.get("report_digest")
    if not isinstance(digest, str) or not digest:
        errors.append(
            f"corpus_replay: report_digest must be a non-empty "
            f"string, got {digest!r}"
        )
    detection = payload.get("detection")
    if not isinstance(detection, list) or (
        isinstance(entries, int) and len(detection) != entries
    ):
        errors.append(
            "corpus_replay: detection must list one report per entry"
        )
    else:
        for index, report in enumerate(detection):
            if not isinstance(report, dict):
                errors.append(
                    f"corpus_replay: detection[{index}] not an object"
                )
                continue
            missing = DETECTION_KEYS - set(report)
            if missing:
                errors.append(
                    f"corpus_replay: detection[{index}] missing keys "
                    f"{sorted(missing)}"
                )
    return errors


def _check_workstealing(payload) -> List[str]:
    """Value gates of the work-stealing scheduler contract: stealing
    may only move wall clock, never bytes — the merged cell reports
    must equal the static schedule's, a killed-and-resumed run must
    reproduce the uninterrupted digest, and on hosts with enough cores
    the heterogeneous grid must actually go >= 1.3x faster."""
    errors = []
    if payload.get("reports_equal") is not True:
        errors.append(
            "workstealing: reports_equal must be true (work stealing "
            "changed the merged cell reports)"
        )
    if payload.get("resume_digest_equal") is not True:
        errors.append(
            "workstealing: resume_digest_equal must be true (resuming "
            "from the journal changed the report digest)"
        )
    speedup = payload.get("speedup")
    if not isinstance(speedup, (int, float)) or speedup <= 0:
        errors.append(
            f"workstealing: speedup must be a positive number, "
            f"got {speedup!r}"
        )
    elif payload.get("speedup_gated") is True and speedup < 1.3:
        errors.append(
            f"workstealing: speedup must be >= 1.3 over static cell "
            f"placement on a gated host, got {speedup!r}"
        )
    units = payload.get("total_units")
    if not isinstance(units, int) or units < 2:
        errors.append(
            f"workstealing: total_units must be >= 2 (nothing to "
            f"steal otherwise), got {units!r}"
        )
    return errors


def _check_service_resilience(payload) -> List[str]:
    """Value gates of the ``serve --state-dir`` crash-recovery
    contract: the restarted serve must actually have recovered at least
    one job, and the resumed campaign must reproduce the uninterrupted
    run's digest byte for byte — a mismatch is a build failure."""
    errors = []
    recovered = payload.get("recovered_jobs")
    if not isinstance(recovered, int) or recovered < 1:
        errors.append(
            f"service_resilience: recovered_jobs must be >= 1 (the "
            f"restarted serve recovered nothing), got {recovered!r}"
        )
    if payload.get("digest_match") is not True:
        errors.append(
            "service_resilience: digest_match must be true (the "
            "recovered job's report digest diverged from the "
            "uninterrupted baseline)"
        )
    resumed = payload.get("resumed_digest")
    baseline = payload.get("baseline_digest")
    if not resumed or resumed != baseline:
        errors.append(
            f"service_resilience: resumed_digest must equal "
            f"baseline_digest, got {resumed!r} vs {baseline!r}"
        )
    return errors


#: per-section value gates, run after the key-presence checks
SECTION_VALUE_CHECKS = {
    "emulation_throughput": _check_emulation_throughput,
    "prescreen_triage": _check_prescreen_triage,
    "corpus_replay": _check_corpus_replay,
    "workstealing": _check_workstealing,
    "service_resilience": _check_service_resilience,
}

#: required keys of one deterministic cell report (sweep ``cells``)
CELL_KEYS: Set[str] = {
    "arch",
    "contract",
    "cpu",
    "seed",
    "shards",
    "mode",
    "test_cases",
    "inputs_tested",
    "prescreened_inert",
    "patterns_covered",
    "found",
    "winning_shard",
    "violation",
}

#: keys that are scheduling-dependent and must never leak into a
#: deterministic section (they live under ``timing``/``scheduling``)
FORBIDDEN_IN_DETERMINISTIC: Set[str] = {
    "wall_seconds",
    "aggregate_seconds",
    "duration_seconds",
    "seconds_until_found",
    "observed_concurrency",
    "trace_cache_hits",
    "trace_cache_disk_hits",
    "trace_cache_gc_evictions",
    "trace_cache_gc_bytes",
    "cancelled_shards",
}


def canonical(payload) -> str:
    """Canonical serialization: sorted keys, no NaN/Infinity."""
    return json.dumps(payload, sort_keys=True, allow_nan=False)


def forbidden_keys_in(payload, path: str) -> List[str]:
    """Scheduling-dependent keys found anywhere inside ``payload``."""
    found = []
    if isinstance(payload, dict):
        for key, value in payload.items():
            where = f"{path}.{key}"
            if key in FORBIDDEN_IN_DETERMINISTIC:
                found.append(where)
            found.extend(forbidden_keys_in(value, where))
    elif isinstance(payload, list):
        for index, value in enumerate(payload):
            found.extend(forbidden_keys_in(value, f"{path}[{index}]"))
    return found


def check_deterministic_cells(cells, where: str) -> List[str]:
    """Invariant 3 on one deterministic ``cells`` list."""
    errors = []
    if not isinstance(cells, list) or not cells:
        return [f"{where}: expected a non-empty list of cell reports"]
    for index, cell in enumerate(cells):
        if not isinstance(cell, dict):
            errors.append(f"{where}[{index}]: not an object")
            continue
        missing = CELL_KEYS - set(cell)
        if missing:
            errors.append(
                f"{where}[{index}]: missing keys {sorted(missing)}"
            )
    errors.extend(forbidden_keys_in(cells, where))
    try:
        canonical(cells)
    except ValueError as error:  # NaN/Infinity or non-serializable
        errors.append(f"{where}: not canonically serializable ({error})")
    return errors


#: section pairs that fuzz the identical deterministic grid under
#: different scheduling — their cells must be byte-identical
EQUAL_CELL_SECTIONS = [("sweep_cross_isa", "sweep_parallel_scaling")]


def check_cross_section_stability(
    cells_by_section: Dict[str, List],
) -> List[str]:
    """Byte-stability across sections: same grid, same bytes."""
    errors = []
    for left, right in EQUAL_CELL_SECTIONS:
        if left not in cells_by_section or right not in cells_by_section:
            continue
        try:
            same = canonical(cells_by_section[left]) == canonical(
                cells_by_section[right]
            )
        except ValueError:
            continue  # already reported per section
        if not same:
            errors.append(
                f"{left}.cells != {right}.cells: the same deterministic "
                "grid produced different reports under different "
                "scheduling"
            )
    return errors


def check_file(path: str) -> List[str]:
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as error:
        return [f"unreadable JSON ({error})"]
    if not isinstance(data, dict):
        return ["top level must be an object of benchmark sections"]
    if not data:
        return ["no benchmark sections recorded"]
    errors: List[str] = []
    for section, payload in sorted(data.items()):
        schema = SECTION_SCHEMAS.get(section)
        if schema is None:
            errors.append(
                f"unknown section {section!r} "
                f"(teach tools/check_bench_json.py its schema)"
            )
            continue
        if not isinstance(payload, dict):
            errors.append(f"{section}: not an object")
            continue
        missing = schema - set(payload)
        if missing:
            errors.append(f"{section}: missing keys {sorted(missing)}")
        value_check = SECTION_VALUE_CHECKS.get(section)
        if value_check is not None:
            errors.extend(value_check(payload))
        if "cells" in schema and "cells" in payload:
            errors.extend(
                check_deterministic_cells(
                    payload["cells"], f"{section}.cells"
                )
            )
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="validate REPRO_BENCH_JSON benchmark artifacts"
    )
    parser.add_argument("files", nargs="+", help="artifact JSON files")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="SECTION",
        help="fail unless at least one file contains SECTION",
    )
    args = parser.parse_args(argv)

    failed = False
    seen_sections: Set[str] = set()
    cells_by_section: Dict[str, List] = {}
    for path in args.files:
        errors = check_file(path)
        if not errors:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
            seen_sections.update(data)
            for section, payload in data.items():
                if isinstance(payload, dict) and "cells" in payload:
                    cells_by_section[section] = payload["cells"]
        status = "ok" if not errors else f"{len(errors)} problem(s)"
        print(f"{path}: {status}")
        for error in errors:
            print(f"  - {error}")
        failed = failed or bool(errors)
    for error in check_cross_section_stability(cells_by_section):
        print(f"cross-section: {error}")
        failed = True
    for section in args.require:
        if section not in seen_sections:
            print(f"required section {section!r} not found in any file")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
