#!/usr/bin/env python
"""Documentation consistency checks (the CI docs job).

Four invariants, each also asserted by ``tests/test_docs.py``:

1. every intra-repo markdown link in ``docs/*.md`` (and the root
   markdown files) resolves to an existing file;
2. every page under ``docs/`` is reachable from ``docs/index.md`` by
   following intra-repo links;
3. the CLI and ``docs/getting-started.md`` agree on the subcommand
   list: every registered ``python -m repro`` subcommand is documented
   there, every ``python -m repro <sub>`` the page shows actually
   exists, and ``python -m repro <sub> --help`` runs cleanly for each
   registered subcommand;
4. every ``--flag`` mentioned anywhere under ``docs/`` is a registered
   option of some subcommand (so renamed or removed flags cannot
   linger in the prose);
5. the five fuzzing subcommands (fuzz/campaign/sweep/minimize/replay)
   expose the shared engine flags exclusively through
   ``repro.cli.add_engine_options``/``add_engine_knob_options``: each
   subcommand carries the full flag set its variant owes, and every
   unambiguous engine-flag literal is declared exactly once in
   ``cli.py`` (no drift through copy-pasted ``add_argument`` calls).

Run from the repository root with ``src`` importable::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from typing import Dict, List, Set, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOCS_DIR = os.path.join(REPO_ROOT, "docs")

#: [text](target) — targets starting with a scheme or "#" are skipped
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: the CLI invocations getting-started documents
_CLI_COMMAND = re.compile(r"python -m repro(?:\.cli)?\s+([a-z][a-z-]*)")
#: long CLI options mentioned in docs prose/examples
_CLI_FLAG = re.compile(r"(?<![-\w])--([a-z][a-z-]+)")
#: flags of external tools the docs legitimately mention
_EXTERNAL_FLAGS = {"benchmark-only"}  # pytest-benchmark
#: subcommands that take the scalar engine-flag set
_SCALAR_ENGINE_SUBCOMMANDS = ("fuzz", "campaign", "minimize")
#: engine flags whose ``"--flag"`` literal may appear only once in
#: cli.py — inside add_engine_options/add_engine_knob_options.
#: (--arch/--contract/--cpu/--inputs/--entropy/--seed are excluded:
#: trace/reproduce/replay legitimately re-declare them.)
_DECLARED_ONCE_FLAGS = (
    "--subsets", "--mode", "--num-test-cases", "--timeout",
    "--analyzer", "--pages", "--prescreen", "--prescreen-safety-rate",
    "--no-battery-eval", "--no-masked-fusion", "--no-dead-flags",
    "--interpretive", "--cache", "--cache-entries", "--cache-dir",
    "--cache-max-bytes", "--cache-compress", "--corpus-dir",
)


def markdown_files() -> List[str]:
    """The root markdown files plus everything under docs/."""
    paths = [
        os.path.join(REPO_ROOT, name)
        for name in sorted(os.listdir(REPO_ROOT))
        if name.endswith(".md")
    ]
    for base, _dirs, files in os.walk(DOCS_DIR):
        paths.extend(
            os.path.join(base, name)
            for name in sorted(files)
            if name.endswith(".md")
        )
    return paths


def intra_repo_links(path: str) -> List[Tuple[str, str]]:
    """(raw target, resolved absolute path) of each intra-repo link."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    links = []
    for target in _LINK.findall(text):
        if "://" in target or target.startswith(("#", "mailto:")):
            continue
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(path), target.split("#", 1)[0])
        )
        links.append((target, resolved))
    return links


def check_links() -> List[str]:
    """Invariant 1: intra-repo markdown links resolve."""
    errors = []
    for path in markdown_files():
        for target, resolved in intra_repo_links(path):
            if not os.path.exists(resolved):
                errors.append(
                    f"{os.path.relpath(path, REPO_ROOT)}: "
                    f"broken link ({target})"
                )
    return errors


def check_docs_reachable() -> List[str]:
    """Invariant 2: every docs page is reachable from docs/index.md."""
    index = os.path.join(DOCS_DIR, "index.md")
    if not os.path.exists(index):
        return ["docs/index.md is missing"]
    reachable: Set[str] = set()
    frontier = [index]
    while frontier:
        page = frontier.pop()
        if page in reachable:
            continue
        reachable.add(page)
        frontier.extend(
            resolved
            for _target, resolved in intra_repo_links(page)
            if resolved.startswith(DOCS_DIR) and resolved.endswith(".md")
            and os.path.exists(resolved)
        )
    return [
        f"docs/{os.path.relpath(path, DOCS_DIR)}: "
        "not reachable from docs/index.md"
        for path in markdown_files()
        if path.startswith(DOCS_DIR) and path not in reachable
    ]


def registered_subcommands() -> Set[str]:
    from repro.cli import build_parser

    parser = build_parser()
    for action in parser._subparsers._group_actions:
        return set(action.choices)
    return set()


def documented_subcommands() -> Set[str]:
    with open(
        os.path.join(DOCS_DIR, "getting-started.md"), encoding="utf-8"
    ) as handle:
        return set(_CLI_COMMAND.findall(handle.read()))


def check_cli_sync() -> List[str]:
    """Invariant 3: the CLI and getting-started agree on subcommands."""
    errors = []
    try:
        registered = registered_subcommands()
    except Exception as error:  # pragma: no cover - import failure
        return [f"could not load the CLI parser: {error!r}"]
    documented = documented_subcommands()
    for missing in sorted(registered - documented):
        errors.append(
            f"docs/getting-started.md: subcommand {missing!r} is not "
            "documented"
        )
    for phantom in sorted(documented - registered):
        errors.append(
            f"docs/getting-started.md: documents unknown subcommand "
            f"{phantom!r}"
        )
    env = {**os.environ,
           "PYTHONPATH": os.path.join(REPO_ROOT, "src")
           + os.pathsep + os.environ.get("PYTHONPATH", "")}
    for subcommand in sorted(registered):
        result = subprocess.run(
            [sys.executable, "-m", "repro", subcommand, "--help"],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        if result.returncode != 0:
            errors.append(
                f"`python -m repro {subcommand} --help` failed: "
                f"{result.stderr.strip()}"
            )
    return errors


def registered_flags() -> Set[str]:
    """Every long option of the parser and all its subcommands."""
    from repro.cli import build_parser

    parser = build_parser()
    flags: Set[str] = set()

    def collect(one_parser) -> None:
        for action in one_parser._actions:
            flags.update(
                option[2:]
                for option in action.option_strings
                if option.startswith("--")
            )
            if hasattr(action, "choices") and isinstance(
                action.choices, dict
            ):
                for sub in action.choices.values():
                    collect(sub)

    collect(parser)
    return flags


def check_cli_flags() -> List[str]:
    """Invariant 4: every --flag under docs/ exists on the CLI."""
    try:
        known = registered_flags()
    except Exception as error:  # pragma: no cover - import failure
        return [f"could not load the CLI parser: {error!r}"]
    errors = []
    for path in markdown_files():
        if not path.startswith(DOCS_DIR):
            continue
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        for flag in sorted(set(_CLI_FLAG.findall(text)) - _EXTERNAL_FLAGS):
            if flag not in known:
                errors.append(
                    f"docs/{os.path.relpath(path, DOCS_DIR)}: mentions "
                    f"--{flag}, which no subcommand registers"
                )
    return errors


def _long_flags(parser) -> Set[str]:
    """The long option strings one parser registers (minus --help)."""
    flags: Set[str] = set()
    for action in parser._actions:
        flags.update(
            option for option in action.option_strings
            if option.startswith("--")
        )
    flags.discard("--help")
    return flags


def check_engine_flag_sync() -> List[str]:
    """Invariant 5: engine flags live only in add_engine_options."""
    import argparse

    try:
        from repro.cli import (
            add_engine_knob_options,
            add_engine_options,
            build_parser,
        )
    except Exception as error:  # pragma: no cover - import failure
        return [f"could not load the CLI parser: {error!r}"]

    reference = argparse.ArgumentParser(add_help=False)
    add_engine_options(reference)
    engine_flags = _long_flags(reference)
    knob_reference = argparse.ArgumentParser(add_help=False)
    add_engine_knob_options(knob_reference)
    knob_flags = _long_flags(knob_reference)

    subparsers: Dict[str, argparse.ArgumentParser] = {}
    for action in build_parser()._subparsers._group_actions:
        subparsers = dict(action.choices)

    errors = []
    # sweep's axis variant registers the same long names, so one flag
    # set covers all four full-engine subcommands
    for name in _SCALAR_ENGINE_SUBCOMMANDS + ("sweep",):
        if name not in subparsers:
            errors.append(f"cli.py: subcommand {name!r} is missing")
            continue
        missing = engine_flags - _long_flags(subparsers[name])
        if missing:
            errors.append(
                f"cli.py: {name} lacks engine flag(s) "
                f"{', '.join(sorted(missing))}"
            )
    if "replay" in subparsers:
        missing = knob_flags - _long_flags(subparsers["replay"])
        if missing:
            errors.append(
                "cli.py: replay lacks engine knob(s) "
                f"{', '.join(sorted(missing))}"
            )
    else:
        errors.append("cli.py: subcommand 'replay' is missing")

    import repro.cli

    with open(repro.cli.__file__, encoding="utf-8") as handle:
        source = handle.read()
    literals = re.findall(r'"(--[a-z][a-z-]+)"', source)
    for flag in _DECLARED_ONCE_FLAGS:
        count = literals.count(flag)
        if count != 1:
            errors.append(
                f"cli.py: {flag} appears {count} times; it must be "
                "declared exactly once, inside add_engine_options"
            )
    return errors


CHECKS: Dict[str, object] = {
    "markdown links": check_links,
    "docs reachability": check_docs_reachable,
    "CLI/docs sync": check_cli_sync,
    "CLI flag sync": check_cli_flags,
    "engine flag sync": check_engine_flag_sync,
}


def main() -> int:
    failed = False
    for name, check in CHECKS.items():
        errors = check()
        status = "ok" if not errors else f"{len(errors)} problem(s)"
        print(f"{name}: {status}")
        for error in errors:
            print(f"  - {error}")
        failed = failed or bool(errors)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
