"""Figure 6 / §6.6: contract sensitivity — CT-SEQ vs ARCH-SEQ.

STT-style hardware defences prevent leaking *speculatively loaded* data
but deliberately allow leaks of data that was already loaded
architecturally. The paper shows ARCH-SEQ captures exactly this:

- Figure 6a (non-speculative data leaked transiently): violates CT-SEQ
  but NOT ARCH-SEQ;
- Figure 6b (classic two-load V1): violates both.
"""

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import TestingPipeline
from repro.core.input_gen import InputGenerator
from repro.gallery import FIG6A_NONSPECULATIVE_DATA, FIG6B_SPECULATIVE_DATA

from conftest import print_table


def check(entry, contract_name, seed=42, count=64):
    pipeline = TestingPipeline(
        FuzzerConfig(contract_name=contract_name, cpu_preset="skylake", seed=11)
    )
    generator = InputGenerator(seed=seed, layout=pipeline.layout)
    inputs = generator.generate(count)
    return (
        pipeline.check_violation(entry.program(), inputs, confirm=True)
        is not None
    )


def test_fig6_contract_sensitivity(benchmark):
    results = {}

    def run_all():
        results["6a CT-SEQ"] = check(FIG6A_NONSPECULATIVE_DATA, "CT-SEQ")
        results["6a ARCH-SEQ"] = check(FIG6A_NONSPECULATIVE_DATA, "ARCH-SEQ")
        results["6b CT-SEQ"] = check(FIG6B_SPECULATIVE_DATA, "CT-SEQ")
        results["6b ARCH-SEQ"] = check(FIG6B_SPECULATIVE_DATA, "ARCH-SEQ")
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        ("Fig 6a (non-spec data)", "violated", "ok" if results["6a CT-SEQ"] else "x",
         "clean", "x" if not results["6a ARCH-SEQ"] else "ok"),
        ("Fig 6b (spec data)", "violated", "ok" if results["6b CT-SEQ"] else "x",
         "violated", "ok" if results["6b ARCH-SEQ"] else "x"),
    ]
    print_table(
        "Figure 6: contract sensitivity",
        ("gadget", "CT-SEQ paper", "CT-SEQ measured", "ARCH-SEQ paper",
         "ARCH-SEQ measured"),
        rows,
    )

    assert results["6a CT-SEQ"], "6a must violate CT-SEQ"
    assert not results["6a ARCH-SEQ"], "6a must satisfy ARCH-SEQ (STT ok)"
    assert results["6b CT-SEQ"], "6b must violate CT-SEQ"
    assert results["6b ARCH-SEQ"], "6b must violate ARCH-SEQ"
