"""Table 5: number of random inputs to surface each known vulnerability
on handwritten test cases.

For each gadget (V1, V1.1, V2, V4, V5-ret, MDS-LFB, MDS-SB), the bench
searches for the minimal number of random inputs that yields a confirmed
violation, averaged over several input-generation seeds — the paper's
experiment with 100 seeds, scaled down for benchmark budgets.

Paper values: V1=6, V1.1=6, V2=4, V4=62, V5-ret=2, MDS-LFB=2, MDS-SB=12.
The reproduction target is the shape: all gadgets fall within tens of
inputs (sub-second detection) and V4 needs the most.
"""

import statistics

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import TestingPipeline
from repro.core.input_gen import InputGenerator
from repro.gallery import TABLE5_GADGETS, gadget

from conftest import print_table

PAPER_VALUES = {
    "spectre-v1": 6,
    "spectre-v1.1": 6,
    "spectre-v2": 4,
    "spectre-v4": 62,
    "spectre-v5-ret": 2,
    "mds-lfb": 2,
    "mds-sb": 12,
}

SEEDS = (42, 7, 11, 23, 31)
COUNTS = (2, 4, 6, 10, 16, 24, 36, 54, 81, 122)


def inputs_to_violation(entry, seed):
    config = FuzzerConfig(
        contract_name=entry.contract,
        cpu_preset=entry.cpu_preset,
        executor_mode=entry.executor_mode,
        analyzer_mode=entry.analyzer_mode,
        seed=11,
    )
    pipeline = TestingPipeline(config)
    program = entry.program()
    for count in COUNTS:
        generator = InputGenerator(
            seed=seed, entropy_bits=entry.entropy_bits, layout=pipeline.layout
        )
        inputs = generator.generate(count)
        if pipeline.check_violation(program, inputs, confirm=True):
            return count
    return None


def test_table5_handwritten_gadgets(benchmark):
    results = {}

    def run_all():
        for name in TABLE5_GADGETS:
            entry = gadget(name)
            counts = [inputs_to_violation(entry, seed) for seed in SEEDS]
            results[name] = [c for c in counts if c is not None]
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name in TABLE5_GADGETS:
        counts = results[name]
        mean = statistics.mean(counts) if counts else float("nan")
        rows.append(
            (
                name,
                PAPER_VALUES[name],
                f"{mean:.0f}" if counts else "not found",
                f"{len(counts)}/{len(SEEDS)}",
            )
        )
    print_table(
        "Table 5: inputs to violation (handwritten gadgets)",
        ("gadget", "# inputs (paper)", "# inputs (measured mean)", "found/seeds"),
        rows,
    )

    for name in TABLE5_GADGETS:
        assert results[name], f"{name} was never detected"
        # every gadget surfaces within ~a hundred random inputs, i.e.
        # far below one second of testing — the paper's headline claim
        assert min(results[name]) <= 122
