"""Parallel sweep-cell scheduling: wall-clock scaling at equal reports.

The cross-ISA grid is the repository's main workload (Table 3/4 shape),
and its cells are independent campaigns with coordinate-derived seeds —
so scheduling them onto worker processes must change wall clock only.
This benchmark runs the same 2-ISA grid as
``bench_sweep_cross_isa.py`` (``{x86_64, aarch64} x {CT-SEQ, CT-COND}
x {skylake-v4-patched, coffee-lake}``, identical cell seeds and shard
batteries) sequentially and with 4 cells in flight, and pins three
claims:

1. **Equal reports** — the deterministic per-cell reports of the
   ``max_parallel_cells=4`` sweep are byte-identical to the sequential
   run's, including with the size-bounded trace-cache GC active
   (eviction changes how often the model is re-emulated, never what it
   produces), and the paper-shaped outcomes hold (CT-SEQ violated on
   both ISAs, CT-COND holds).
2. **Wall-clock speedup** — with 4 cells in flight the sweep finishes
   in >=1.5x less wall time. The assertion is gated on the machine
   actually having 4+ cores (oversubscribed or small CI machines can
   dip under any threshold and would flake);
   ``REPRO_BENCH_STRICT_SPEEDUP=1`` forces it. The measurement is
   always printed and recorded.
3. **Cache bound enforced** — each run writes through a
   ``trace_cache_max_bytes``-bounded persistent cache, and the cache
   directory never exceeds the bound: concurrent cell writers trigger
   the LRU GC cooperatively, and the runner's finalizing pass trims
   whatever the last writers left.
"""

import os
from dataclasses import replace

from repro.core.sweep import SweepRunner, cell_worker_budget
from repro.core.trace_cache import PersistentTraceCache

from bench_sweep_cross_isa import cross_isa_spec
from conftest import emit_json, print_table

#: small enough that the grid's battery overflows it (forcing real GC
#: evictions), large enough to hold a working set
CACHE_MAX_BYTES = 64 * 1024


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def scaling_spec(scale):
    """The cross-ISA grid, with inline cells (workers=1) so the
    sequential baseline is strictly serial, the usual 2-shard batteries,
    and the GC bound armed."""
    spec = cross_isa_spec(scale, shards=2)
    spec.workers = 1
    spec.base_config = replace(
        spec.base_config, trace_cache_max_bytes=CACHE_MAX_BYTES
    )
    return spec


def test_sweep_parallel_scaling(scale, tmp_path):
    spec = scaling_spec(scale)
    cores = _available_cores()

    sequential = SweepRunner(spec, cache_dir=str(tmp_path / "seq")).run()
    parallel = SweepRunner(
        spec, cache_dir=str(tmp_path / "par"), max_parallel_cells=4
    ).run()

    speedup = sequential.wall_seconds / parallel.wall_seconds
    print_table(
        "Parallel sweep-cell scheduling (2-ISA grid, 4 cells in flight)",
        ["parallel cells", "wall s", "violations", "gc evictions",
         "disk bytes"],
        [
            [1, f"{sequential.wall_seconds:.2f}",
             sequential.violations_found,
             sequential.trace_cache_gc_evictions,
             sequential.trace_cache_disk_bytes],
            [4, f"{parallel.wall_seconds:.2f}",
             parallel.violations_found,
             parallel.trace_cache_gc_evictions,
             parallel.trace_cache_disk_bytes],
        ],
    )
    print(f"speedup: {speedup:.2f}x on {cores} core(s)")

    emit_json(
        "sweep_parallel_scaling",
        {
            "cores": cores,
            "cells": [r.deterministic_report() for r in parallel.results],
            "max_parallel_cells": parallel.max_parallel_cells,
            "cell_workers": parallel.cell_workers,
            "wall_seconds_sequential": sequential.wall_seconds,
            "wall_seconds_parallel": parallel.wall_seconds,
            "speedup": speedup,
            "trace_cache_max_bytes": CACHE_MAX_BYTES,
            "disk_bytes_sequential": sequential.trace_cache_disk_bytes,
            "disk_bytes_parallel": parallel.trace_cache_disk_bytes,
            "gc_evictions": parallel.trace_cache_gc_evictions,
        },
    )

    # 1. equal reports: scheduling must not change what was found
    assert parallel.cell_reports_json() == sequential.cell_reports_json()
    # ... and the paper-shaped outcomes hold on the parallel run too
    for result in parallel.results:
        if result.cell.contract == "CT-SEQ":
            assert result.found, f"{result.cell.label}: expected a violation"
        else:
            assert not result.found, (
                f"{result.cell.label}: CT-COND should hold"
            )

    # 3. the cache bound held: the battery overflowed it (evictions
    # happened) and both directories ended within the bound
    for report, directory in ((sequential, "seq"), (parallel, "par")):
        assert report.trace_cache_gc_evictions > 0, (
            "the battery should overflow CACHE_MAX_BYTES and force GC"
        )
        assert report.trace_cache_disk_bytes <= CACHE_MAX_BYTES
        usage = PersistentTraceCache(
            str(tmp_path / directory)
        ).disk_usage_bytes()
        assert usage <= CACHE_MAX_BYTES, (
            f"{directory}: {usage} bytes exceeds the {CACHE_MAX_BYTES} bound"
        )

    # worker budgeting: 4 concurrent cells on a workers=1 spec keep one
    # shard worker each — the host never runs more than 4 processes
    assert parallel.cell_workers == cell_worker_budget(spec.workers, 4) == 1

    # 2. wall-clock scaling (needs real hardware parallelism; see
    # module docstring)
    if cores >= 4 or os.environ.get("REPRO_BENCH_STRICT_SPEEDUP") == "1":
        assert speedup >= 1.5, (
            f"4 parallel cells should give >=1.5x on {cores} cores, "
            f"got {speedup:.2f}x"
        )
