"""Figure 3: a randomly generated test case.

Regenerates a sample with the paper's configuration (random DAG of basic
blocks, conditional/direct terminators, sandbox masking with R14 as the
base) and checks the structural properties visible in the figure:
AND-masking before every memory access, forward-only control flow, and
a LOCK-prefixed RMW appearing within a modest sample.
"""

from repro.isa.assembler import render_program
from repro.isa.instruction_set import instruction_subset
from repro.core.config import GeneratorConfig
from repro.core.generator import TestCaseGenerator
from repro.emulator.state import SandboxLayout


def test_fig3_generated_testcase(benchmark):
    layout = SandboxLayout()
    generator = TestCaseGenerator(
        instruction_subset(["AR", "MEM", "CB"]),
        GeneratorConfig(instructions_per_test=8, basic_blocks=3, memory_accesses=3),
        layout,
        seed=2022,
    )

    programs = benchmark(lambda: [generator.generate() for _ in range(50)])

    sample = programs[0]
    print("\n=== Figure 3: randomly generated test case ===")
    print(render_program(sample, numbered=True))

    for program in programs:
        program.validate_dag()

    # masking discipline: every indexed access is preceded by an AND mask
    masked = 0
    for program in programs:
        for block in program.blocks:
            for position, instruction in enumerate(block.body):
                for operand, _, _ in instruction.memory_accesses():
                    if operand.index is not None:
                        masked += 1
                        assert any(
                            str(prior).startswith(f"AND {operand.index},")
                            for prior in block.body[:position]
                        )
    assert masked > 0

    # Figure 3 shows a LOCK-prefixed RMW: they appear in a 50-case sample
    assert any(
        instruction.lock
        for program in programs
        for instruction in program.all_instructions()
    )
    # conditional + unconditional terminators both occur
    mnemonics = {
        instruction.mnemonic
        for program in programs
        for block in program.blocks
        for instruction in block.terminators
    }
    assert "JMP" in mnemonics
    assert any(m.startswith("J") and m != "JMP" for m in mnemonics)
