"""Appendix A.6: the novel store-bypass variant found during artifact
evaluation.

Two loads of the same address disagree transiently: the fast one bypasses
a pending slow-address store (stale value), the slow one is issued after
the store's address resolves and receives forwarding (new value). Their
difference indexes a leaking load — a violation of CT-BPAS, which models
*all* loads as bypassing.

The bench demonstrates the mechanism deterministically with crafted
inputs, then confirms the end-to-end detection with the pipeline (using
the known-good input seed; the paper's instance was itself found by
accident by a reviewer).
"""

from repro.emulator.state import InputData, SandboxLayout
from repro.contracts import get_contract
from repro.core.config import FuzzerConfig
from repro.core.fuzzer import TestingPipeline
from repro.core.input_gen import InputGenerator
from repro.gallery import A6_STORE_BYPASS_VARIANT
from repro.uarch.config import skylake
from repro.uarch.cpu import SpeculativeCPU


def crafted_input(layout, old, new):
    memory = bytearray(layout.size)
    memory[512:520] = (64).to_bytes(8, "little")  # slow pointer -> offset 64
    memory[64:72] = old.to_bytes(8, "little")  # stale value
    return InputData(registers={"RDX": new}, memory=bytes(memory))


def run_once(layout, old, new):
    cpu = SpeculativeCPU(skylake(), layout)
    cpu.cache.prime()
    info = cpu.run(
        A6_STORE_BYPASS_VARIANT.program().linearize(),
        crafted_input(layout, old, new),
    )
    return sorted(cpu.cache.probe()), info


def test_a6_mechanism_crafted(benchmark):
    layout = SandboxLayout()

    def run_pair():
        return run_once(layout, 0x80, 0x300), run_once(layout, 0x140, 0x300)

    (trace_a, info_a), (trace_b, info_b) = benchmark(run_pair)

    print("\n=== A.6: bypass+forwarding disagreement ===")
    print(f"old=0x080: trace={trace_a} squashes={info_a.squashes}")
    print(f"old=0x140: trace={trace_b} squashes={info_b.squashes}")

    # exactly one bypass each; the transient difference (old - new) & mask
    # indexes different sets for the two inputs
    assert info_a.squashes == ["bypass"]
    assert info_b.squashes == ["bypass"]
    assert trace_a != trace_b

    # the CT-BPAS contract traces are equal: a genuine violation
    contract = get_contract("CT-BPAS")
    program = A6_STORE_BYPASS_VARIANT.program()
    ct_a = contract.collect_trace(program, crafted_input(layout, 0x80, 0x300), layout)
    ct_b = contract.collect_trace(program, crafted_input(layout, 0x140, 0x300), layout)
    assert ct_a == ct_b


def test_a6_detected_by_pipeline(benchmark):
    entry = A6_STORE_BYPASS_VARIANT
    pipeline = TestingPipeline(
        FuzzerConfig(contract_name=entry.contract, cpu_preset=entry.cpu_preset,
                     seed=11)
    )
    inputs = InputGenerator(seed=7, layout=pipeline.layout).generate(64)

    candidate = benchmark.pedantic(
        lambda: pipeline.check_violation(entry.program(), inputs, confirm=True),
        rounds=1, iterations=1,
    )
    assert candidate is not None
    print(f"\nA.6 pipeline detection:\n{candidate}")
