"""Table 4: detection time until the first violation.

Measures the fuzzing time to the first confirmed violation for each
vulnerability family, repeated over several seeds, reporting mean and
coefficient of variation as the paper does. Absolute times are simulator
times; the reproduction target is the *ordering*: V1-type violations are
found quickly, V4-type take roughly an order of magnitude longer (the
bypass needs adjacent aliasing accesses), MDS-type sit in between.

The paper's second and third rows (detection with a permitted leakage
type also present) are reproduced by fuzzing Target 6-style mixed
configurations against CT-BPAS/CT-COND.
"""

import statistics

from repro.core.config import FuzzerConfig, GeneratorConfig
from repro.core.fuzzer import fuzz

from conftest import print_table

ROWS = [
    # (label, repetitions, config kwargs)
    ("V1-type  (Target 5)", 5, dict(
        instruction_subsets=("AR", "MEM", "CB"), contract_name="CT-SEQ",
        cpu_preset="skylake-v4-patched")),
    ("V4-type  (Target 2)", 2, dict(
        instruction_subsets=("AR", "MEM"), contract_name="CT-SEQ",
        cpu_preset="skylake")),
    ("MDS-type (Target 7)", 2, dict(
        instruction_subsets=("AR", "MEM"), contract_name="CT-SEQ",
        cpu_preset="skylake-v4-patched", executor_mode="P+P+A",
        generator=GeneratorConfig(sandbox_pages=2))),
    # permitted-leakage row: V1 present but permitted, V4 hunted
    ("V4-type, V1 permitted (CT-COND)", 2, dict(
        instruction_subsets=("AR", "MEM", "CB"), contract_name="CT-COND",
        cpu_preset="skylake")),
]


def measure(kwargs, repetitions, scale):
    times = []
    for seed in range(repetitions):
        report = fuzz(
            FuzzerConfig(
                num_test_cases=400 * scale,
                inputs_per_test_case=30,
                seed=seed * 13 + 3,
                **kwargs,
            )
        )
        if report.found:
            times.append(report.duration_seconds)
    return times


def test_table4_detection_time(benchmark, scale):
    measured = {}

    def run_all():
        for label, repetitions, kwargs in ROWS:
            measured[label] = measure(kwargs, repetitions, scale)
        return measured

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for label, repetitions, _ in ROWS:
        times = measured[label]
        if times:
            mean = statistics.mean(times)
            cv = (
                statistics.pstdev(times) / mean if len(times) > 1 and mean else 0.0
            )
            rows.append((label, f"{mean:.1f}s", f"{cv:.2f}", f"{len(times)}/{repetitions}"))
        else:
            rows.append((label, "not found", "-", f"0/{repetitions}"))
    print_table(
        "Table 4: detection time (simulator)",
        ("violation type", "mean time", "CV", "found/runs"),
        rows,
    )

    v1_times = measured["V1-type  (Target 5)"]
    v4_times = measured["V4-type  (Target 2)"]
    mds_times = measured["MDS-type (Target 7)"]
    assert v1_times, "V1 must be detected in every run"
    assert v4_times, "V4 must be detected"
    assert mds_times, "MDS must be detected"
    # the paper's ordering: V4 detection is the slowest by a wide margin
    assert statistics.mean(v4_times) > statistics.mean(v1_times)
