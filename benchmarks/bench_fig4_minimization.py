"""Figure 4: the minimized test case with LFENCE boundaries.

Detects a V1 violation on a padded gadget, then runs the three-stage
postprocessor (§5.7): input-sequence minimization, instruction removal,
LFENCE insertion. The output mirrors Figure 4 — a short test case whose
fence-free region localizes the leak.
"""

from repro.isa.assembler import parse_program
from repro.core.config import FuzzerConfig
from repro.core.fuzzer import TestingPipeline
from repro.core.input_gen import InputGenerator
from repro.core.postprocessor import Postprocessor

PADDED_V1 = """
    MOV RDX, 7
    MOV RSI, RDX
    JNS .end
    AND RBX, 0b111111000000
    MOV RCX, qword ptr [R14 + RBX]
    XOR RDX, RDX
.end: NOP
"""


def test_fig4_minimization(benchmark):
    pipeline = TestingPipeline(
        FuzzerConfig(contract_name="CT-SEQ", cpu_preset="skylake-v4-patched", seed=0)
    )
    program = parse_program(PADDED_V1)
    inputs = InputGenerator(seed=42, layout=pipeline.layout).generate(40)
    assert pipeline.check_violation(program, inputs) is not None

    postprocessor = Postprocessor(pipeline)
    result = benchmark.pedantic(
        lambda: postprocessor.minimize(program, list(inputs)),
        rounds=1, iterations=1,
    )

    print("\n=== Figure 4: minimized test case ===")
    print(result.text)
    print(f"\ninstructions: {result.original_instruction_count} -> "
          f"{result.instruction_count}")
    print(f"inputs: {result.original_input_count} -> {len(result.inputs)}")
    print(f"fences inserted: {result.fences_inserted}")
    print(f"leak region: {result.leak_region()}")

    # the minimized case still violates
    assert pipeline.check_violation(result.program, result.inputs) is not None
    # minimization achieved something on every axis
    assert result.instruction_count <= result.original_instruction_count
    assert len(result.inputs) <= result.original_input_count
    # the leak region contains the speculative load
    assert any("MOV RCX" in line for line in result.leak_region())
