"""§6.4: validating the "stores do not modify the cache until they
retire" assumption of STT/KLEESpectre.

A CT-COND variant whose observation clause hides speculative stores
(CT-NONSPEC-STORE-COND) encodes the assumption. The paper found it holds
on Skylake but is violated on Coffee Lake — speculative stores do evict
cache lines there. Both directions are reproduced.
"""

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import TestingPipeline
from repro.core.input_gen import InputGenerator
from repro.gallery import SPECULATIVE_STORE_EVICTION

from conftest import print_table


def check(cpu_preset, seed=42, count=64):
    entry = SPECULATIVE_STORE_EVICTION
    pipeline = TestingPipeline(
        FuzzerConfig(contract_name=entry.contract, cpu_preset=cpu_preset, seed=11)
    )
    inputs = InputGenerator(seed=seed, layout=pipeline.layout).generate(count)
    candidate = pipeline.check_violation(entry.program(), inputs, confirm=True)
    return candidate


def test_sec64_speculative_store_eviction(benchmark):
    results = {}

    def run_both():
        results["skylake"] = check("skylake")
        results["coffee-lake"] = check("coffee-lake")
        return results

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = [
        ("Skylake (i7-6700)", "assumption holds",
         "holds" if results["skylake"] is None else "VIOLATED"),
        ("Coffee Lake (i7-9700)", "VIOLATED",
         "VIOLATED" if results["coffee-lake"] is not None else "holds"),
    ]
    print_table(
        "§6.4: do speculative stores modify the cache?",
        ("CPU", "paper", "measured"),
        rows,
    )

    assert results["skylake"] is None
    assert results["coffee-lake"] is not None
    print("\nCoffee Lake counterexample:")
    print(results["coffee-lake"])
