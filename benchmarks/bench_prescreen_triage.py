"""Static leak pre-screen triage: screened fraction, speedup, safety.

The pre-screen (``repro.analysis.prescreen``) statically classifies
generated test cases before the expensive hardware-vs-model measurement:
programs whose speculative windows provably touch no tainted address
(INERT) are skipped. This benchmark pins the three properties the
feature claims:

1. **triage rate** — on a plain generator mix a useful fraction of
   test cases is screened out, and the campaign gets faster (same
   seed, same program/input stream, fewer measurements);
2. **zero lost violations** — a detecting campaign run with the
   pre-screen enabled finds exactly the same violation at exactly the
   same test-case/input counts as the baseline run;
3. **gallery safety** — every handwritten Spectre gadget of the V1-V4
   families classifies ACTIVE (the pre-screen would never discard it),
   and each still produces a confirmed violation end to end.

The JSON section (``prescreen_triage``) is value-gated by
tools/check_bench_json.py: parity flags must be true, gallery_lost must
be 0 and the screened fraction must be positive.
"""

import os
from dataclasses import replace

from repro.analysis.prescreen import classify
from repro.core.config import FuzzerConfig
from repro.core.fuzzer import TestingPipeline, fuzz
from repro.core.input_gen import InputGenerator
from repro.emulator.compiled import compile_program
from repro.gallery import GALLERY

from conftest import bench_scale, emit_json, print_table

#: per-backend budgets known to surface a V1-style violation quickly
#: (mirrors the tier-1 smoke test in tests/test_arch_registry.py)
_DETECT_BUDGETS = {
    "x86_64": dict(seed=7, num_test_cases=160, inputs_per_test_case=25),
    "aarch64": dict(seed=3, num_test_cases=120, inputs_per_test_case=50),
}

#: the gallery gadgets the safety check covers (V1-V4 families)
_GALLERY_SAFETY = ("spectre-v1", "spectre-v1.1", "spectre-v2", "spectre-v4")


def _gallery_detects(name: str, max_inputs: int = 128) -> bool:
    """Does the gadget still produce a confirmed violation?"""
    entry = GALLERY[name]
    config = FuzzerConfig(
        contract_name=entry.contract,
        cpu_preset=entry.cpu_preset,
        executor_mode=entry.executor_mode,
        analyzer_mode=entry.analyzer_mode,
        seed=11,
    )
    pipeline = TestingPipeline(config)
    generator = InputGenerator(
        seed=42, entropy_bits=entry.entropy_bits, layout=pipeline.layout
    )
    program = entry.program()
    count = 4
    while count <= max_inputs:
        if pipeline.check_violation(program, generator.generate(count)):
            return True
        count *= 2
    return False


def _gallery_active(name: str) -> bool:
    """Would the pre-screen have kept (not discarded) the gadget?"""
    entry = GALLERY[name]
    config = FuzzerConfig(
        contract_name=entry.contract,
        cpu_preset=entry.cpu_preset,
        executor_mode=entry.executor_mode,
        analyzer_mode=entry.analyzer_mode,
    )
    pipeline = TestingPipeline(config)
    compiled = compile_program(entry.program(), pipeline.arch)
    return classify(compiled, pipeline.contract, entry.executor_mode).active


def test_prescreen_triage(benchmark):
    arch = os.environ.get("REPRO_ARCH", "x86_64")
    scale = bench_scale()

    # -- part 1: triage rate + speedup on a non-detecting campaign ------
    # CT-COND permits the V1 pattern, so the whole budget runs (no early
    # stop) and the wall-clock comparison is like for like.
    triage_base = FuzzerConfig(
        arch=arch,
        instruction_subsets=("AR", "MEM", "CB"),
        contract_name="CT-COND",
        cpu_preset="skylake-v4-patched",
        num_test_cases=48 * scale,
        inputs_per_test_case=25,
        diversity_feedback=False,
        seed=5,
    )
    triage_off = fuzz(replace(triage_base, prescreen=False))
    triage_on = benchmark.pedantic(
        lambda: fuzz(replace(triage_base, prescreen=True)),
        rounds=1,
        iterations=1,
    )
    assert not triage_off.found and not triage_on.found
    assert triage_on.test_cases == triage_off.test_cases
    screened = triage_on.prescreened_inert
    fraction = screened / triage_on.test_cases
    speedup = triage_off.duration_seconds / max(
        triage_on.duration_seconds, 1e-9
    )

    # -- part 2: violation parity on a detecting campaign ---------------
    detect_base = FuzzerConfig(
        arch=arch,
        instruction_subsets=("AR", "MEM", "CB"),
        contract_name="CT-SEQ",
        cpu_preset="skylake-v4-patched",
        **_DETECT_BUDGETS[arch],
    )
    detect_off = fuzz(replace(detect_base, prescreen=False))
    detect_on = fuzz(replace(detect_base, prescreen=True))
    found_parity = detect_on.found == detect_off.found
    # the same violation at the same campaign position (inputs_tested
    # differs by design: screened cases' inputs are never measured)
    violation_parity = detect_off.found and (
        detect_on.violation.test_cases_until_found
        == detect_off.violation.test_cases_until_found
        and detect_on.violation.classification
        == detect_off.violation.classification
        and [str(i) for i in detect_on.violation.program.all_instructions()]
        == [str(i) for i in detect_off.violation.program.all_instructions()]
    )

    # -- part 3: gallery safety (V1-V4 stay ACTIVE and detected) --------
    gallery_rows = []
    gallery_lost = 0
    for name in _GALLERY_SAFETY:
        active = _gallery_active(name)
        detected = _gallery_detects(name)
        if not (active and detected):
            gallery_lost += 1
        gallery_rows.append(
            [name, "ACTIVE" if active else "INERT",
             "violates" if detected else "LOST"]
        )

    print_table(
        "Pre-screen triage",
        ["metric", "value"],
        [
            ["test cases (triage run)", triage_on.test_cases],
            ["screened INERT", screened],
            ["screened fraction", f"{fraction:.2f}"],
            ["safety-sampled", triage_on.prescreen_safety_checked],
            ["wall s (off)", f"{triage_off.duration_seconds:.2f}"],
            ["wall s (on)", f"{triage_on.duration_seconds:.2f}"],
            ["speedup", f"{speedup:.2f}x"],
            ["violation parity", found_parity and violation_parity],
        ],
    )
    print_table(
        "Gallery safety (pre-screen keeps every known gadget)",
        ["gadget", "pre-screen", "end to end"],
        gallery_rows,
    )

    emit_json(
        "prescreen_triage",
        {
            "arch": arch,
            "test_cases": triage_on.test_cases,
            "screened": screened,
            "screened_fraction": round(fraction, 4),
            "safety_checked": triage_on.prescreen_safety_checked,
            "wall_seconds_off": round(triage_off.duration_seconds, 3),
            "wall_seconds_on": round(triage_on.duration_seconds, 3),
            "speedup": round(speedup, 3),
            "found_parity": found_parity,
            "violation_parity": bool(violation_parity),
            "gallery_checked": list(_GALLERY_SAFETY),
            "gallery_lost": gallery_lost,
        },
    )

    # hard gates: the pre-screen must drop something, lose nothing
    assert screened > 0, "pre-screen screened no test case at all"
    assert found_parity, "pre-screen changed the campaign's found status"
    assert violation_parity, "pre-screen shifted the violation's position"
    assert gallery_lost == 0, f"gallery regression: {gallery_rows}"
