"""§6.2 / A.5.3: fuzzing speed.

The paper reports over 200 test cases per hour (with several hundred
inputs each) on real silicon, where each measurement involves 50 kernel-
module repetitions. The simulator is much faster per case; the bench
times a non-detecting configuration and reports cases/hour and
inputs/second for the record.
"""

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import fuzz


def test_fuzzing_speed(benchmark):
    config = FuzzerConfig(
        instruction_subsets=("AR", "MEM"),
        contract_name="CT-COND-BPAS",  # the most expensive model
        cpu_preset="skylake-v4-patched",
        num_test_cases=40,
        inputs_per_test_case=50,
        diversity_feedback=False,
        seed=1,
    )

    report = benchmark.pedantic(lambda: fuzz(config), rounds=1, iterations=1)

    cases_per_hour = report.test_cases / report.duration_seconds * 3600
    inputs_per_second = report.inputs_tested / report.duration_seconds
    print("\n=== Fuzzing speed (CT-COND-BPAS, AR+MEM) ===")
    print(f"test cases: {report.test_cases} in {report.duration_seconds:.1f}s")
    print(f"-> {cases_per_hour:,.0f} cases/hour "
          f"(paper: >200/hour on silicon with 50x repetition)")
    print(f"-> {inputs_per_second:,.0f} inputs/second")
    print(f"mean input effectiveness: {report.mean_effectiveness:.2f}")

    assert not report.found
    # the paper's bar: more than 200 test cases per hour
    assert cases_per_hour > 200
    # input effectiveness stays high at 2 bits of entropy (CH2)
    assert report.mean_effectiveness > 0.5
