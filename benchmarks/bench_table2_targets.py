"""Table 2: the eight experimental targets.

Regenerates the experimental-setup table: CPU model, V4-patch state,
instruction set and executor mode per target, verifying each setup
resolves to a runnable configuration.
"""

from repro.isa.instruction_set import parse_subset_expression
from repro.executor.modes import measurement_mode
from repro.uarch.config import coffee_lake, skylake

from conftest import print_table

#: (target, cpu factory, v4 patch, instruction subsets, executor mode)
TARGETS = [
    ("Target 1", "Skylake", False, "AR", "P+P"),
    ("Target 2", "Skylake", False, "AR+MEM", "P+P"),
    ("Target 3", "Skylake", False, "AR+MEM+VAR", "P+P"),
    ("Target 4", "Skylake", True, "AR+MEM+VAR", "P+P"),
    ("Target 5", "Skylake", True, "AR+MEM+CB", "P+P"),
    ("Target 6", "Skylake", True, "AR+MEM+CB+VAR", "P+P"),
    ("Target 7", "Skylake", True, "AR+MEM", "P+P+A"),
    ("Target 8", "CoffeeLake", True, "AR+MEM", "P+P+A"),
]


def target_config(cpu_name, v4_patch):
    if cpu_name == "Skylake":
        return skylake(v4_patch=v4_patch)
    return coffee_lake(v4_patch=v4_patch)


def test_table2_targets(benchmark):
    def build_rows():
        rows = []
        for name, cpu, patch, subsets, mode_name in TARGETS:
            config = target_config(cpu, patch)
            instruction_set = parse_subset_expression(subsets)
            mode = measurement_mode(mode_name)
            rows.append(
                (
                    name,
                    config.name,
                    "on" if patch else "off",
                    f"{subsets} ({len(instruction_set)} forms)",
                    mode.name,
                )
            )
        return rows

    rows = benchmark(build_rows)
    print_table(
        "Table 2: experimental setups",
        ("Target", "CPU", "V4 patch", "Instruction set", "Executor mode"),
        rows,
    )
    assert len(rows) == 8
    # the patch column drives the store-bypass mechanism
    assert target_config("Skylake", False).store_bypass
    assert not target_config("Skylake", True).store_bypass
    # Coffee Lake models the MDS hardware patch
    assert not target_config("CoffeeLake", True).assists_leak_stale_data
