"""Figure 1 (and the §2.2 worked example): contract traces of the
Spectre V1 snippet.

Rebuilds the paper's example program (z = array1[x]; if (y < 10)
z = array2[y]) at the paper's addresses (array1 @ 0x100, array2 @ 0x200)
and checks the narrative:

- MEM-COND with x=0x10, y=0x20 gives ctrace = [0x110, 0x220];
- under MEM-SEQ, inputs y=0x20 and y=0x30 give the *same* ctrace
  [0x110]: the speculative access is not permitted, so the CPU leaking
  it is a MEM-SEQ counterexample;
- under MEM-COND the two inputs produce different ctraces, so the same
  hardware behaviour is permitted leakage.
"""

from repro.isa.assembler import parse_program
from repro.emulator.state import InputData, SandboxLayout
from repro.contracts import get_contract

PROGRAM = """
    MOV RBX, qword ptr [R14 + RAX]
    CMP RCX, 10
    JAE .end
    MOV RBX, qword ptr [R14 + RCX + 256]
.end: NOP
"""


def make_input(x, y):
    return InputData(registers={"RAX": x, "RCX": y})


def test_fig1_contract_traces(benchmark):
    layout = SandboxLayout(base=0x100)
    program = parse_program(PROGRAM)
    mem_cond = get_contract("MEM-COND")
    mem_seq = get_contract("MEM-SEQ")

    def collect():
        return {
            "cond_a": mem_cond.collect_trace(program, make_input(0x10, 0x20), layout),
            "cond_b": mem_cond.collect_trace(program, make_input(0x10, 0x30), layout),
            "seq_a": mem_seq.collect_trace(program, make_input(0x10, 0x20), layout),
            "seq_b": mem_seq.collect_trace(program, make_input(0x10, 0x30), layout),
        }

    traces = benchmark(collect)

    print("\n=== Figure 1 / §2.2 example ===")
    print(f"MEM-COND ctrace (x=0x10, y=0x20): {traces['cond_a']}")
    print(f"MEM-SEQ  ctrace (x=0x10, y=0x20): {traces['seq_a']}")

    # the paper's ctrace = [0x110, 0x220]
    assert traces["cond_a"].addresses("ld") == (0x110, 0x220)
    assert traces["seq_a"].addresses("ld") == (0x110,)
    # same MEM-SEQ class, different MEM-COND classes
    assert traces["seq_a"] == traces["seq_b"]
    assert traces["cond_a"] != traces["cond_b"]
