"""Ablation benchmarks for the paper's load-bearing design choices:

1. analyzer trace equivalence: subset vs strict (§5.5);
2. input entropy masking vs input effectiveness (§5.2, CH2);
3. priming-swap verification vs false positives (§5.3);
4. diversity feedback vs detection effort (§5.6);
5. repetition + outlier filtering vs measurement noise (§5.3, CH5).
"""

from repro.isa.assembler import parse_program
from repro.emulator.state import InputData, SandboxLayout
from repro.contracts import get_contract
from repro.core.analyzer import RelationalAnalyzer
from repro.core.config import FuzzerConfig
from repro.core.fuzzer import TestingPipeline, fuzz
from repro.core.input_gen import InputGenerator
from repro.executor.executor import Executor, ExecutorConfig
from repro.executor.modes import PRIME_PROBE
from repro.executor.noise import NoiseModel
from repro.uarch.config import skylake

from conftest import print_table

V1_GADGET = """
    JNS .end
    AND RBX, 0b111111000000
    MOV RCX, qword ptr [R14 + RBX]
.end: NOP
"""


def test_ablation_analyzer_equivalence(benchmark):
    """Subset equivalence filters inconsistent-speculation noise that the
    strict mode reports: fewer candidates, same confirmed violations."""
    def run_both():
        counts = {}
        for mode in ("subset", "strict"):
            pipeline = TestingPipeline(
                FuzzerConfig(contract_name="CT-SEQ",
                             cpu_preset="skylake-v4-patched",
                             analyzer_mode=mode, seed=11)
            )
            inputs = InputGenerator(seed=42, layout=pipeline.layout).generate(50)
            outcome = pipeline.test_program(parse_program(V1_GADGET), inputs)
            counts[mode] = len(outcome.analysis.candidates)
        return counts

    counts = benchmark(run_both)
    print_table(
        "Ablation: analyzer equivalence",
        ("mode", "candidate pairs"),
        [(mode, count) for mode, count in counts.items()],
    )
    assert counts["strict"] >= counts["subset"]
    assert counts["subset"] >= 1  # the real violation survives filtering


def test_ablation_input_entropy(benchmark):
    """CH2: lower PRNG entropy raises input effectiveness."""
    layout = SandboxLayout()
    program = parse_program(
        "AND RBX, 0b111111000000\nMOV RAX, qword ptr [R14 + RBX]"
    )
    contract = get_contract("CT-SEQ")
    analyzer = RelationalAnalyzer()

    def run_sweep():
        scores = {}
        for bits in (1, 2, 4, 8, 16):
            generator = InputGenerator(seed=5, entropy_bits=bits, layout=layout)
            inputs = generator.generate(40)
            ctraces = [contract.collect_trace(program, i, layout) for i in inputs]
            classes, singles = analyzer.build_classes(ctraces)
            scores[bits] = sum(c.size for c in classes) / len(inputs)
        return scores

    scores = benchmark(run_sweep)
    print_table(
        "Ablation: input entropy vs effectiveness",
        ("entropy bits", "effectiveness"),
        [(bits, f"{score:.2f}") for bits, score in scores.items()],
    )
    assert scores[1] >= scores[16]
    assert scores[2] > 0.5  # the paper's default config is effective


def test_ablation_priming_swap(benchmark):
    """The priming-swap check discards context-caused divergences: with
    identical inputs, any trace difference must be filtered."""
    layout = SandboxLayout()
    # a bypass gadget whose alternating disambiguator makes identical
    # inputs produce positionally different traces
    program = parse_program(
        """
        MOV qword ptr [R14 + 64], RAX
        MOV RBX, qword ptr [R14 + 64]
        AND RBX, 0b111111000000
        MOV RCX, qword ptr [R14 + RBX]
        """
    )
    memory = bytearray(layout.size)
    memory[64:72] = (0x1C0).to_bytes(8, "little")
    inputs = [InputData(registers={"RAX": 0x80}, memory=bytes(memory))] * 2

    def run_check():
        executor = Executor(skylake(v4_patch=False), PRIME_PROBE, layout,
                            ExecutorConfig(warmup_passes=0, repetitions=1))
        traces = executor.collect_hardware_traces(program, inputs)
        diverged = traces[0].signals != traces[1].signals
        confirmed = executor.priming_swap_check(
            program, inputs, 0, 1, lambda a, b: a.signals == b.signals
        )
        return diverged, confirmed

    diverged, confirmed = benchmark(run_check)
    print("\n=== Ablation: priming-swap verification ===")
    print(f"identical inputs diverged positionally: {diverged}")
    print(f"swap check confirmed a violation: {confirmed}")
    # without the check this would be a false positive; with it, it is not
    assert diverged
    assert not confirmed


def test_ablation_diversity_feedback(benchmark, scale):
    """§5.6: diversity-driven reconfiguration vs a static generator.

    Reports detection effort for V4 (which profits from larger tests)
    with and without feedback."""
    def run_both():
        outcomes = {}
        for feedback in (True, False):
            report = fuzz(FuzzerConfig(
                instruction_subsets=("AR", "MEM"),
                contract_name="CT-SEQ",
                cpu_preset="skylake",
                num_test_cases=200 * scale,
                inputs_per_test_case=30,
                diversity_feedback=feedback,
                seed=3,
            ))
            outcomes[feedback] = report
        return outcomes

    outcomes = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        (
            "with feedback" if feedback else "static generator",
            "found" if report.found else "not found",
            report.test_cases,
            f"{report.duration_seconds:.1f}s",
            report.reconfigurations,
        )
        for feedback, report in outcomes.items()
    ]
    print_table(
        "Ablation: diversity feedback (V4 hunt)",
        ("configuration", "outcome", "cases", "time", "reconfigs"),
        rows,
    )
    assert outcomes[True].found, "feedback run must find V4"


def test_ablation_noise_filtering(benchmark):
    """CH5: repetition + one-off outlier filtering recovers the true
    trace under synthetic measurement noise."""
    layout = SandboxLayout()
    program = parse_program("MOV RAX, qword ptr [R14 + 320]")
    true_set = ((layout.base + 320) // 64) % 64
    noise = NoiseModel(spurious_rate=0.3, smi_rate=0.05)

    def run_matrix():
        results = {}
        for label, repetitions, threshold in (
            ("1 rep, no filter", 1, 0),
            ("5 reps, no filter", 5, 0),
            ("9 reps, filter<=1", 9, 1),
            ("15 reps, filter<=2", 15, 2),
        ):
            wrong = 0
            for seed in range(10):
                executor = Executor(
                    skylake(), PRIME_PROBE, layout,
                    ExecutorConfig(repetitions=repetitions,
                                   outlier_threshold=threshold,
                                   noise=noise, noise_seed=seed),
                )
                trace = executor.collect_hardware_traces(program, [InputData()])[0]
                if trace.signals != {true_set}:
                    wrong += 1
            results[label] = wrong
        return results

    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    print_table(
        "Ablation: noise filtering (wrong traces out of 10 seeds)",
        ("configuration", "wrong traces"),
        list(results.items()),
    )
    # filtering must strictly improve on the unfiltered single measurement
    assert results["9 reps, filter<=1"] <= results["1 rep, no filter"]
    assert results["15 reps, filter<=2"] <= 1
