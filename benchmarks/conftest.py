"""Shared infrastructure for the benchmark harness.

Each ``bench_*.py`` regenerates one table or figure of the paper: it runs
the corresponding experiment on the simulated CPUs and prints the same
rows/series the paper reports. Absolute numbers differ (the substrate is
a simulator, not the authors' Skylake/Coffee Lake testbeds); the *shape*
— who wins, which cells are violated, relative detection effort — is the
reproduction target. Expected-vs-measured notes live in each
benchmark's docstring.

Budgets are deliberately modest so `pytest benchmarks/ --benchmark-only`
finishes in minutes; set REPRO_BENCH_SCALE=N to multiply search budgets.
Set REPRO_BENCH_JSON=/path/to/file.json to additionally record benchmark
measurements as JSON (one top-level key per benchmark section) — CI
uploads the campaign-scaling measurements as a build artifact this way.
"""

import json
import os

import pytest


def bench_scale() -> int:
    return max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))


def emit_json(section: str, payload) -> None:
    """Record one benchmark section's measurements in the JSON sink.

    No-op unless REPRO_BENCH_JSON names a file; sections merge, so one
    file accumulates every benchmark of a run.
    """
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path:
        return
    data = {}
    if os.path.exists(path):
        with open(path) as handle:
            data = json.load(handle)
    data[section] = payload
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


def print_table(title, headers, rows):
    """Uniform fixed-width table printer for benchmark output."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows)) if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
