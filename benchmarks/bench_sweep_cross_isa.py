"""Cross-ISA sweep: one grid over (arch, contract, cpu) with a shared
on-disk trace cache.

The Table 3 evaluation, generalized across ISA backends ("don't sit on
the fence": report serialization findings per architecture, not per
hard-coded ISA). One :class:`SweepSpec` covers
``{x86_64, aarch64} x {CT-SEQ, CT-COND} x {skylake-v4-patched,
coffee-lake}``; the expectations are the paper-shaped ones:

- every CT-SEQ cell is violated — Spectre V1 surfaces on *both* ISAs
  (JCC speculation on x86-64, B.cond speculation on AArch64);
- no CT-COND cell is violated — once the contract exposes the outcome
  of conditional branches, the leak is permitted on every backend.

The sweep shares one persistent trace cache: cells along the cpu axis
replay the identical program/input battery (cell seeds exclude the cpu
coordinate), so every coffee-lake cell reuses the contract traces its
skylake sibling emulated, across process boundaries (shard workers are
separate processes). A follow-up mini-sweep over the same cache
directory re-resolves one cell entirely from disk and must reproduce a
byte-identical deterministic cell report — the reproducibility claim of
``docs/campaigns-and-sweeps.md``.

Set ``REPRO_SWEEP_PARALLEL_CELLS=N`` to execute the grid with N cells
in flight (CI sets 2, so the parallel scheduler is exercised on every
PR); the deterministic cell reports — and therefore every paper-shaped
assertion below — are identical for any value. The recorded JSON keeps
the scheduling knobs and the cache GC statistics next to the
measurements so the artifacts track them over time.
"""

import json
import os

from repro.core.config import FuzzerConfig
from repro.core.sweep import SweepCell, SweepRunner, SweepSpec

from conftest import emit_json, print_table

ARCHES = ("x86_64", "aarch64")
CONTRACTS = ("CT-SEQ", "CT-COND")
CPUS = ("skylake-v4-patched", "coffee-lake")


def cross_isa_spec(scale, shards=2):
    return SweepSpec(
        arches=ARCHES,
        contracts=CONTRACTS,
        cpus=CPUS,
        base_config=FuzzerConfig(
            num_test_cases=150 * scale,
            inputs_per_test_case=30,
            seed=3,
        ),
        workers=shards,
        shards=shards,
        # the holds-everywhere contract needs no deep search: cap its
        # cells the way Table 3 caps its cross cells
        budget_overrides={
            (arch, "CT-COND", cpu): 40 * scale
            for arch in ARCHES
            for cpu in CPUS
        },
    )


def _parallel_cells() -> int:
    return max(1, int(os.environ.get("REPRO_SWEEP_PARALLEL_CELLS", "1")))


def test_sweep_cross_isa(benchmark, scale, tmp_path):
    cache_dir = tmp_path / "traces"
    spec = cross_isa_spec(scale)
    parallel_cells = _parallel_cells()

    report = benchmark.pedantic(
        lambda: SweepRunner(
            spec,
            cache_dir=str(cache_dir),
            max_parallel_cells=parallel_cells,
        ).run(),
        rounds=1, iterations=1,
    )

    print()
    print(report.to_markdown())
    rows = [
        (result.cell.arch, result.cell.contract, result.cell.cpu,
         result.classification or "-",
         f"{result.campaign.merged.test_cases}",
         f"{result.time_to_first_violation:.1f}s"
         if result.found else "-",
         f"{result.campaign.observed_concurrency:.1f}")
        for result in report.results
    ]
    print_table(
        "Cross-ISA sweep (detection per cell)",
        ("arch", "contract", "cpu", "violation", "cases",
         "time to 1st", "concurrency"),
        rows,
    )

    # paper-shaped expectations, now phrased per architecture
    for result in report.results:
        if result.cell.contract == "CT-SEQ":
            assert result.found, f"{result.cell.label}: expected a violation"
            assert "V1" in result.classification, result.cell.label
        else:
            assert not result.found, (
                f"{result.cell.label}: CT-COND should hold"
            )

    # cpu-axis cache sharing: coffee-lake cells replay their skylake
    # siblings' batteries, so the shared on-disk cache must have served
    # traces across process boundaries already within this one sweep.
    # (Only guaranteed when cells run one at a time — concurrent
    # cpu-axis siblings race on the same battery and may each emulate
    # it; the rerun assertion below covers reuse in every mode.)
    if parallel_cells == 1:
        assert report.trace_cache_disk_hits > 0

    # cross-run reuse: a mini-sweep over one already-swept cell resolves
    # its contract traces from the populated cache and reproduces the
    # cell report byte for byte
    mini_spec = cross_isa_spec(scale)
    mini_spec.arches = ("x86_64",)
    mini_spec.contracts = ("CT-SEQ",)
    mini_spec.cpus = ("skylake-v4-patched",)
    rerun = SweepRunner(mini_spec, cache_dir=str(cache_dir)).run()
    assert rerun.trace_cache_disk_hits > 0
    first = report.cell_result(
        SweepCell("x86_64", "CT-SEQ", "skylake-v4-patched")
    )
    assert json.dumps(
        rerun.results[0].deterministic_report(), sort_keys=True
    ) == json.dumps(first.deterministic_report(), sort_keys=True)

    report_json = report.to_json()
    emit_json(
        "sweep_cross_isa",
        {
            "grid": report_json["grid"],
            "cells": [r.deterministic_report() for r in report.results],
            "timing": {
                r.cell.label: r.timing_report() for r in report.results
            },
            # scheduling knobs and cache GC statistics, tracked over
            # time by the CI artifacts
            "scheduling": report_json["scheduling"],
            "trace_cache": report_json["trace_cache"],
            "wall_seconds": report.wall_seconds,
            "trace_cache_disk_hits": report.trace_cache_disk_hits,
            "rerun_disk_hits": rerun.trace_cache_disk_hits,
        },
    )


def test_sweep_detection_time_order(benchmark, scale):
    """Table 4's companion claim on the sweep report: detection time to
    first violation is recorded per cell and the violated cells carry a
    positive one."""
    spec = cross_isa_spec(scale, shards=2)
    spec.contracts = ("CT-SEQ",)
    spec.arches = ("x86_64",)
    report = benchmark.pedantic(
        lambda: SweepRunner(spec).run(), rounds=1, iterations=1
    )
    for result in report.results:
        assert result.found
        assert result.time_to_first_violation > 0
        assert result.campaign.observed_concurrency > 0
