"""Figure 5: the novel V1 variant (V1-var) — a latency race.

Reproduces §6.3 deterministically with crafted inputs: a variable-latency
division on the mispredicted path races branch resolution. With a fast
division the dependent load leaves a cache trace; with a slow one the
squash wins. Both inputs have identical CT-COND contract traces (the
quotients collide after masking), so the divergence is a genuine contract
violation exposing the *latency* of the division — information CT-COND
does not permit to leak.
"""

from repro.emulator.state import InputData, SandboxLayout
from repro.contracts import get_contract
from repro.core.analyzer import RelationalAnalyzer
from repro.gallery import V1_VAR
from repro.traces import HTrace
from repro.uarch.config import skylake
from repro.uarch.cpu import SpeculativeCPU

FAST_DIVIDEND = 5
SLOW_DIVIDEND = (1 << 62) + 5  # same masked quotient, ~60 extra latency cycles


def measure(dividend):
    layout = SandboxLayout()
    cpu = SpeculativeCPU(skylake(), layout)
    linear = V1_VAR.program().linearize()
    cpu.cache.prime()
    info = cpu.run(
        linear, InputData(registers={"RAX": dividend, "RBX": 0})
    )
    return HTrace.from_signals(cpu.cache.probe()), info


def test_fig5_v1var_race(benchmark):
    def run_both():
        return measure(FAST_DIVIDEND), measure(SLOW_DIVIDEND)

    (fast_trace, fast_info), (slow_trace, slow_info) = benchmark(run_both)

    layout = SandboxLayout()
    contract = get_contract("CT-COND")
    program = V1_VAR.program()
    ct_fast = contract.collect_trace(
        program, InputData(registers={"RAX": FAST_DIVIDEND, "RBX": 0}), layout
    )
    ct_slow = contract.collect_trace(
        program, InputData(registers={"RAX": SLOW_DIVIDEND, "RBX": 0}), layout
    )

    print("\n=== Figure 5: V1-var latency race ===")
    print(f"fast dividend {FAST_DIVIDEND:#x}: htrace={sorted(fast_trace.signals)} "
          f"squashes={fast_info.squashes}")
    print(f"slow dividend {SLOW_DIVIDEND:#x}: htrace={sorted(slow_trace.signals)} "
          f"squashes={slow_info.squashes}")
    print(f"CT-COND contract traces equal: {ct_fast == ct_slow}")

    # both runs mispredicted; only the fast division left a trace
    assert fast_info.squashes == ["cond"]
    assert slow_info.squashes == ["cond"]
    assert len(fast_trace.signals) == 1
    assert len(slow_trace.signals) == 0
    # same input class under CT-COND: this is a contract violation
    assert ct_fast == ct_slow
    # ... of the subset-shaped kind: the strict analyzer flags it
    strict = RelationalAnalyzer("strict")
    assert not strict.equivalent(fast_trace, slow_trace)
    result = strict.analyze([ct_fast, ct_slow], [fast_trace, slow_trace])
    assert len(result.candidates) == 1
