"""Emulation throughput: the compile-once program IR vs. the interpreter.

The single hottest path of the MRT pipeline is program emulation: every
contract trace and every hardware measurement re-executes the same test
case, and the fuzzer replays each case across dozens of inputs, contract
parameterizations (nesting revalidation) and speculative rollbacks.
``repro.emulator.compiled`` lowers each program exactly once into bound
step closures (no per-step mnemonic dispatch, operand ``isinstance``
chains, ``condition_of`` parsing or label lookups); this benchmark pins
the two guarantees that refactor makes:

1. **>= 2x contract-trace throughput** on a ~30-instruction generated
   battery, on both ISA backends, measured as best-of-N wall clock of
   ``Contract.collect_trace_and_log`` over the identical (program,
   input) grid — interpretive vs. compiled;
2. **byte-identical results**: contract traces *and* execution logs,
   hardware traces from the executor, and end-to-end fuzzing reports
   (the ``FuzzerConfig.compile_programs`` knob flipped) must not change
   by a single byte on either ISA.

On top of the per-input compiled path, ``repro.emulator.battery`` runs
each compiled program *once* across the whole input battery (one plan
dispatch per op per battery, lane splitting on divergence; see
``docs/performance.md``). The benchmark pins the same two guarantees
for it:

3. **>= 1.5x additional throughput** over the per-input compiled path,
   on both ISAs, measured as best-of-N wall clock of
   ``Contract.collect_traces_battery`` on pass-optimized IR over the
   identical grid;
4. **byte-identical results** again: the battery's (trace, log) pairs
   entry-for-entry against the per-input compiled results, and
   end-to-end fuzzing reports with ``FuzzerConfig.battery_eval``
   flipped (the x86-64 budget includes the confirmed V1 violation).

The JSON section (``emulation_throughput``) is schema- and value-gated
by ``tools/check_bench_json.py``: the ratios must hold (>= 2.0
compiled, >= 1.5 battery) and the equality flags must be true, so a
silent regression of either guarantee fails CI rather than rotting in
an artifact.
"""

import time
from dataclasses import replace

from repro.analysis.passes import default_pipeline
from repro.arch import get_architecture
from repro.contracts import get_contract
from repro.core.config import FuzzerConfig, GeneratorConfig
from repro.core.fuzzer import Fuzzer
from repro.core.generator import TestCaseGenerator
from repro.core.input_gen import InputGenerator
from repro.core.trace_cache import program_fingerprint
from repro.emulator.compiled import compile_program
from repro.emulator.state import SandboxLayout
from repro.executor.executor import Executor, ExecutorConfig
from repro.executor.modes import measurement_mode
from repro.uarch.config import preset

from conftest import emit_json, print_table

#: the generated battery: ~30 instructions per program (paper-scale test
#: cases after a few diversity rounds), conditional branches included so
#: the contract model forks and rolls back speculative paths
BATTERY_CONFIG = GeneratorConfig(
    instructions_per_test=30, basic_blocks=4, memory_accesses=8
)
PROGRAMS = 6
INPUTS = 30
TIMING_ROUNDS = 4  # best-of-N wall clock per engine

#: budgets that end-to-end exercise candidate confirmation (the x86-64
#: one surfaces a confirmed V1-style violation, as in the CI smoke test)
REPORT_BUDGETS = {
    "x86_64": dict(seed=7, num_test_cases=160, inputs_per_test_case=25),
    "aarch64": dict(seed=3, num_test_cases=60, inputs_per_test_case=30),
}


def _battery(arch, layout):
    generator = TestCaseGenerator(
        arch.instruction_subset(["AR", "MEM", "CB"]),
        BATTERY_CONFIG,
        layout,
        seed=5,
        arch=arch,
    )
    inputs = InputGenerator(
        seed=6,
        layout=layout,
        registers=arch.default_register_pool,
        flag_bits=arch.registers.flag_bits,
    ).generate(INPUTS)
    return [generator.generate() for _ in range(PROGRAMS)], inputs


def _collect_all(contract, programs, inputs, layout, arch, compiled_map):
    """One full battery pass; returns (wall seconds, results)."""
    results = []
    start = time.perf_counter()
    for program in programs:
        compiled = compiled_map[id(program)] if compiled_map else None
        for input_data in inputs:
            results.append(
                contract.collect_trace_and_log(
                    program, input_data, layout, arch, compiled
                )
            )
    return time.perf_counter() - start, results


def _collect_battery_all(contract, programs, inputs, layout, optimized_map):
    """One full battery-batched pass; returns (wall seconds, results).

    ``strict=True``: on this battery a fallback would mean the timing
    silently measured the per-input rerun instead — fail loudly.
    """
    results = []
    start = time.perf_counter()
    for program in programs:
        results.extend(
            contract.collect_traces_battery(
                optimized_map[id(program)], inputs, layout, strict=True
            )
        )
    return time.perf_counter() - start, results


def _hardware_traces(arch_name, programs, inputs, compile_programs):
    executor = Executor(
        preset("skylake"),
        measurement_mode("P+P"),
        SandboxLayout(),
        ExecutorConfig(compile_programs=compile_programs),
        arch=get_architecture(arch_name),
    )
    return [
        executor.collect_hardware_traces(program, inputs)
        for program in programs
    ]


def _report_digest(report, arch_name):
    """The byte-comparable projection of a fuzzing report (wall-clock
    fields excluded, everything the MRT loop decides included)."""
    violation = None
    if report.found:
        violation = (
            program_fingerprint(report.violation.program, arch_name),
            report.violation.classification,
            report.violation.position_a,
            report.violation.position_b,
            str(report.violation.htrace_a),
            str(report.violation.htrace_b),
            str(report.violation.ctrace),
            tuple(sorted(report.violation.speculation_kinds)),
        )
    return (
        report.test_cases,
        report.inputs_tested,
        report.rounds,
        report.reconfigurations,
        report.mean_effectiveness,
        sorted(report.coverage.covered),
        report.discarded_by_priming,
        report.discarded_by_nesting,
        report.unconfirmed_candidates,
        violation,
    )


def test_compiled_emulation_throughput():
    """>= 2x contract-trace throughput (compiled vs. interpretive) and
    >= 1.5x on top of that (battery vs. per-input compiled), with
    byte-identical traces and reports, on both ISA backends."""
    contract = get_contract("CT-COND")
    per_arch = {}
    rows = []
    traces_equal = True
    reports_equal = True
    battery_traces_equal = True
    battery_reports_equal = True
    instruction_counts = []

    for arch_name in ("x86_64", "aarch64"):
        arch = get_architecture(arch_name)
        layout = SandboxLayout()
        programs, inputs = _battery(arch, layout)
        instruction_counts.extend(p.num_instructions for p in programs)
        compiled_map = {
            id(program): compile_program(program, arch)
            for program in programs
        }
        # the battery runs on pass-optimized IR, as the fuzzer pipeline
        # does in production (dead-flag elimination + masked-access
        # fusion — both byte-identical by the pass-pipeline contract)
        optimized_map = {
            key: default_pipeline().run(compiled).program
            for key, compiled in compiled_map.items()
        }

        interpretive_best = compiled_best = battery_best = float("inf")
        interpretive_results = compiled_results = battery_results = None
        for _ in range(TIMING_ROUNDS):
            seconds, results = _collect_all(
                contract, programs, inputs, layout, arch, None
            )
            if seconds < interpretive_best:
                interpretive_best, interpretive_results = seconds, results
            seconds, results = _collect_all(
                contract, programs, inputs, layout, arch, compiled_map
            )
            if seconds < compiled_best:
                compiled_best, compiled_results = seconds, results
            seconds, results = _collect_battery_all(
                contract, programs, inputs, layout, optimized_map
            )
            if seconds < battery_best:
                battery_best, battery_results = seconds, results

        # contract traces and execution logs: byte-identical
        contract_equal = all(
            a[0] == b[0] and a[1].entries == b[1].entries
            for a, b in zip(interpretive_results, compiled_results)
        )
        # battery results: entry-for-entry equal to per-input compiled
        arch_battery_equal = all(
            a[0] == b[0] and a[1].entries == b[1].entries
            for a, b in zip(compiled_results, battery_results)
        )
        battery_traces_equal = battery_traces_equal and arch_battery_equal
        # hardware traces: byte-identical across the engine knob
        hardware_equal = _hardware_traces(
            arch_name, programs, inputs, compile_programs=True
        ) == _hardware_traces(
            arch_name, programs, inputs, compile_programs=False
        )
        traces_equal = traces_equal and contract_equal and hardware_equal

        # end-to-end reports: neither config knob may move a byte.
        # report_on runs the production default (compiled + battery);
        # compile_programs=False is the interpretive referee and
        # battery_eval=False the per-input compiled one.
        budget = REPORT_BUDGETS[arch_name]
        base = FuzzerConfig(arch=arch_name, **budget)
        report_on = Fuzzer(replace(base, compile_programs=True)).run()
        report_off = Fuzzer(replace(base, compile_programs=False)).run()
        digest_on = _report_digest(report_on, arch_name)
        arch_reports_equal = digest_on == _report_digest(
            report_off, arch_name
        )
        reports_equal = reports_equal and arch_reports_equal
        report_no_battery = Fuzzer(replace(base, battery_eval=False)).run()
        arch_battery_reports_equal = digest_on == _report_digest(
            report_no_battery, arch_name
        )
        battery_reports_equal = (
            battery_reports_equal and arch_battery_reports_equal
        )

        collections = len(programs) * len(inputs)
        ratio = interpretive_best / compiled_best
        battery_ratio = compiled_best / battery_best
        per_arch[arch_name] = {
            "interpretive_seconds": interpretive_best,
            "compiled_seconds": compiled_best,
            "battery_seconds": battery_best,
            "ratio": ratio,
            "battery_ratio": battery_ratio,
            "traces_per_second_interpretive": collections / interpretive_best,
            "traces_per_second_compiled": collections / compiled_best,
            "traces_per_second_battery": collections / battery_best,
            "contract_traces_equal": contract_equal,
            "hardware_traces_equal": hardware_equal,
            "battery_traces_equal": arch_battery_equal,
            "reports_equal": arch_reports_equal,
            "battery_reports_equal": arch_battery_reports_equal,
            "violation_found": report_on.found,
        }
        rows.append([
            arch_name,
            f"{interpretive_best * 1000:.0f}",
            f"{compiled_best * 1000:.0f}",
            f"{battery_best * 1000:.0f}",
            f"{ratio:.2f}x",
            f"{battery_ratio:.2f}x",
            contract_equal and hardware_equal and arch_battery_equal,
            arch_reports_equal and arch_battery_reports_equal,
            report_on.found,
        ])

    print_table(
        f"Contract-trace throughput ({PROGRAMS} programs x {INPUTS} inputs, "
        f"~{sum(instruction_counts) // len(instruction_counts)} instructions"
        ", CT-COND)",
        ["arch", "interp ms", "compiled ms", "battery ms", "speedup",
         "battery x", "traces ==", "report ==", "violation"],
        rows,
    )

    min_ratio = min(stats["ratio"] for stats in per_arch.values())
    min_battery_ratio = min(
        stats["battery_ratio"] for stats in per_arch.values()
    )
    emit_json(
        "emulation_throughput",
        {
            "instructions": sum(instruction_counts)
            // len(instruction_counts),
            "programs": PROGRAMS,
            "inputs": INPUTS,
            "contract": contract.name,
            "arches": per_arch,
            "throughput_ratio": min_ratio,
            "battery_ratio": min_battery_ratio,
            "traces_equal": traces_equal,
            "reports_equal": reports_equal,
            "battery_traces_equal": battery_traces_equal,
            "battery_reports_equal": battery_reports_equal,
        },
    )

    assert traces_equal, "compiled engine diverged from the interpreter"
    assert battery_traces_equal, (
        "battery engine diverged from the per-input compiled path"
    )
    assert reports_equal, (
        "FuzzerConfig.compile_programs changed a fuzzing report"
    )
    assert battery_reports_equal, (
        "FuzzerConfig.battery_eval changed a fuzzing report"
    )
    assert min_ratio >= 2.0, (
        f"compile-once IR must be >= 2x on contract traces, got "
        f"{min_ratio:.2f}x"
    )
    assert min_battery_ratio >= 1.5, (
        f"battery-batched evaluation must be >= 1.5x over the per-input "
        f"compiled path, got {min_battery_ratio:.2f}x"
    )
