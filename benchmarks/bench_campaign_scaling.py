"""Campaign scaling: worker sharding and contract-trace caching.

Two properties of the ``repro.campaign`` subsystem, on top of the paper's
loop (the ROADMAP's sharding/batching/caching north star):

1. **Worker scaling** — the same shard partition fanned out over 4
   worker processes finishes in less wall-clock time than over 1, while
   producing the identical merged report (sharding is deterministic, so
   worker count only changes scheduling). The speedup assertion is
   gated on the machine actually having multiple cores; the parity
   assertions always run.
2. **Trace caching** — a postprocessor run with the contract-trace
   cache enabled performs strictly fewer contract-model emulations than
   an uncached run and still reports the identical violation (same
   minimized program fingerprint, same candidate positions, same
   classification).
"""

import os
from dataclasses import replace

from repro.isa.assembler import parse_program
from repro.core.campaign import CampaignRunner
from repro.core.config import FuzzerConfig
from repro.core.fuzzer import TestingPipeline
from repro.core.input_gen import InputGenerator
from repro.core.postprocessor import Postprocessor
from repro.core.trace_cache import program_fingerprint

from conftest import emit_json, print_table


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_worker_scaling(scale):
    """4 workers vs 1 on the same shard partition: identical merged
    report, less wall-clock time (when cores are available). The target
    ISA follows REPRO_ARCH (the CI matrix), x86_64 by default."""
    arch = os.environ.get("REPRO_ARCH", "x86_64")
    config = FuzzerConfig(
        arch=arch,
        instruction_subsets=("AR", "MEM"),
        contract_name="CT-COND-BPAS",  # the most expensive model
        cpu_preset="skylake-v4-patched",
        num_test_cases=48 * scale,
        inputs_per_test_case=30,
        diversity_feedback=False,
        seed=1,
    )
    sequential = CampaignRunner(config, workers=1, shards=4).run()
    parallel = CampaignRunner(config, workers=4, shards=4).run()

    speedup = sequential.wall_seconds / parallel.wall_seconds
    cores = _available_cores()
    print_table(
        "Campaign scaling (4 shards, same budget)",
        ["workers", "wall s", "aggregate s", "cases", "violation"],
        [
            [1, f"{sequential.wall_seconds:.2f}",
             f"{sequential.merged.duration_seconds:.2f}",
             sequential.merged.test_cases, sequential.found],
            [4, f"{parallel.wall_seconds:.2f}",
             f"{parallel.merged.duration_seconds:.2f}",
             parallel.merged.test_cases, parallel.found],
        ],
    )
    print(f"speedup: {speedup:.2f}x on {cores} core(s)")
    emit_json(
        "worker_scaling",
        {
            "arch": arch,
            "cores": cores,
            "test_cases": sequential.merged.test_cases,
            "wall_seconds_1_worker": sequential.wall_seconds,
            "wall_seconds_4_workers": parallel.wall_seconds,
            "speedup": speedup,
            "found": sequential.found,
        },
    )

    # worker count must not change what was fuzzed or found
    assert sequential.merged.test_cases == parallel.merged.test_cases
    assert sequential.merged.inputs_tested == parallel.merged.inputs_tested
    assert sequential.found == parallel.found
    assert [s.test_cases for s in sequential.shard_reports] == [
        s.test_cases for s in parallel.shard_reports
    ]
    assert (
        sequential.merged.coverage.covered == parallel.merged.coverage.covered
    )
    # The wall-clock speedup assertion needs real hardware parallelism
    # with margin: on 4+ cores the 4-shard run reliably lands at 2-3x,
    # while 2-3 core (or oversubscribed CI) machines can dip under any
    # threshold and would make the assertion flaky. The measurement is
    # always printed; REPRO_BENCH_STRICT_SPEEDUP=1 forces the assertion.
    if cores >= 4 or os.environ.get("REPRO_BENCH_STRICT_SPEEDUP") == "1":
        assert speedup > 1.05, (
            f"4 workers should beat 1 on {cores} cores, got {speedup:.2f}x"
        )


def test_postprocessor_cache_skips_emulations():
    """Cached postprocessing: strictly fewer contract emulations, byte-
    identical minimization, identical violation report."""
    config = FuzzerConfig(
        contract_name="CT-SEQ", cpu_preset="skylake-v4-patched", seed=0
    )
    program = parse_program(
        """
        MOV RDX, 7
        MOV RSI, RDX
        JNS .end
        AND RBX, 0b111111000000
        MOV RCX, qword ptr [R14 + RBX]
        XOR RDX, RDX
    .end: NOP
        """
    )

    outcomes = {}
    for cached in (False, True):
        pipeline = TestingPipeline(
            replace(config, contract_trace_cache=cached)
        )
        inputs = InputGenerator(seed=42, layout=pipeline.layout).generate(40)
        result = Postprocessor(pipeline).minimize(program, list(inputs))
        candidate = pipeline.check_violation(result.program, result.inputs)
        outcome = pipeline.test_program(result.program, result.inputs)
        violation = pipeline.build_violation(outcome, candidate)
        outcomes[cached] = (pipeline, result, candidate, violation)

    uncached_pipeline, uncached_result, uncached_candidate, uncached_violation = outcomes[False]
    cached_pipeline, cached_result, cached_candidate, cached_violation = outcomes[True]

    stats = cached_pipeline.trace_cache.stats
    print_table(
        "Postprocessor contract emulations (same violation, same budget)",
        ["cache", "emulations", "cache hits", "hit rate"],
        [
            ["off", uncached_pipeline.contract_emulations, "-", "-"],
            ["on", cached_pipeline.contract_emulations, stats.hits,
             f"{stats.hit_rate:.0%}"],
        ],
    )

    emit_json(
        "postprocessor_trace_cache",
        {
            "emulations_uncached": uncached_pipeline.contract_emulations,
            "emulations_cached": cached_pipeline.contract_emulations,
            "cache_hits": stats.hits,
            "hit_rate": stats.hit_rate,
        },
    )

    # strictly fewer model emulations with the cache on
    assert (
        cached_pipeline.contract_emulations
        < uncached_pipeline.contract_emulations
    )
    assert stats.hits > 0
    # ... and the identical violation, end to end
    assert program_fingerprint(cached_result.program) == program_fingerprint(
        uncached_result.program
    )
    assert cached_result.inputs == uncached_result.inputs
    assert (cached_candidate.position_a, cached_candidate.position_b) == (
        uncached_candidate.position_a,
        uncached_candidate.position_b,
    )
    assert cached_violation.classification == uncached_violation.classification
