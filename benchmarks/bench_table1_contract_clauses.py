"""Table 1: the MEM-COND contract's observation and execution clauses.

Regenerates the clause summary by introspecting the executable contract
and verifying its behaviour on micro-programs: loads/stores expose
addresses; conditional jumps simulate the inverted condition; other
instructions expose nothing.
"""

from repro.isa.assembler import parse_program
from repro.emulator.state import InputData, SandboxLayout
from repro.contracts import get_contract

from conftest import print_table


def _trace(program_text, **registers):
    layout = SandboxLayout()
    contract = get_contract("MEM-COND")
    return contract.collect_trace(
        parse_program(program_text), InputData(registers=registers), layout
    ), layout


def test_table1_mem_cond_clauses(benchmark):
    contract = get_contract("MEM-COND")

    def build_rows():
        rows = []
        load_trace, layout = _trace("MOV RAX, qword ptr [R14 + 64]")
        rows.append(
            (
                "Load",
                "expose: ADDRESS" if load_trace.addresses("ld") else "None",
                "None",
            )
        )
        store_trace, _ = _trace("MOV qword ptr [R14 + 64], RAX")
        rows.append(
            (
                "Store",
                "expose: ADDRESS" if store_trace.addresses("st") else "None",
                "None",
            )
        )
        # conditional jump: the *inverted* path is simulated (Table 1's
        # "jump iff the condition is false" formulation)
        cond_trace, layout = _trace(
            "JNS .end\nMOV RAX, qword ptr [R14 + 128]\n.end: NOP"
        )
        speculates = layout.base + 128 in cond_trace.addresses("ld")
        rows.append(
            (
                "Cond. Jump",
                "None",
                "speculate: INVERTED_CONDITION" if speculates else "None",
            )
        )
        other_trace, _ = _trace("ADD RAX, RBX")
        rows.append(
            (
                "Other",
                "None" if len(other_trace) == 0 else "expose: ???",
                "None",
            )
        )
        return rows

    rows = benchmark(build_rows)
    print_table(
        f"Table 1: clauses of {contract.name}",
        ("Instruction", "Observation Clause", "Execution Clause"),
        rows,
    )
    assert rows[0][1] == "expose: ADDRESS"
    assert rows[1][1] == "expose: ADDRESS"
    assert rows[2][2] == "speculate: INVERTED_CONDITION"
    assert rows[3][1] == "None"
