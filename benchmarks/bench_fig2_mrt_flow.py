"""Figure 2: the main flow of Model-based Relational Testing.

Runs every stage of one MRT round explicitly — test-case generation,
input generation, contract traces from the model, hardware traces from
the executor, relational analysis — and prints the stage artifacts,
verifying the dataflow contracts between stages.
"""

from repro.isa.assembler import render_program
from repro.isa.instruction_set import instruction_subset
from repro.core.config import FuzzerConfig
from repro.core.fuzzer import TestingPipeline
from repro.core.generator import TestCaseGenerator
from repro.core.input_gen import InputGenerator


def test_fig2_mrt_flow(benchmark):
    config = FuzzerConfig(
        instruction_subsets=("AR", "MEM", "CB"),
        contract_name="CT-SEQ",
        cpu_preset="skylake-v4-patched",
        seed=12,
    )
    pipeline = TestingPipeline(config)
    generator = TestCaseGenerator(
        instruction_subset(config.instruction_subsets),
        config.generator,
        pipeline.layout,
        seed=config.seed,
    )
    input_generator = InputGenerator(
        seed=config.seed, entropy_bits=2, layout=pipeline.layout
    )

    def one_round():
        program = generator.generate()
        inputs = input_generator.generate(20)
        outcome = pipeline.test_program(program, inputs)
        return program, inputs, outcome

    program, inputs, outcome = benchmark(one_round)

    print("\n=== Figure 2: MRT stage artifacts ===")
    print("[1] test case generator ->")
    print(render_program(program, numbered=True))
    print(f"[2] input generator -> {len(inputs)} inputs, e.g. {inputs[0]!r}")
    print(f"[3] model -> {len(outcome.ctraces)} contract traces, "
          f"{len(set(outcome.ctraces))} distinct")
    print(f"[4] executor -> {len(outcome.htraces)} hardware traces")
    print(f"    e.g. {outcome.htraces[0].bitmap()}")
    print(f"[5] analyzer -> {len(outcome.analysis.effective_classes)} effective "
          f"classes, {outcome.analysis.singleton_inputs} ineffective inputs, "
          f"{len(outcome.analysis.candidates)} candidates")

    # stage contracts
    assert len(outcome.ctraces) == len(inputs) == len(outcome.htraces)
    assert len(outcome.logs) == len(inputs)
    covered = sum(c.size for c in outcome.analysis.classes)
    assert covered + outcome.analysis.singleton_inputs == len(inputs)
