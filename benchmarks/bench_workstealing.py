"""Work-stealing sweep scheduling: wall clock moves, bytes do not.

Static cell placement (one worker per cell) is only as fast as its
slowest cell: a heterogeneous grid — here one cell with a 4x budget
next to three small ones — leaves three workers idle while the big
cell grinds alone. The work-stealing scheduler decomposes every cell
into shard-sized units on a shared queue, so idle workers pull the big
cell's remaining shards instead of waiting. This benchmark runs the
same single-ISA grid (``REPRO_ARCH``, x86_64 by default) both ways and
pins three claims:

1. **Equal reports** — the work-stealing sweep's deterministic cell
   reports are byte-identical to the static schedule's: stealing
   changes which process runs a shard, never the shard partition,
   seeds, or budgets (``docs/campaigns-and-sweeps.md``). The grid uses
   holds-everywhere contracts (CT-COND family), so every cell is
   budget-bound and the timing comparison is stable.
2. **Wall-clock speedup** — the heterogeneous grid finishes >=1.3x
   faster under work stealing than under static placement with the
   same 4-process footprint. Gated on the host actually having 4+
   cores (``REPRO_BENCH_STRICT_SPEEDUP=1`` forces it); always printed
   and recorded.
3. **Resume reproduces the digest** — the timed work-stealing run
   checkpoints every completed shard into a journal; deleting half the
   shard records and resuming re-runs only the missing units and must
   reproduce the uninterrupted run's report digest byte for byte.
"""

import os

from repro.core.config import FuzzerConfig
from repro.core.sweep import SweepRunner, SweepSpec

from conftest import emit_json, print_table

#: shard-sized units per cell — the stealing granularity
SHARDS_PER_CELL = 4
#: the one expensive cell's budget multiplier
HEAVY_FACTOR = 4

CONTRACTS = ("CT-COND", "CT-COND-BPAS")
CPUS = ("skylake-v4-patched", "coffee-lake")


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def heterogeneous_spec(scale, arch):
    """A 2x2 single-ISA grid of budget-bound cells, one of them 4x the
    size of the others. ``shards`` is pinned explicitly: with inline
    cells (workers=1) the default partition would be one shard per
    cell, leaving the stealer nothing to steal."""
    return SweepSpec(
        arches=(arch,),
        contracts=CONTRACTS,
        cpus=CPUS,
        base_config=FuzzerConfig(
            num_test_cases=60 * scale,
            inputs_per_test_case=20,
            seed=5,
        ),
        workers=1,
        shards=SHARDS_PER_CELL,
        budget_overrides={
            (arch, "CT-COND", "skylake-v4-patched"): 60 * HEAVY_FACTOR * scale
        },
    )


def test_workstealing_speedup_and_byte_equality(scale, tmp_path):
    arch = os.environ.get("REPRO_ARCH", "x86_64")
    cores = _available_cores()
    spec = heterogeneous_spec(scale, arch)
    journal_dir = tmp_path / "journal"

    static = SweepRunner(spec, max_parallel_cells=4).run()
    stealing = SweepRunner(
        spec,
        max_parallel_cells=4,
        schedule="work-stealing",
        journal_dir=str(journal_dir),
    ).run()

    speedup = static.wall_seconds / stealing.wall_seconds
    gated = (
        cores >= 4
        or os.environ.get("REPRO_BENCH_STRICT_SPEEDUP") == "1"
    )
    print_table(
        "Work-stealing vs static cell placement (heterogeneous grid)",
        ["schedule", "wall s", "cases", "steal workers"],
        [
            ["static", f"{static.wall_seconds:.2f}",
             sum(r.campaign.merged.test_cases for r in static.results),
             "-"],
            ["work-stealing", f"{stealing.wall_seconds:.2f}",
             sum(r.campaign.merged.test_cases for r in stealing.results),
             stealing.steal_workers],
        ],
    )
    print(f"speedup: {speedup:.2f}x on {cores} core(s)")

    # 1. stealing moves wall clock, never bytes
    reports_equal = (
        stealing.cell_reports_json() == static.cell_reports_json()
    )
    assert reports_equal, (
        "work-stealing changed the merged cell reports"
    )
    # the timing claim rests on budget-bound cells: every contract in
    # the grid holds, so no cell stops early
    for result in stealing.results:
        assert not result.found, (
            f"{result.cell.label}: expected the contract to hold"
        )

    # 3. kill half the checkpoints; resume must reproduce the digest
    records = sorted(
        name for name in os.listdir(journal_dir)
        if name.startswith("shard-") and name.endswith(".pkl")
    )
    assert len(records) == len(stealing.results) * SHARDS_PER_CELL
    for name in records[::2]:
        os.unlink(journal_dir / name)
    resumed = SweepRunner(
        spec,
        max_parallel_cells=4,
        schedule="work-stealing",
        journal_dir=str(journal_dir),
        resume=True,
    ).run()
    resume_digest_equal = (
        resumed.report_digest() == stealing.report_digest()
    )
    assert resume_digest_equal, (
        "resuming from the journal changed the report digest"
    )

    emit_json(
        "workstealing",
        {
            "arch": arch,
            "cores": cores,
            "cells": [
                r.deterministic_report() for r in stealing.results
            ],
            "shards_per_cell": SHARDS_PER_CELL,
            "total_units": len(stealing.results) * SHARDS_PER_CELL,
            "steal_workers": stealing.steal_workers,
            "wall_seconds_static": static.wall_seconds,
            "wall_seconds_workstealing": stealing.wall_seconds,
            "speedup": speedup,
            "speedup_gated": gated,
            "reports_equal": reports_equal,
            "resume_digest_equal": resume_digest_equal,
        },
    )

    # 2. wall-clock scaling (needs real hardware parallelism; see
    # module docstring)
    if gated:
        assert speedup >= 1.3, (
            f"work stealing should beat static placement >=1.3x on "
            f"the heterogeneous grid with {cores} cores, "
            f"got {speedup:.2f}x"
        )
