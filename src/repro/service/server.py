"""Line-JSON socket server for :class:`~repro.service.jobs.CampaignService`.

Wire protocol (documented in docs/service.md): one JSON object per
line, UTF-8. Every request gets exactly one JSON response line, except
``results``, which streams one line per job event followed by a
terminator line ``{"ok": true, "end": true, ...}``. Operations:

- ``{"op": "ping"}``
- ``{"op": "submit", "spec": {...}}`` -> ``{"ok": true, "job_id": ...}``
- ``{"op": "status", "job_id": ...}``
- ``{"op": "jobs"}``
- ``{"op": "results", "job_id": ..., "wait": true, "start": 0}``

Errors come back as ``{"ok": false, "error": "..."}`` on the same
line slot a success would use. The server binds loopback by default
and is threaded: a client blocked streaming a long campaign's results
does not stall the next client's submit.
"""

from __future__ import annotations

import json
import socketserver
import threading
from typing import Any, Dict, Optional, Tuple

from repro.service.jobs import CampaignService


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            try:
                request = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                if not self._send({"ok": False, "error": "invalid JSON"}):
                    return
            else:
                if not isinstance(request, dict):
                    request = {"op": None}
                if not self._dispatch(request):
                    return

    def _send(self, payload: Dict[str, Any]) -> bool:
        """One response line; False when the client hung up."""
        try:
            self.wfile.write(
                json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
            )
            self.wfile.flush()
            return True
        except (BrokenPipeError, ConnectionResetError, OSError):
            return False

    def _dispatch(self, request: Dict[str, Any]) -> bool:
        service: CampaignService = self.server.service  # type: ignore
        op = request.get("op")
        if op == "ping":
            return self._send({"ok": True, "op": "ping"})
        if op == "submit":
            try:
                job_id = service.submit(request.get("spec") or {})
            except (TypeError, ValueError) as error:
                return self._send({"ok": False, "error": str(error)})
            return self._send({"ok": True, "job_id": job_id})
        if op == "status":
            try:
                status = service.status(str(request.get("job_id")))
            except KeyError as error:
                return self._send({"ok": False, "error": str(error)})
            return self._send({"ok": True, "status": status})
        if op == "jobs":
            return self._send({"ok": True, "jobs": service.jobs()})
        if op == "results":
            job_id = str(request.get("job_id"))
            wait = bool(request.get("wait", True))
            try:
                start = int(request.get("start", 0))
            except (TypeError, ValueError):
                return self._send({"ok": False, "error": "bad start index"})
            try:
                events = service.results(job_id, start=start, wait=wait)
                count = 0
                for event in events:
                    if not self._send({"ok": True, "event": event}):
                        return False
                    count += 1
            except KeyError as error:
                return self._send({"ok": False, "error": str(error)})
            return self._send(
                {"ok": True, "end": True, "job_id": job_id, "events": count}
            )
        return self._send({"ok": False, "error": f"unknown op {op!r}"})


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    service: CampaignService


class ServiceServer:
    """A listening campaign service; port 0 picks an ephemeral port."""

    def __init__(
        self,
        service: CampaignService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self._server = _Server((host, port), _Handler)
        self._server.service = service
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._server.server_address[:2]
        return host, port

    def serve_forever(self) -> None:
        self._server.serve_forever(poll_interval=0.2)

    def start_background(self) -> threading.Thread:
        """Serve from a daemon thread (tests, embedding)."""
        thread = threading.Thread(
            target=self.serve_forever, name="campaign-service", daemon=True
        )
        thread.start()
        self._thread = thread
        return thread

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
