"""Line-JSON socket server for :class:`~repro.service.jobs.CampaignService`.

Wire protocol (documented in docs/service.md): one JSON object per
line, UTF-8. Every request gets exactly one JSON response line, except
``results``, which streams one line per job event followed by a
terminator line ``{"ok": true, "end": true, ...}``. Operations:

- ``{"op": "ping"}``
- ``{"op": "submit", "spec": {...}}`` -> ``{"ok": true, "job_id": ...}``
- ``{"op": "status", "job_id": ...}``
- ``{"op": "cancel", "job_id": ...}``
- ``{"op": "jobs"}``
- ``{"op": "results", "job_id": ..., "wait": true, "start": 0}``

Errors come back as ``{"ok": false, "error": "..."}`` on the same
line slot a success would use; a full bounded queue answers ``submit``
with ``{"ok": false, "busy": true, "retry_after": N}``. While a
``results`` stream waits on a quiet job, the server interleaves
keepalive lines ``{"ok": true, "heartbeat": true}`` every
``heartbeat_s`` seconds — heartbeats are not job events and never
count toward ``start`` offsets. The server binds loopback by default
and is threaded: a client blocked streaming a long campaign's results
does not stall the next client's submit.

Shutdown drains: ``close()`` stops accepting, flips a draining flag
that ends in-flight ``results`` waits (their end line carries
``"draining": true``), gives handlers a bounded grace period, then
force-closes whatever lingers — and reports what it did, including the
jobs still running in the service behind it.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro import faults
from repro.service.jobs import CampaignService, ServiceBusy


class _Handler(socketserver.StreamRequestHandler):
    def setup(self) -> None:
        super().setup()
        server: _Server = self.server  # type: ignore[assignment]
        with server.handlers_lock:
            server.handlers[threading.current_thread()] = self.connection

    def finish(self) -> None:
        server: _Server = self.server  # type: ignore[assignment]
        with server.handlers_lock:
            server.handlers.pop(threading.current_thread(), None)
        super().finish()

    def handle(self) -> None:
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            try:
                request = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                if not self._send({"ok": False, "error": "invalid JSON"}):
                    return
            else:
                if not isinstance(request, dict):
                    request = {"op": None}
                if not self._dispatch(request):
                    return
            if self.server.draining:  # type: ignore[attr-defined]
                # finish the in-flight request, then hang up instead of
                # blocking on the next line — this is what lets close()
                # drain voluntarily rather than force-closing sockets
                return

    def _send(self, payload: Dict[str, Any]) -> bool:
        """One response line; False when the client hung up."""
        if faults.should_fire("server.send"):
            # injected connection drop: hang up mid-stream so the
            # client exercises its reconnect-and-resume path
            try:
                self.connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            return False
        try:
            self.wfile.write(
                json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
            )
            self.wfile.flush()
            return True
        except (BrokenPipeError, ConnectionResetError, OSError):
            return False

    def _dispatch(self, request: Dict[str, Any]) -> bool:
        server: _Server = self.server  # type: ignore[assignment]
        service: CampaignService = server.service
        op = request.get("op")
        if op == "ping":
            return self._send({"ok": True, "op": "ping"})
        if op == "submit":
            try:
                job_id = service.submit(request.get("spec") or {})
            except ServiceBusy as busy:
                return self._send(
                    {
                        "ok": False,
                        "busy": True,
                        "retry_after": busy.retry_after,
                        "error": str(busy),
                    }
                )
            except (TypeError, ValueError) as error:
                return self._send({"ok": False, "error": str(error)})
            return self._send({"ok": True, "job_id": job_id})
        if op == "status":
            try:
                status = service.status(str(request.get("job_id")))
            except KeyError as error:
                return self._send({"ok": False, "error": str(error)})
            return self._send({"ok": True, "status": status})
        if op == "cancel":
            try:
                status = service.cancel(str(request.get("job_id")))
            except KeyError as error:
                return self._send({"ok": False, "error": str(error)})
            return self._send({"ok": True, "status": status})
        if op == "jobs":
            return self._send({"ok": True, "jobs": service.jobs()})
        if op == "results":
            job_id = str(request.get("job_id"))
            wait = bool(request.get("wait", True))
            try:
                start = int(request.get("start", 0))
            except (TypeError, ValueError):
                return self._send({"ok": False, "error": "bad start index"})
            try:
                events = service.results(
                    job_id,
                    start=start,
                    wait=wait,
                    heartbeat_s=server.heartbeat_s,
                    should_stop=lambda: server.draining,
                )
                count = 0
                for event in events:
                    if event.get("event") == "heartbeat":
                        # keepalive, not a job event: no offset impact
                        if not self._send(
                            {"ok": True, "heartbeat": True,
                             "job_id": job_id}
                        ):
                            return False
                        continue
                    if not self._send({"ok": True, "event": event}):
                        return False
                    count += 1
            except KeyError as error:
                return self._send({"ok": False, "error": str(error)})
            end = {
                "ok": True, "end": True, "job_id": job_id, "events": count,
            }
            if server.draining:
                end["draining"] = True
            return self._send(end)
        return self._send({"ok": False, "error": f"unknown op {op!r}"})


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    service: CampaignService
    heartbeat_s: Optional[float] = None

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        #: live handler threads -> their connections, for drain/force
        self.handlers: Dict[threading.Thread, Any] = {}
        self.handlers_lock = threading.Lock()
        #: set by close(): in-flight results waits end promptly with a
        #: ``"draining": true`` terminator instead of blocking shutdown
        self.draining = False


class ServiceServer:
    """A listening campaign service; port 0 picks an ephemeral port.

    ``heartbeat_s`` is the keepalive cadence for idle ``results``
    streams; ``None`` disables heartbeats (a waiting client with a
    socket timeout shorter than its job may then time out — see
    docs/service.md).
    """

    def __init__(
        self,
        service: CampaignService,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_s: Optional[float] = 15.0,
    ) -> None:
        self.service = service
        self._server = _Server((host, port), _Handler)
        self._server.service = service
        self._server.heartbeat_s = heartbeat_s
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._server.server_address[:2]
        return host, port

    def serve_forever(self) -> None:
        self._server.serve_forever(poll_interval=0.2)

    def start_background(self) -> threading.Thread:
        """Serve from a daemon thread (tests, embedding)."""
        thread = threading.Thread(
            target=self.serve_forever, name="campaign-service", daemon=True
        )
        thread.start()
        self._thread = thread
        return thread

    def close(self, drain_s: float = 5.0) -> Dict[str, Any]:
        """Stop accepting, drain handlers, and report what remained.

        In-flight handlers get up to ``drain_s`` seconds to finish on
        their own (the draining flag unblocks ``results`` waits);
        stragglers have their connections force-closed and their
        threads joined. Returns a shutdown report::

            {"drained": bool,        # everyone left voluntarily
             "forced_connections": n,
             "running_jobs": [...]}  # service jobs still executing

        Running jobs are *not* the server's to kill — they belong to
        the :class:`CampaignService` (which may be persisting state for
        a later resume); the report surfaces them so the caller can
        decide.
        """
        server = self._server
        server.draining = True
        server.shutdown()
        deadline = time.monotonic() + max(0.0, drain_s)
        while time.monotonic() < deadline:
            with server.handlers_lock:
                if not server.handlers:
                    break
            time.sleep(0.05)
        with server.handlers_lock:
            lingering = list(server.handlers.items())
        for _thread, connection in lingering:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                connection.close()
            except OSError:
                pass
        for thread, _connection in lingering:
            thread.join(timeout=1.0)
        server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            if self._thread.is_alive():
                # keep the reference: a live serve thread is a leak the
                # caller should see, not one to silently drop
                pass
            else:
                self._thread = None
        running: List[str] = [
            job["job_id"]
            for job in self.service.jobs()
            if job["state"] in ("pending", "running")
        ]
        return {
            "drained": not lingering,
            "forced_connections": len(lingering),
            "running_jobs": running,
        }
