"""Job-queue front end: campaigns as requests, not shell sessions.

- :class:`CampaignService` — in-process job queue: ``submit(spec) ->
  job_id``, ``status(job_id)``, ``cancel(job_id)``,
  ``results(job_id)`` streaming incremental events (state changes,
  per-cell completions, violation records, the final report summary).
  Optional bounded queue (:class:`ServiceBusy` backpressure), per-job
  deadlines, and a crash-safe ``state_dir`` job table
  (:class:`ServiceState`).
- :class:`ServiceServer` / :class:`ServiceClient` — the same API over
  a loopback TCP socket speaking a line-JSON protocol (the ``serve``
  subcommand), with idle-stream heartbeats and client
  reconnect-and-resume (:class:`ConnectionLost`); see docs/service.md
  for the wire format and the robustness contract.
"""

from repro.service.jobs import (
    JOB_KINDS,
    JOB_STATES,
    TERMINAL_STATES,
    CampaignService,
    Job,
    JobSpec,
    ServiceBusy,
    violation_record,
)
from repro.service.server import ServiceServer
from repro.service.client import ConnectionLost, ServiceClient, ServiceError
from repro.service.state import ServiceState

__all__ = [
    "JOB_KINDS",
    "JOB_STATES",
    "TERMINAL_STATES",
    "CampaignService",
    "ConnectionLost",
    "Job",
    "JobSpec",
    "ServiceBusy",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ServiceState",
    "violation_record",
]
