"""Job-queue front end: campaigns as requests, not shell sessions.

- :class:`CampaignService` — in-process job queue: ``submit(spec) ->
  job_id``, ``status(job_id)``, ``results(job_id)`` streaming
  incremental events (state changes, per-cell completions, violation
  records, the final report summary).
- :class:`ServiceServer` / :class:`ServiceClient` — the same API over
  a loopback TCP socket speaking a line-JSON protocol (the ``serve``
  subcommand); see docs/service.md for the wire format.
"""

from repro.service.jobs import (
    JOB_KINDS,
    CampaignService,
    Job,
    JobSpec,
    violation_record,
)
from repro.service.server import ServiceServer
from repro.service.client import ServiceClient, ServiceError

__all__ = [
    "JOB_KINDS",
    "CampaignService",
    "Job",
    "JobSpec",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "violation_record",
]
