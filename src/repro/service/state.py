"""Crash-safe service state: the job table as a directory of JSON files.

A :class:`ServiceState` persists one file per job under
``<state_dir>/jobs/``, published with the same ``mkstemp`` ->
write -> ``os.replace`` discipline as the campaign journal: a reader
(including a restarted ``serve`` process) never observes a half-written
snapshot, and a service killed mid-save leaves at worst a stale temp
file, never a torn job record.

Persistence is best-effort by design — the service must keep running on
a full or read-only state disk. Every failed publication is counted in
:attr:`ServiceState.write_errors` and the in-memory job table stays
authoritative; only a *later* restart loses the unsaved updates, which
the journal-backed resume path then reconciles. The ``service.event``
fault site injects exactly this failure for the chaos suite.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, List, Mapping

from repro import faults

SCHEMA_VERSION = 1
_JOBS_SUBDIR = "jobs"


class ServiceState:
    """Directory-backed job-table persistence for one service."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.jobs_dir = os.path.join(directory, _JOBS_SUBDIR)
        os.makedirs(self.jobs_dir, exist_ok=True)
        #: snapshot publications that failed with an ``OSError`` and
        #: were skipped — the in-memory job table stays authoritative
        self.write_errors = 0

    def job_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.json")

    def save_job(self, payload: Mapping[str, Any]) -> bool:
        """Atomically publish one job snapshot; returns False when the
        write failed with an ``OSError`` and was skipped."""
        blob = json.dumps(
            dict(payload, schema=SCHEMA_VERSION),
            sort_keys=True,
            default=str,
        ).encode("utf-8")
        try:
            faults.inject_oserror("service.event")
            self._publish(self.job_path(str(payload["job_id"])), blob)
        except OSError:
            self.write_errors += 1
            return False
        return True

    def load_jobs(self) -> List[Dict[str, Any]]:
        """All valid job snapshots, sorted by job id.

        Torn, foreign, or schema-mismatched files are skipped — losing
        a snapshot only loses that job's *service-side* record; its
        campaign journal (if any) is untouched.
        """
        out: List[Dict[str, Any]] = []
        try:
            names = sorted(os.listdir(self.jobs_dir))
        except OSError:
            return out
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.jobs_dir, name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, ValueError):
                continue  # torn or unreadable: skip
            if not isinstance(payload, dict):
                continue
            if payload.get("schema") != SCHEMA_VERSION:
                continue
            if name != f"{payload.get('job_id')}.json":
                continue  # renamed/copied snapshot: identity lies
            out.append(payload)
        return sorted(out, key=lambda p: str(p["job_id"]))

    def _publish(self, path: str, blob: bytes) -> None:
        descriptor, temp_path = tempfile.mkstemp(
            dir=self.jobs_dir, prefix=".state-", suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(blob)
            os.chmod(temp_path, 0o644)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise


__all__ = ["SCHEMA_VERSION", "ServiceState"]
