"""Line-JSON client for the campaign service socket protocol.

Hardened against the failures a long-lived service connection actually
sees (docs/service.md "Robustness"):

- **Heartbeats.** The server interleaves ``{"ok": true, "heartbeat":
  true}`` keepalive lines while a ``results`` stream waits on a quiet
  job; the client swallows them, so a socket timeout shorter than the
  job no longer kills the wait.
- **Reconnect-and-resume.** With a :class:`~repro.faults.RetryPolicy`,
  a connection lost mid-stream (:class:`ConnectionLost`) is retried
  with capped, deterministically-jittered backoff, and the ``results``
  stream is re-issued from the offset of the last event actually
  received — events are neither dropped nor duplicated. Only
  idempotent operations reconnect; ``submit`` never auto-retries (a
  retry could double-submit).
- **Backpressure.** A server whose bounded queue is full answers
  ``submit`` with a busy line; the client raises
  :class:`~repro.service.jobs.ServiceBusy` carrying the server's
  ``retry_after`` hint.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Iterator, List, Optional

import json

from repro.faults import RetryPolicy
from repro.service.jobs import JobSpec, ServiceBusy


class ServiceError(RuntimeError):
    """The server answered ``{"ok": false, ...}``."""


class ConnectionLost(ServiceError):
    """The connection dropped (EOF, reset, timeout) — distinct from a
    protocol-level error so callers can tell "the server said no" from
    "the server went away"; only the latter is retried."""


class ServiceClient:
    """Talks the docs/service.md wire protocol to a running ``serve``.

    ``retry`` enables reconnect-and-resume: connection attempts and
    mid-stream drops back off per the policy, bounded by its
    ``attempts`` count of *consecutive* failures without progress (any
    received line, heartbeats included, resets the count). Without a
    policy the client fails fast on the first drop, matching the old
    behavior.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0,
        timeout: Optional[float] = 120.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self._socket: Optional[socket.socket] = None
        self._file: Optional[Any] = None
        self._connect()

    # -- plumbing -----------------------------------------------------

    def _connect(self) -> None:
        if self._socket is not None:
            return

        def dial() -> socket.socket:
            return socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )

        if self.retry is not None:
            self._socket = self.retry.call(dial, retry_on=(OSError,))
        else:
            self._socket = dial()
        self._file = self._socket.makefile("rwb")

    def _drop(self) -> None:
        """Tear down the current connection (best effort)."""
        file, sock = self._file, self._socket
        self._file = None
        self._socket = None
        try:
            if file is not None:
                file.close()
        except OSError:
            pass
        try:
            if sock is not None:
                sock.close()
        except OSError:
            pass

    def _reconnect(self) -> None:
        self._drop()
        self._connect()

    def _send(self, payload: Dict[str, Any]) -> None:
        self._connect()
        try:
            self._file.write(
                json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
            )
            self._file.flush()
        except OSError as error:
            raise ConnectionLost(f"send failed: {error}") from error

    def _read(self) -> Dict[str, Any]:
        try:
            line = self._file.readline()
        except socket.timeout as error:
            raise ConnectionLost(
                "timed out waiting for the server (no heartbeat within "
                f"{self.timeout}s)"
            ) from error
        except OSError as error:
            raise ConnectionLost(f"read failed: {error}") from error
        if not line:
            raise ConnectionLost("server closed the connection")
        response = json.loads(line.decode("utf-8"))
        if not isinstance(response, dict):
            raise ServiceError(f"malformed response: {response!r}")
        if not response.get("ok", False):
            if response.get("busy"):
                raise ServiceBusy(
                    retry_after=float(response.get("retry_after", 1.0))
                )
            raise ServiceError(response.get("error", "unknown error"))
        return response

    def _request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self._send(payload)
        return self._read()

    # -- operations ---------------------------------------------------

    def ping(self) -> bool:
        return self._request({"op": "ping"}).get("op") == "ping"

    def submit(self, spec: Any) -> str:
        """Submit a :class:`JobSpec` (or its dict form); returns job id.

        Never auto-retried: after a drop the client cannot know whether
        the server queued the job, so a retry could double-submit.
        Raises :class:`~repro.service.jobs.ServiceBusy` when the
        server's bounded queue is full.
        """
        if isinstance(spec, JobSpec):
            spec = spec.to_dict()
        return self._request({"op": "submit", "spec": spec})["job_id"]

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request({"op": "status", "job_id": job_id})["status"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Request cooperative cancellation; returns the job's status
        at the moment of the request (usually still ``running`` — the
        engines stop at their next measurement-batch boundary)."""
        return self._request({"op": "cancel", "job_id": job_id})["status"]

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request({"op": "jobs"})["jobs"]

    def results(
        self, job_id: str, wait: bool = True, start: int = 0
    ) -> Iterator[Dict[str, Any]]:
        """Stream the job's events until the server's ``end`` marker.

        Heartbeat keepalives are consumed silently. With a retry
        policy, a dropped connection re-issues the request from the
        offset after the last event received, so the merged stream is
        gap- and duplicate-free; a server that ends the stream while
        draining (shutdown) ends this iterator too — check ``status``
        afterwards.
        """
        offset = max(0, start)
        failures = 0
        while True:
            try:
                self._send(
                    {
                        "op": "results",
                        "job_id": job_id,
                        "wait": wait,
                        "start": offset,
                    }
                )
                while True:
                    response = self._read()
                    failures = 0  # any line is progress
                    if response.get("heartbeat"):
                        continue
                    if response.get("end"):
                        return
                    yield response["event"]
                    offset += 1
            except ConnectionLost:
                failures += 1
                if self.retry is None or failures > self.retry.attempts:
                    raise
                self.retry.sleep(self.retry.delay(failures - 1))
                self._reconnect()

    def close(self) -> None:
        self._drop()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
