"""Line-JSON client for the campaign service socket protocol."""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Iterator, List, Optional

from repro.service.jobs import JobSpec


class ServiceError(RuntimeError):
    """The server answered ``{"ok": false, ...}``."""


class ServiceClient:
    """Talks the docs/service.md wire protocol to a running ``serve``."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0,
        timeout: Optional[float] = 120.0,
    ) -> None:
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._file = self._socket.makefile("rwb")

    # -- plumbing -----------------------------------------------------

    def _send(self, payload: Dict[str, Any]) -> None:
        self._file.write(
            json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
        )
        self._file.flush()

    def _read(self) -> Dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ServiceError("server closed the connection")
        response = json.loads(line.decode("utf-8"))
        if not isinstance(response, dict):
            raise ServiceError(f"malformed response: {response!r}")
        if not response.get("ok", False):
            raise ServiceError(response.get("error", "unknown error"))
        return response

    def _request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self._send(payload)
        return self._read()

    # -- operations ---------------------------------------------------

    def ping(self) -> bool:
        return self._request({"op": "ping"}).get("op") == "ping"

    def submit(self, spec: Any) -> str:
        """Submit a :class:`JobSpec` (or its dict form); returns job id."""
        if isinstance(spec, JobSpec):
            spec = spec.to_dict()
        return self._request({"op": "submit", "spec": spec})["job_id"]

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request({"op": "status", "job_id": job_id})["status"]

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request({"op": "jobs"})["jobs"]

    def results(
        self, job_id: str, wait: bool = True, start: int = 0
    ) -> Iterator[Dict[str, Any]]:
        """Stream the job's events until the server's ``end`` marker."""
        self._send(
            {"op": "results", "job_id": job_id, "wait": wait, "start": start}
        )
        while True:
            response = self._read()
            if response.get("end"):
                return
            yield response["event"]

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
