"""The in-process campaign service: job specs, jobs, and the queue.

A :class:`JobSpec` pairs an :class:`~repro.api.EngineOptions` bag with
the run shape (kind, workers/shards/mode, sweep axes, scheduler,
journal). :class:`CampaignService` executes submitted specs on a small
thread pool — each job drives the ordinary multiprocessing engines
through :mod:`repro.api`, so the processes fan out exactly as the CLI
subcommands would — and accumulates an append-only event list per job.
``results()`` streams those events with condition-variable wakeups, so
a consumer can follow a running campaign live: every violation arrives
as a self-contained record the moment its cell completes, not when the
whole grid does.
"""

from __future__ import annotations

import itertools
import threading
import time
import traceback
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro import api
from repro.arch import get_architecture
from repro.core.trace_cache import program_fingerprint
from repro.core.violation import Violation

JOB_KINDS = ("fuzz", "campaign", "sweep")
JOB_STATES = ("pending", "running", "done", "failed")


def violation_record(violation: Violation) -> Dict[str, Any]:
    """A self-contained, JSON-ready description of one violation — the
    payload ``results()`` streams the moment a violation is confirmed."""
    arch = get_architecture(violation.arch_name)
    return {
        "arch": violation.arch_name,
        "contract": violation.contract_name,
        "cpu": violation.cpu_name,
        "classification": violation.classification,
        "program_fingerprint": program_fingerprint(
            violation.program, violation.arch_name
        ),
        "program": arch.render_program(violation.program),
        "positions": [violation.position_a, violation.position_b],
        "speculation_kinds": sorted(violation.speculation_kinds),
        "test_cases_until_found": violation.test_cases_until_found,
        "inputs_until_found": violation.inputs_until_found,
    }


@dataclass
class JobSpec:
    """One campaign request: what to run and how to shape it."""

    kind: str = "fuzz"
    options: api.EngineOptions = field(default_factory=api.EngineOptions)
    # campaign/sweep shape
    workers: int = 1
    shards: Optional[int] = None
    mode: str = "full"
    # sweep axes; empty means the options bag's scalar coordinates
    arches: Tuple[str, ...] = ()
    contracts: Tuple[str, ...] = ()
    cpus: Tuple[str, ...] = ()
    total_budget: Optional[int] = None
    parallel_cells: int = 1
    schedule: str = "static"
    # checkpoint/resume
    journal_dir: Optional[str] = None
    resume: bool = False

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {self.kind!r}; "
                f"expected one of {JOB_KINDS}"
            )
        if isinstance(self.options, Mapping):
            self.options = api.EngineOptions.from_dict(self.options)
        self.arches = tuple(self.arches)
        self.contracts = tuple(self.contracts)
        self.cpus = tuple(self.cpus)

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["arches"] = list(self.arches)
        data["contracts"] = list(self.contracts)
        data["cpus"] = list(self.cpus)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown JobSpec field(s): {', '.join(unknown)}"
            )
        return cls(**dict(data))


class Job:
    """One submitted campaign: state, event log, and wakeup plumbing."""

    def __init__(self, job_id: str, spec: JobSpec) -> None:
        self.id = job_id
        self.spec = spec
        self.state = "pending"
        self.error: Optional[str] = None
        self.events: List[Dict[str, Any]] = []
        self.violations = 0
        self.report_summary: Optional[Dict[str, Any]] = None
        self.submitted_at = time.time()
        self.condition = threading.Condition()

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed")

    def emit(self, event: Dict[str, Any]) -> None:
        with self.condition:
            self.events.append(dict(event, job_id=self.id))
            self.condition.notify_all()

    def set_state(self, state: str) -> None:
        assert state in JOB_STATES
        with self.condition:
            self.state = state
        self.emit({"event": "state", "state": state})

    def finish(
        self,
        state: str,
        error: Optional[str] = None,
        report: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Flip to a terminal state and append the final ``done`` event
        in one critical section, so a streaming consumer can never see
        the job finished without its last event."""
        assert state in ("done", "failed")
        with self.condition:
            self.error = error
            self.report_summary = report
            self.state = state
            self.events.append(
                {
                    "event": "done",
                    "state": state,
                    "error": error,
                    "report": report,
                    "job_id": self.id,
                }
            )
            self.condition.notify_all()

    def status(self) -> Dict[str, Any]:
        with self.condition:
            return {
                "job_id": self.id,
                "kind": self.spec.kind,
                "state": self.state,
                "events": len(self.events),
                "violations": self.violations,
                "error": self.error,
                "report": self.report_summary,
            }


class CampaignService:
    """In-process job queue over the :mod:`repro.api` facade.

    ``max_parallel_jobs`` bounds how many jobs *run* concurrently;
    submission never blocks — excess jobs queue as ``pending``. Each
    job still fans out its own worker processes, so size the bound for
    the host (one running job per core group, typically).
    """

    def __init__(self, max_parallel_jobs: int = 1) -> None:
        if max_parallel_jobs < 1:
            raise ValueError("max_parallel_jobs must be >= 1")
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._counter = itertools.count(1)
        self._executor = ThreadPoolExecutor(
            max_workers=max_parallel_jobs,
            thread_name_prefix="campaign-job",
        )

    # -- API ----------------------------------------------------------

    def submit(self, spec: Any) -> str:
        """Queue one job; returns its id immediately."""
        if isinstance(spec, Mapping):
            spec = JobSpec.from_dict(spec)
        if not isinstance(spec, JobSpec):
            raise ValueError(
                f"expected a JobSpec or mapping, got {type(spec).__name__}"
            )
        job_id = f"job-{next(self._counter):04d}-{uuid.uuid4().hex[:8]}"
        job = Job(job_id, spec)
        with self._lock:
            self._jobs[job_id] = job
        self._executor.submit(self._run, job)
        return job_id

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._get(job_id).status()

    def jobs(self) -> List[Dict[str, Any]]:
        with self._lock:
            jobs = list(self._jobs.values())
        return [job.status() for job in sorted(jobs, key=lambda j: j.id)]

    def results(
        self,
        job_id: str,
        start: int = 0,
        wait: bool = True,
    ) -> Iterator[Dict[str, Any]]:
        """Yield the job's events from index ``start``.

        With ``wait=True`` the iterator follows a running job until its
        final ``done`` event; with ``wait=False`` it returns whatever
        has accumulated so far.
        """
        job = self._get(job_id)
        index = max(0, start)
        while True:
            with job.condition:
                while (
                    wait and index >= len(job.events) and not job.finished
                ):
                    job.condition.wait(0.2)
                batch = list(job.events[index:])
                drained = job.finished or not wait
            for event in batch:
                yield event
            index += len(batch)
            if drained and not batch:
                return
            if not wait:
                return

    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)

    # -- execution ----------------------------------------------------

    def _get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"unknown job id {job_id!r}") from None

    def _run(self, job: Job) -> None:
        job.set_state("running")
        try:
            runner = {
                "fuzz": self._run_fuzz,
                "campaign": self._run_campaign,
                "sweep": self._run_sweep,
            }[job.spec.kind]
            summary = runner(job)
        except BaseException:
            job.finish("failed", error=traceback.format_exc())
        else:
            job.finish("done", report=summary)

    def _record_violation(
        self, job: Job, violation: Optional[Violation], **context: Any
    ) -> None:
        if violation is None:
            return
        with job.condition:
            job.violations += 1
        job.emit(
            {
                "event": "violation",
                "record": violation_record(violation),
                **context,
            }
        )

    def _run_fuzz(self, job: Job) -> Dict[str, Any]:
        report = api.run_fuzz(job.spec.options)
        self._record_violation(job, report.violation)
        return {
            "kind": "fuzz",
            "found": report.found,
            "test_cases": report.test_cases,
            "inputs_tested": report.inputs_tested,
        }

    def _run_campaign(self, job: Job) -> Dict[str, Any]:
        spec = job.spec
        report = api.run_campaign(
            spec.options,
            workers=spec.workers,
            shards=spec.shards,
            mode=spec.mode,
            journal_dir=spec.journal_dir,
            resume=spec.resume,
        )
        self._record_violation(
            job, report.violation, winning_shard=report.winning_shard
        )
        return {
            "kind": "campaign",
            "found": report.found,
            "test_cases": report.merged.test_cases,
            "inputs_tested": report.merged.inputs_tested,
            "shards": report.shards,
            "digest": report.report_digest(),
        }

    def _run_sweep(self, job: Job) -> Dict[str, Any]:
        spec = job.spec

        def progress(cell, campaign) -> None:
            job.emit(
                {
                    "event": "cell",
                    "cell": cell.label,
                    "found": campaign.found,
                    "test_cases": campaign.merged.test_cases,
                }
            )
            self._record_violation(
                job, campaign.violation, cell=cell.label
            )

        report = api.run_sweep(
            spec.options,
            arches=spec.arches,
            contracts=spec.contracts,
            cpus=spec.cpus,
            workers=spec.workers,
            shards=spec.shards,
            mode=spec.mode,
            total_budget=spec.total_budget,
            parallel_cells=spec.parallel_cells,
            schedule=spec.schedule,
            journal_dir=spec.journal_dir,
            resume=spec.resume,
            progress=progress,
        )
        return {
            "kind": "sweep",
            "cells": len(report.results),
            "violations_found": report.violations_found,
            "digest": report.report_digest(),
        }
