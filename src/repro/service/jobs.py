"""The in-process campaign service: job specs, jobs, and the queue.

A :class:`JobSpec` pairs an :class:`~repro.api.EngineOptions` bag with
the run shape (kind, workers/shards/mode, sweep axes, scheduler,
journal). :class:`CampaignService` executes submitted specs on a small
thread pool — each job drives the ordinary multiprocessing engines
through :mod:`repro.api`, so the processes fan out exactly as the CLI
subcommands would — and accumulates an append-only event list per job.
``results()`` streams those events with condition-variable wakeups, so
a consumer can follow a running campaign live: every violation arrives
as a self-contained record the moment its cell completes, not when the
whole grid does.

Lifecycle hardening (docs/service.md "Robustness"):

- **Cancellation and deadlines.** ``cancel(job_id)`` sets a cooperative
  stop flag; a per-job ``deadline_s`` arms a wall-clock bound counted
  from when the job starts running. Both are threaded through
  :mod:`repro.api` as a ``should_stop`` callable that the engines poll
  between measurement batches, so in-flight worker processes wind down
  at their next boundary — no orphans. The resulting terminal states
  are ``cancelled`` and ``timeout``; journaled checkpoints written
  before the stop survive for a later resume.
- **Backpressure.** ``max_queued_jobs`` bounds the pending queue;
  ``submit`` on a full service raises :class:`ServiceBusy` carrying a
  ``retry_after`` hint instead of queueing unboundedly.
- **Crash safety.** With a ``state_dir``, every job mutation publishes
  an atomic snapshot (:class:`~repro.service.state.ServiceState`); a
  restarted service rebuilds its job table from the snapshots, keeps
  terminal jobs as history, and resubmits interrupted ones — flipping
  ``resume=True`` when the job's campaign journal already exists, so
  the re-run replays checkpoints instead of starting over.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import traceback
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro import api
from repro.arch import get_architecture
from repro.core.trace_cache import program_fingerprint
from repro.core.violation import Violation
from repro.service.state import ServiceState

JOB_KINDS = ("fuzz", "campaign", "sweep")
JOB_STATES = (
    "pending", "running", "done", "failed", "cancelled", "timeout",
)
#: states a job can never leave
TERMINAL_STATES = ("done", "failed", "cancelled", "timeout")


class ServiceBusy(RuntimeError):
    """The service's bounded queue is full; try again later.

    Carries a ``retry_after`` hint (seconds). Deliberately a plain
    ``RuntimeError`` rather than a :class:`~repro.service.client.
    ServiceError` subclass — the client module imports this one, not
    the other way around.
    """

    def __init__(self, retry_after: float) -> None:
        super().__init__(
            f"service queue is full; retry after {retry_after:.0f}s"
        )
        self.retry_after = retry_after


def violation_record(violation: Violation) -> Dict[str, Any]:
    """A self-contained, JSON-ready description of one violation — the
    payload ``results()`` streams the moment a violation is confirmed."""
    arch = get_architecture(violation.arch_name)
    return {
        "arch": violation.arch_name,
        "contract": violation.contract_name,
        "cpu": violation.cpu_name,
        "classification": violation.classification,
        "program_fingerprint": program_fingerprint(
            violation.program, violation.arch_name
        ),
        "program": arch.render_program(violation.program),
        "positions": [violation.position_a, violation.position_b],
        "speculation_kinds": sorted(violation.speculation_kinds),
        "test_cases_until_found": violation.test_cases_until_found,
        "inputs_until_found": violation.inputs_until_found,
    }


@dataclass
class JobSpec:
    """One campaign request: what to run and how to shape it."""

    kind: str = "fuzz"
    options: api.EngineOptions = field(default_factory=api.EngineOptions)
    # campaign/sweep shape
    workers: int = 1
    shards: Optional[int] = None
    mode: str = "full"
    # sweep axes; empty means the options bag's scalar coordinates
    arches: Tuple[str, ...] = ()
    contracts: Tuple[str, ...] = ()
    cpus: Tuple[str, ...] = ()
    total_budget: Optional[int] = None
    parallel_cells: int = 1
    schedule: str = "static"
    # checkpoint/resume
    journal_dir: Optional[str] = None
    resume: bool = False
    #: wall-clock bound in seconds, counted from when the job starts
    #: running; expiry stops the engines cooperatively and lands the
    #: job in the ``timeout`` terminal state
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {self.kind!r}; "
                f"expected one of {JOB_KINDS}"
            )
        if isinstance(self.options, Mapping):
            self.options = api.EngineOptions.from_dict(self.options)
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        self.arches = tuple(self.arches)
        self.contracts = tuple(self.contracts)
        self.cpus = tuple(self.cpus)

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["arches"] = list(self.arches)
        data["contracts"] = list(self.contracts)
        data["cpus"] = list(self.cpus)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown JobSpec field(s): {', '.join(unknown)}"
            )
        return cls(**dict(data))


class Job:
    """One submitted campaign: state, event log, and wakeup plumbing."""

    def __init__(self, job_id: str, spec: JobSpec) -> None:
        self.id = job_id
        self.spec = spec
        self.state = "pending"
        self.error: Optional[str] = None
        self.events: List[Dict[str, Any]] = []
        self.violations = 0
        self.report_summary: Optional[Dict[str, Any]] = None
        self.submitted_at = time.time()
        self.condition = threading.Condition()
        #: cooperative stop flag, set by cancel() and polled by the
        #: engines between measurement batches
        self.cancel_event = threading.Event()
        #: persistence hook the owning service installs; called after
        #: every mutation, outside the condition lock
        self.on_change: Optional[Callable[["Job"], None]] = None

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    def _changed(self) -> None:
        if self.on_change is not None:
            self.on_change(self)

    def emit(self, event: Dict[str, Any]) -> None:
        with self.condition:
            self.events.append(dict(event, job_id=self.id))
            self.condition.notify_all()
        self._changed()

    def set_state(self, state: str) -> None:
        assert state in JOB_STATES
        with self.condition:
            self.state = state
        self.emit({"event": "state", "state": state})

    def finish(
        self,
        state: str,
        error: Optional[str] = None,
        report: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Flip to a terminal state and append the final ``done`` event
        in one critical section, so a streaming consumer can never see
        the job finished without its last event."""
        assert state in TERMINAL_STATES
        with self.condition:
            self.error = error
            self.report_summary = report
            self.state = state
            self.events.append(
                {
                    "event": "done",
                    "state": state,
                    "error": error,
                    "report": report,
                    "job_id": self.id,
                }
            )
            self.condition.notify_all()
        self._changed()

    def status(self) -> Dict[str, Any]:
        with self.condition:
            return {
                "job_id": self.id,
                "kind": self.spec.kind,
                "state": self.state,
                "events": len(self.events),
                "violations": self.violations,
                "error": self.error,
                "report": self.report_summary,
            }

    def snapshot(self) -> Dict[str, Any]:
        """The persistable job record a restarted service rebuilds
        from; everything JSON-ready."""
        with self.condition:
            return {
                "job_id": self.id,
                "spec": self.spec.to_dict(),
                "state": self.state,
                "submitted_at": self.submitted_at,
                "events": list(self.events),
                "violations": self.violations,
                "error": self.error,
                "report": self.report_summary,
            }


class CampaignService:
    """In-process job queue over the :mod:`repro.api` facade.

    ``max_parallel_jobs`` bounds how many jobs *run* concurrently; each
    job still fans out its own worker processes, so size the bound for
    the host (one running job per core group, typically).
    ``max_queued_jobs`` (``None`` = unbounded, the legacy behavior)
    bounds the pending backlog — a full service rejects ``submit`` with
    :class:`ServiceBusy` instead of queueing without limit. With a
    ``state_dir`` the job table survives a crash: see the module
    docstring's crash-safety notes.
    """

    def __init__(
        self,
        max_parallel_jobs: int = 1,
        max_queued_jobs: Optional[int] = None,
        state_dir: Optional[str] = None,
    ) -> None:
        if max_parallel_jobs < 1:
            raise ValueError("max_parallel_jobs must be >= 1")
        if max_queued_jobs is not None and max_queued_jobs < 0:
            raise ValueError("max_queued_jobs must be >= 0")
        self.max_parallel_jobs = max_parallel_jobs
        self.max_queued_jobs = max_queued_jobs
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._counter = itertools.count(1)
        self._executor = ThreadPoolExecutor(
            max_workers=max_parallel_jobs,
            thread_name_prefix="campaign-job",
        )
        self.state = ServiceState(state_dir) if state_dir else None
        #: job ids rebuilt from the state dir at startup, terminal and
        #: interrupted alike (the latter are resubmitted)
        self.recovered_jobs: List[str] = []
        if self.state is not None:
            self._recover()

    # -- API ----------------------------------------------------------

    def submit(self, spec: Any) -> str:
        """Queue one job; returns its id immediately.

        Raises :class:`ServiceBusy` when the bounded queue is full —
        the ``retry_after`` hint scales with the backlog, so callers
        back off harder the deeper the queue.
        """
        if isinstance(spec, Mapping):
            spec = JobSpec.from_dict(spec)
        if not isinstance(spec, JobSpec):
            raise ValueError(
                f"expected a JobSpec or mapping, got {type(spec).__name__}"
            )
        with self._lock:
            if self.max_queued_jobs is not None:
                active = sum(
                    1 for job in self._jobs.values() if not job.finished
                )
                capacity = self.max_parallel_jobs + self.max_queued_jobs
                if active >= capacity:
                    raise ServiceBusy(
                        retry_after=float(
                            max(1, active - self.max_parallel_jobs + 1)
                        )
                    )
            job_id = f"job-{next(self._counter):04d}-{uuid.uuid4().hex[:8]}"
            job = Job(job_id, spec)
            self._install(job)
            self._jobs[job_id] = job
        self._persist(job)
        self._executor.submit(self._run, job)
        return job_id

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Request cooperative cancellation; returns the job's status.

        Idempotent: cancelling a finished job changes nothing, and
        repeated cancels of a running job just re-set the flag. The
        engines stop at their next measurement-batch boundary, so the
        terminal ``cancelled`` state lands shortly after, not
        instantly.
        """
        job = self._get(job_id)
        if not job.finished:
            job.cancel_event.set()
        return job.status()

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._get(job_id).status()

    def jobs(self) -> List[Dict[str, Any]]:
        with self._lock:
            jobs = list(self._jobs.values())
        return [job.status() for job in sorted(jobs, key=lambda j: j.id)]

    def results(
        self,
        job_id: str,
        start: int = 0,
        wait: bool = True,
        heartbeat_s: Optional[float] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Yield the job's events from index ``start``.

        With ``wait=True`` the iterator follows a running job until its
        final ``done`` event; with ``wait=False`` it returns whatever
        has accumulated so far. ``heartbeat_s`` bounds how long a
        waiting iterator stays silent: whenever that many seconds pass
        without a real event, a ``{"event": "heartbeat"}`` sentinel is
        yielded (the server turns it into a keepalive line; it is not
        part of the job's event log and never advances ``start``
        offsets). ``should_stop`` ends the stream early — the server's
        drain path uses it to unblock waiting consumers at shutdown.
        """
        job = self._get(job_id)
        index = max(0, start)
        while True:
            if should_stop is not None and should_stop():
                return
            with job.condition:
                deadline = (
                    time.monotonic() + heartbeat_s
                    if heartbeat_s is not None
                    else None
                )
                while (
                    wait and index >= len(job.events) and not job.finished
                ):
                    if should_stop is not None and should_stop():
                        return
                    if (
                        deadline is not None
                        and time.monotonic() >= deadline
                    ):
                        break
                    job.condition.wait(0.2)
                batch = list(job.events[index:])
                drained = job.finished or not wait
            if not batch and wait and not drained:
                # heartbeat interval elapsed with nothing to stream
                yield {"event": "heartbeat", "job_id": job_id}
                continue
            for event in batch:
                yield event
            index += len(batch)
            if drained and not batch:
                return
            if not wait:
                return

    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)

    # -- persistence / recovery ---------------------------------------

    def _install(self, job: Job) -> None:
        if self.state is not None:
            job.on_change = self._persist

    def _persist(self, job: Job) -> None:
        if self.state is not None:
            self.state.save_job(job.snapshot())

    def _recover(self) -> None:
        """Rebuild the job table from the state dir.

        Terminal jobs come back as queryable history. Interrupted jobs
        (``pending``/``running`` at crash time) are resubmitted with a
        fresh event log; when the job's campaign journal was already
        started, ``resume`` is flipped on so the re-run replays its
        checkpoints and converges on the same report the uninterrupted
        run would have produced.
        """
        assert self.state is not None
        max_index = 0
        for payload in self.state.load_jobs():
            job_id = str(payload["job_id"])
            try:
                max_index = max(max_index, int(job_id.split("-")[1]))
            except (IndexError, ValueError):
                pass
            try:
                spec = JobSpec.from_dict(payload.get("spec") or {})
            except (TypeError, ValueError):
                continue  # unparseable spec: skip the record
            state = payload.get("state")
            job = Job(job_id, spec)
            job.submitted_at = payload.get(
                "submitted_at", job.submitted_at
            )
            if state in TERMINAL_STATES:
                job.state = state
                job.error = payload.get("error")
                job.report_summary = payload.get("report")
                job.violations = int(payload.get("violations") or 0)
                events = payload.get("events")
                if isinstance(events, list):
                    job.events = [e for e in events if isinstance(e, dict)]
                self._install(job)
                self._jobs[job_id] = job
                self.recovered_jobs.append(job_id)
                continue
            # interrupted: resubmit, resuming from the journal when one
            # was started (its spec.json is the started marker)
            if (
                spec.journal_dir
                and not spec.resume
                and os.path.exists(
                    os.path.join(spec.journal_dir, "spec.json")
                )
            ):
                spec.resume = True
            self._install(job)
            job.emit({"event": "recovered", "previous_state": state})
            self._jobs[job_id] = job
            self.recovered_jobs.append(job_id)
            self._persist(job)
            self._executor.submit(self._run, job)
        self._counter = itertools.count(max_index + 1)

    # -- execution ----------------------------------------------------

    def _get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"unknown job id {job_id!r}") from None

    def _run(self, job: Job) -> None:
        if job.cancel_event.is_set():
            # cancelled while still queued: never ran, no partial work
            job.finish("cancelled", error="cancelled before start")
            return
        deadline: Optional[float] = None
        if job.spec.deadline_s is not None:
            deadline = time.monotonic() + job.spec.deadline_s

        def stop_reason() -> Optional[str]:
            if job.cancel_event.is_set():
                return "cancelled"
            if deadline is not None and time.monotonic() >= deadline:
                return "timeout"
            return None

        def should_stop() -> bool:
            return stop_reason() is not None

        job.set_state("running")
        try:
            runner = {
                "fuzz": self._run_fuzz,
                "campaign": self._run_campaign,
                "sweep": self._run_sweep,
            }[job.spec.kind]
            summary = runner(job, should_stop)
        except api.CampaignCancelled as stop:
            # the engines unwound cooperatively: worker pools are joined
            # and journaled checkpoints survive for a later resume
            job.finish(stop_reason() or "cancelled", error=str(stop))
        except BaseException:
            job.finish("failed", error=traceback.format_exc())
        else:
            job.finish("done", report=summary)

    def _record_violation(
        self, job: Job, violation: Optional[Violation], **context: Any
    ) -> None:
        if violation is None:
            return
        with job.condition:
            job.violations += 1
        job.emit(
            {
                "event": "violation",
                "record": violation_record(violation),
                **context,
            }
        )

    def _run_fuzz(self, job: Job, should_stop) -> Dict[str, Any]:
        report = api.run_fuzz(job.spec.options, should_stop=should_stop)
        if report.cancelled:
            # single-process fuzzing returns a partial report instead of
            # raising; normalize to the campaign-style signal so _run
            # maps it to the right terminal state
            raise api.CampaignCancelled(
                f"fuzz stopped after {report.test_cases} test case(s)"
            )
        self._record_violation(job, report.violation)
        return {
            "kind": "fuzz",
            "found": report.found,
            "test_cases": report.test_cases,
            "inputs_tested": report.inputs_tested,
        }

    def _run_campaign(self, job: Job, should_stop) -> Dict[str, Any]:
        spec = job.spec
        report = api.run_campaign(
            spec.options,
            workers=spec.workers,
            shards=spec.shards,
            mode=spec.mode,
            journal_dir=spec.journal_dir,
            resume=spec.resume,
            should_stop=should_stop,
        )
        self._record_violation(
            job, report.violation, winning_shard=report.winning_shard
        )
        return {
            "kind": "campaign",
            "found": report.found,
            "test_cases": report.merged.test_cases,
            "inputs_tested": report.merged.inputs_tested,
            "shards": report.shards,
            "digest": report.report_digest(),
        }

    def _run_sweep(self, job: Job, should_stop) -> Dict[str, Any]:
        spec = job.spec

        def progress(cell, campaign) -> None:
            job.emit(
                {
                    "event": "cell",
                    "cell": cell.label,
                    "found": campaign.found,
                    "test_cases": campaign.merged.test_cases,
                }
            )
            self._record_violation(
                job, campaign.violation, cell=cell.label
            )

        report = api.run_sweep(
            spec.options,
            arches=spec.arches,
            contracts=spec.contracts,
            cpus=spec.cpus,
            workers=spec.workers,
            shards=spec.shards,
            mode=spec.mode,
            total_budget=spec.total_budget,
            parallel_cells=spec.parallel_cells,
            schedule=spec.schedule,
            journal_dir=spec.journal_dir,
            resume=spec.resume,
            progress=progress,
            should_stop=should_stop,
        )
        return {
            "kind": "sweep",
            "cells": len(report.results),
            "violations_found": report.violations_found,
            "digest": report.report_digest(),
        }
