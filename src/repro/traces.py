"""Trace types shared by the contract model, the executor and the analyzer.

A *contract trace* (:class:`CTrace`) is the sequence of observations a
contract permits to be exposed during one execution (paper §2.2). A
*hardware trace* (:class:`HTrace`) is what the side-channel measurement
observes on the (simulated) CPU — for Prime+Probe, the set of L1D cache
sets touched by the test case (paper §5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Sequence, Tuple

#: One contract observation: a tag and a value, e.g. ``("ld", 0x10040)``.
#: Tags: "ld" (load address), "st" (store address), "pc" (program counter),
#: "val" (loaded value, ARCH contracts only).
Observation = Tuple[str, int]


@dataclass(frozen=True)
class CTrace:
    """An ordered, hashable contract trace."""

    observations: Tuple[Observation, ...]

    def __len__(self) -> int:
        return len(self.observations)

    def __iter__(self):
        return iter(self.observations)

    def __str__(self) -> str:
        rendered = ", ".join(f"{tag}:{value:#x}" for tag, value in self.observations)
        return f"[{rendered}]"

    def addresses(self, tag: str) -> Tuple[int, ...]:
        """All observation values with the given tag, in order."""
        return tuple(value for t, value in self.observations if t == tag)


@dataclass(frozen=True)
class HTrace:
    """A hardware trace: the set of observed side-channel signals.

    For cache attacks each signal is a cache set index (Prime+Probe) or a
    monitored memory block index (Flush+Reload / Evict+Reload).
    """

    signals: FrozenSet[int]
    num_slots: int = 64

    @classmethod
    def from_signals(cls, signals: Iterable[int], num_slots: int = 64) -> "HTrace":
        return cls(frozenset(signals), num_slots)

    @classmethod
    def empty(cls, num_slots: int = 64) -> "HTrace":
        return cls(frozenset(), num_slots)

    def union(self, other: "HTrace") -> "HTrace":
        return HTrace(self.signals | other.signals, self.num_slots)

    def issubset(self, other: "HTrace") -> bool:
        return self.signals <= other.signals

    def __len__(self) -> int:
        return len(self.signals)

    def __contains__(self, signal: int) -> bool:
        return signal in self.signals

    def bitmap(self) -> str:
        """Render as the bit string used in the paper's §5.3 example."""
        return "".join(
            "1" if slot in self.signals else "0" for slot in range(self.num_slots)
        )

    def __str__(self) -> str:
        return self.bitmap()


def merge_hardware_traces(traces: Sequence[HTrace]) -> HTrace:
    """Union of repeated measurements of the same input (paper §5.3)."""
    if not traces:
        raise ValueError("no traces to merge")
    merged = traces[0]
    for trace in traces[1:]:
        merged = merged.union(trace)
    return merged


@dataclass
class ExecutionLogEntry:
    """One executed instruction recorded by the model (for §5.6 patterns)."""

    pc: int
    mnemonic: str
    registers_read: Tuple[str, ...]
    registers_written: Tuple[str, ...]
    flags_read: Tuple[str, ...]
    flags_written: Tuple[str, ...]
    is_load: bool
    is_store: bool
    is_cond_branch: bool
    is_uncond_branch: bool
    addresses: Tuple[int, ...]
    speculative: bool


@dataclass
class ExecutionLog:
    """The instruction stream observed by the model during one input."""

    entries: List[ExecutionLogEntry] = field(default_factory=list)

    def architectural(self) -> List[ExecutionLogEntry]:
        """Only the non-speculative part of the stream."""
        return [entry for entry in self.entries if not entry.speculative]

    def __len__(self) -> int:
        return len(self.entries)


__all__ = [
    "CTrace",
    "ExecutionLog",
    "ExecutionLogEntry",
    "HTrace",
    "Observation",
    "merge_hardware_traces",
]
