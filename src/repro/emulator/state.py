"""Architectural state: registers, flags and the memory sandbox.

The paper confines all memory accesses of a test case to a *sandbox* of one
or two 4KB pages (§5.1) whose base address lives in a reserved register
(R14 on x86-64, X27 on AArch64). An *input* (paper §5.2) is an assignment
of values to registers, flag bits and the sandbox memory.

The register file, flag bits and sandbox/stack conventions come from the
:class:`~repro.arch.base.Architecture` descriptor; when none is given the
default (x86-64) backend is used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.emulator.errors import SandboxViolation


def _default_architecture():
    from repro.arch import get_architecture

    return get_architecture("x86_64")

PAGE_SIZE = 4096

_WIDTH_MASKS = {8: 0xFF, 16: 0xFFFF, 32: 0xFFFFFFFF, 64: 0xFFFFFFFFFFFFFFFF}


@dataclass(frozen=True)
class SandboxLayout:
    """Geometry of the memory sandbox.

    The first page is the *main* area used by generated code; the second
    page (when present) hosts the assist page for ``*+Assist`` executor
    modes and the stack used by CALL/RET gadgets.
    """

    base: int = 0x10000
    num_pages: int = 2

    @property
    def size(self) -> int:
        return self.num_pages * PAGE_SIZE

    @property
    def end(self) -> int:
        return self.base + self.size

    @property
    def main_area_size(self) -> int:
        return PAGE_SIZE

    @property
    def assist_page_index(self) -> int:
        """Page whose accessed bit is cleared in ``*+Assist`` modes."""
        return self.num_pages - 1

    @property
    def stack_top(self) -> int:
        """Initial stack pointer for gadgets that use CALL/RET."""
        return self.end - 8

    def contains(self, address: int, size: int = 1) -> bool:
        return self.base <= address and address + size <= self.end

    def page_of(self, address: int) -> int:
        return (address - self.base) // PAGE_SIZE

    def __repr__(self) -> str:
        return f"SandboxLayout(base={self.base:#x}, pages={self.num_pages})"


@dataclass(frozen=True)
class InputData:
    """One input to a test case: register, flag and memory initialization.

    ``memory`` may be shorter than the sandbox; the remainder is zeroed.
    ``seed`` records the PRNG seed for reproducibility and debugging.
    """

    registers: Mapping[str, int] = field(default_factory=dict)
    flags: Mapping[str, bool] = field(default_factory=dict)
    memory: bytes = b""
    seed: Optional[int] = None

    def fingerprint(self) -> int:
        """A stable hash usable as a dictionary key in reports."""
        items: Tuple = (
            tuple(sorted(self.registers.items())),
            tuple(sorted(self.flags.items())),
            self.memory,
        )
        return hash(items)

    def __repr__(self) -> str:
        regs = ", ".join(f"{r}={v:#x}" for r, v in sorted(self.registers.items()))
        return f"InputData(seed={self.seed}, {regs}, mem[{len(self.memory)}])"


Snapshot = Tuple[Dict[str, int], Dict[str, bool], bytes]


class ArchState:
    """Mutable architectural state of the emulated machine.

    ``arch`` selects the register file and the fixed-register
    conventions; it defaults to the x86-64 backend.
    """

    def __init__(self, layout: Optional[SandboxLayout] = None, arch=None):
        self.arch = arch or _default_architecture()
        self.layout = layout or SandboxLayout()
        regfile = self.arch.registers
        self.registers: Dict[str, int] = {name: 0 for name in regfile.gpr_names}
        self.flags: Dict[str, bool] = {flag: False for flag in regfile.flag_bits}
        self.memory = bytearray(self.layout.size)
        self._reset_fixed_registers()

    def _reset_fixed_registers(self) -> None:
        regfile = self.arch.registers
        self.registers[regfile.sandbox_base_register] = self.layout.base
        if regfile.stack_register is not None:
            self.registers[regfile.stack_register] = self.layout.stack_top

    def load_input(self, input_data: InputData) -> None:
        """Reset the state and apply an input (paper §5.3 step 2)."""
        for name in self.arch.registers.gpr_names:
            self.registers[name] = 0
        for flag in self.arch.registers.flag_bits:
            self.flags[flag] = False
        for name, value in input_data.registers.items():
            self.write_register(name, value)
        for flag, value in input_data.flags.items():
            if flag not in self.flags:
                raise KeyError(f"unknown flag: {flag!r}")
            self.flags[flag] = bool(value)
        data = input_data.memory[: self.layout.size]
        self.memory[: len(data)] = data
        for i in range(len(data), self.layout.size):
            self.memory[i] = 0
        self._reset_fixed_registers()

    # -- registers ---------------------------------------------------------

    def read_register(self, name: str) -> int:
        """Read a register view, masked to its width."""
        regfile = self.arch.registers
        return self.registers[regfile.canonical(name)] & _WIDTH_MASKS[
            regfile.width(name)
        ]

    def write_register(self, name: str, value: int) -> None:
        """Write a register view: 64-bit writes replace, 32-bit writes
        zero-extend (x86-64 and AArch64 agree), narrower views merge."""
        regfile = self.arch.registers
        canonical = regfile.canonical(name)
        width = regfile.width(name)
        value &= _WIDTH_MASKS[width]
        if width >= 32:
            # 64-bit writes replace; 32-bit writes zero the upper half.
            self.registers[canonical] = value
        else:
            mask = _WIDTH_MASKS[width]
            old = self.registers[canonical]
            self.registers[canonical] = (old & ~mask) | value

    # -- flags --------------------------------------------------------------

    def read_flag(self, flag: str) -> bool:
        return self.flags[flag]

    def write_flag(self, flag: str, value: bool) -> None:
        if flag not in self.flags:
            raise KeyError(f"unknown flag: {flag!r}")
        self.flags[flag] = bool(value)

    # -- memory --------------------------------------------------------------

    def _check_bounds(self, address: int, size: int) -> None:
        if not self.layout.contains(address, size):
            raise SandboxViolation(address, size, repr(self.layout))

    def read_memory(self, address: int, size: int) -> int:
        """Read ``size`` bytes at ``address`` (little-endian integer)."""
        self._check_bounds(address, size)
        offset = address - self.layout.base
        return int.from_bytes(self.memory[offset : offset + size], "little")

    def write_memory(self, address: int, size: int, value: int) -> None:
        """Write ``size`` bytes at ``address`` (little-endian)."""
        self._check_bounds(address, size)
        offset = address - self.layout.base
        value &= (1 << (size * 8)) - 1
        self.memory[offset : offset + size] = value.to_bytes(size, "little")

    # -- checkpoints (paper §5.4 execution clauses) ---------------------------

    def snapshot(self) -> Snapshot:
        """Capture a checkpoint for speculative rollback."""
        return (dict(self.registers), dict(self.flags), bytes(self.memory))

    def restore(self, snapshot: Snapshot) -> None:
        """Roll back to a checkpoint."""
        registers, flags, memory = snapshot
        self.registers = dict(registers)
        self.flags = dict(flags)
        self.memory = bytearray(memory)


__all__ = ["ArchState", "InputData", "SandboxLayout", "PAGE_SIZE"]
