"""Battery-batched contract-trace collection over the compiled IR.

The fuzzer evaluates every test case against a whole *battery* of inputs
(dozens per diversity round), and since the compile-once refactor each
of those evaluations re-dispatches the same :class:`DecodedOp` sequence
one input at a time. This module runs the battery in *group lockstep*:
all inputs whose execution so far shares an identical control history
form one group, and each program step performs one plan lookup, one
fork decision and one bookkeeping pass for the whole group instead of
per input. The per-op work that the per-input loop repeats for every
lane — observation-clause dispatch, :class:`ExecutionLogEntry`
construction, address tuple building, next-pc resolution — is hoisted
into a per-(program, observation clause) *plan* and shared.

Lane divergence is handled by *splitting*, never by approximation:

- a conditional branch partitions the group by its per-lane outcome;
- an indirect branch / call / return partitions by per-lane target;
- a fault on a speculative path splits the faulting lanes off and rolls
  only them back (the per-input loop's ``rollback; continue``);
- speculation checkpoints hold one snapshot per lane, so window
  exhaustion, serializing fences and rollbacks stay in lockstep.

Everything the engine does not model — an architectural (non-
speculative) fault, the global step budget, an op shape outside the
plan's kinds — raises :class:`BatteryFallback`, and the caller reruns
the battery through the unmodified per-input loop, which remains the
byte-equality referee. Traces and logs produced here are equal to the
per-input path's entry for entry; ``tests/test_battery.py`` locks that
in on randomized programs of both ISAs and
``benchmarks/bench_emulation_throughput.py`` gates the >= 1.5x
throughput contract.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.emulator.compiled import CompiledProgram
from repro.emulator.errors import EmulationFault
from repro.emulator.state import ArchState, InputData, SandboxLayout, Snapshot
from repro.traces import CTrace, ExecutionLog, ExecutionLogEntry, Observation

#: mirrors ``_MAX_TRACE_STEPS`` in :mod:`repro.contracts.contract`;
#: callers pass the contract module's value through so the budgets can
#: never drift
DEFAULT_MAX_STEPS = 200_000


class BatteryFallback(Exception):
    """The battery engine met a condition it deliberately does not model.

    Raised for architectural faults, the step budget, and op shapes
    outside the plan's kinds. The caller falls back to the per-input
    collection loop, whose behaviour (exception type and ordering,
    cache and counter protocol) is the reference.
    """


# -- the per-(program, observation clause) plan -------------------------------
#
# One entry per DecodedOp: (kind, run, body, pc_obs, entry_seq,
# entry_spec, op, static_next).
#
# - ``body`` is the handler's raw ``(state, accesses)`` closure
#   (``run.body``, published by ``make_step``) when the op is
#   memory-free: such a body never touches ``accesses``, so _K_FAST
#   lanes run it against one shared scratch list and skip the
#   StepResult + accesses allocation the per-input loop pays per step;
# - ``pc_obs`` is the constant ("pc", pc) observation of a no-memory op
#   under a pc-exposing clause (None otherwise): no-memory ops expose
#   nothing else, so the whole observe() call collapses to one append;
# - ``entry_seq``/``entry_spec`` are shared constant ExecutionLogEntry
#   instances for no-memory ops (their address tuple is always empty),
#   replacing a 12-field dataclass construction per lane per step;
# - ``static_next`` is the statically known next pc of straight-line
#   ops and direct jumps.

_K_FAST = 0  # straight-line or direct jump, no memory operands
_K_COND = 1  # conditional branch (no memory operands on either ISA)
_K_MEM = 2  # straight-line with explicit memory operands
_K_GENERIC = 3  # indirect flow, calls, returns: per-lane results

_CONTROL_CATEGORIES = ("CB", "UNCOND", "IND", "CALL", "RET")

#: shared accesses scratch list for memory-free handler bodies — such a
#: body never appends (only memory-operand accessors do), which
#: ``tests/test_battery.py`` locks in
_SCRATCH: List = []


def build_plan(compiled: CompiledProgram, observation) -> Tuple[tuple, ...]:
    """Lower one compiled program into the battery engine's step plan."""
    plan = []
    expose_pc = observation.expose_pc
    for op in compiled.ops:
        has_memory = bool(op.mem_operands) or op.is_load or op.is_store
        if op.is_cond_branch:
            if has_memory:
                # neither backend has a memory-operand conditional
                # branch; refuse rather than guess at fork semantics
                raise BatteryFallback(
                    f"conditional branch with memory operands at pc {op.pc}"
                )
            kind, static_next = _K_COND, None
        elif op.category in _CONTROL_CATEGORIES:
            if op.is_uncond_branch and op.target is not None and not has_memory:
                kind, static_next = _K_FAST, op.target
            else:
                kind, static_next = _K_GENERIC, None
        elif has_memory:
            kind, static_next = _K_MEM, op.pc + 1
        else:
            kind, static_next = _K_FAST, op.pc + 1
        pc_obs: Optional[Observation] = (
            ("pc", op.pc) if expose_pc and not has_memory else None
        )
        if has_memory:
            entry_seq = entry_spec = None
        else:
            entry_seq = op.log_entry(addresses=(), speculative=False)
            entry_spec = op.log_entry(addresses=(), speculative=True)
        body = (
            getattr(op.run, "body", None) if kind == _K_FAST else None
        )
        plan.append(
            (kind, op.run, body, pc_obs, entry_seq, entry_spec, op,
             static_next)
        )
    return tuple(plan)


def _plan_for(compiled: CompiledProgram, observation) -> Tuple[tuple, ...]:
    """The memoized plan of one (program, observation clause) pair."""
    plan = compiled.battery_plans.get(observation)
    if plan is None:
        plan = build_plan(compiled, observation)
        compiled.battery_plans[observation] = plan
    return plan


# -- lane groups --------------------------------------------------------------


class _Frame:
    """One speculation checkpoint of a whole group: per-lane snapshots
    plus the shared resume pc and window budget (the lanes share their
    control history, so the scalar speculation state is identical)."""

    __slots__ = ("snapshots", "resume_pc", "window_left")

    def __init__(self, snapshots: List[Snapshot], resume_pc: int,
                 window_left: int):
        self.snapshots = snapshots
        self.resume_pc = resume_pc
        self.window_left = window_left


class _Group:
    """Lanes in lockstep: same pc, same step count, same speculation
    stack shape. ``lanes`` holds the original battery positions, so the
    final assembly is independent of split/processing order."""

    __slots__ = ("lanes", "states", "stack", "pc", "steps")

    def __init__(self, lanes: List[int], states: List[ArchState],
                 stack: List[_Frame], pc: int, steps: int):
        self.lanes = lanes
        self.states = states
        self.stack = stack
        self.pc = pc
        self.steps = steps


def _subgroup(group: _Group, positions: Sequence[int], pc: int) -> _Group:
    """A new group of the given lane positions (relative order kept).

    Stack frames are copied with the subgroup's snapshots filtered out,
    so each subgroup's window budgets and rollbacks evolve
    independently from here on.
    """
    return _Group(
        [group.lanes[i] for i in positions],
        [group.states[i] for i in positions],
        [
            _Frame(
                [frame.snapshots[i] for i in positions],
                frame.resume_pc,
                frame.window_left,
            )
            for frame in group.stack
        ],
        pc,
        group.steps,
    )


def _keep(group: _Group, positions: Sequence[int]) -> None:
    """Filter a group down to the given lane positions, in place."""
    group.lanes = [group.lanes[i] for i in positions]
    group.states = [group.states[i] for i in positions]
    for frame in group.stack:
        frame.snapshots = [frame.snapshots[i] for i in positions]


def _rollback(group: _Group) -> None:
    """Pop the innermost checkpoint and restore every lane from it."""
    frame = group.stack.pop()
    for state, snapshot in zip(group.states, frame.snapshots):
        state.restore(snapshot)
    group.pc = frame.resume_pc


def _split_speculative_faults(
    group: _Group, faulted: List[int], pending: List[_Group]
) -> bool:
    """Handle lanes that faulted on a speculative path.

    The per-input loop rolls a faulting lane back *without* counting
    the step or recording an observation, so the faulting lanes leave
    the group before the shared bookkeeping runs. Returns False when
    the whole group faulted (it was rolled back in place and the caller
    re-enters the step loop); True when the group continues with its
    surviving lanes.
    """
    if len(faulted) == len(group.states):
        _rollback(group)
        return False
    fault_group = _subgroup(group, faulted, group.pc)
    _rollback(fault_group)
    pending.append(fault_group)
    faulted_set = set(faulted)
    _keep(group, [i for i in range(len(group.states)) if i not in faulted_set])
    return True


# -- the engine ---------------------------------------------------------------


def run_battery(
    compiled: CompiledProgram,
    inputs: Sequence[InputData],
    observation,
    execution,
    speculation_window: int,
    max_nesting: int,
    layout: Optional[SandboxLayout] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> List[Tuple[CTrace, ExecutionLog]]:
    """Collect one ``(CTrace, ExecutionLog)`` per input, battery-batched.

    Equal result for result to running the per-input compiled loop of
    :meth:`repro.contracts.contract.Contract.collect_trace_and_log`
    over the same inputs. Raises :class:`BatteryFallback` whenever that
    equality would require modelling the per-input loop's error paths
    (architectural faults, the step budget) — the caller then reruns
    the battery per input.
    """
    plan = _plan_for(compiled, observation)
    arch = compiled.arch
    count = len(inputs)
    states: List[ArchState] = []
    for input_data in inputs:
        state = ArchState(layout, arch)
        state.load_input(input_data)
        states.append(state)
    observations: List[List[Observation]] = [[] for _ in range(count)]
    entries: List[List[ExecutionLogEntry]] = [[] for _ in range(count)]
    observe = observation.observe
    speculate_cond = execution.speculate_conditional_branches
    speculate_bypass = execution.speculate_store_bypass
    end = len(compiled.ops)

    pending = [_Group(list(range(count)), states, [], 0, 0)]
    while pending:
        group = pending.pop()
        while True:
            if group.steps >= max_steps:
                raise BatteryFallback("step budget exhausted")
            pc = group.pc
            if not 0 <= pc < end:
                if group.stack:
                    _rollback(group)
                    continue
                break  # group finished architecturally
            stack = group.stack
            speculative = bool(stack)
            (kind, run, body, pc_obs, entry_seq, entry_spec, op,
             static_next) = plan[pc]
            if speculative:
                if op.is_serializing:
                    _rollback(group)
                    continue
                frame = stack[-1]
                if frame.window_left <= 0:
                    _rollback(group)
                    continue
                frame.window_left -= 1

            # -- execute the op on every lane, diverting faulting lanes
            results: Optional[List] = None
            if kind == _K_FAST:
                # memory-free bodies never touch the accesses list, so
                # one scratch list serves every lane (see build_plan)
                step = run if body is None else body
                if speculative:
                    faulted = []
                    if body is None:
                        for position, state in enumerate(group.states):
                            try:
                                step(state)
                            except EmulationFault:
                                faulted.append(position)
                    else:
                        for position, state in enumerate(group.states):
                            try:
                                step(state, _SCRATCH)
                            except EmulationFault:
                                faulted.append(position)
                    if faulted and not _split_speculative_faults(
                        group, faulted, pending
                    ):
                        continue
                else:
                    try:
                        if body is None:
                            for state in group.states:
                                step(state)
                        else:
                            for state in group.states:
                                step(state, _SCRATCH)
                    except EmulationFault as fault:
                        raise BatteryFallback(
                            "architectural fault"
                        ) from fault
            elif speculative:
                results = []
                faulted = []
                for position, state in enumerate(group.states):
                    try:
                        results.append(run(state))
                    except EmulationFault:
                        results.append(None)
                        faulted.append(position)
                if faulted:
                    if not _split_speculative_faults(group, faulted, pending):
                        continue
                    results = [r for r in results if r is not None]
            else:
                try:
                    results = [run(state) for state in group.states]
                except EmulationFault as fault:
                    raise BatteryFallback("architectural fault") from fault

            group.steps += 1
            lanes = group.lanes

            # -- record observations and log entries
            if kind == _K_FAST or kind == _K_COND:
                entry = entry_spec if speculative else entry_seq
                if pc_obs is None:
                    for lane in lanes:
                        entries[lane].append(entry)
                else:
                    for lane in lanes:
                        observations[lane].append(pc_obs)
                        entries[lane].append(entry)
            else:
                log_entry = op.log_entry
                for position, lane in enumerate(lanes):
                    result = results[position]
                    observe(result, speculative, observations[lane])
                    entries[lane].append(
                        log_entry(
                            addresses=tuple(
                                access.address
                                for access in result.mem_accesses
                            ),
                            speculative=speculative,
                        )
                    )

            # -- advance / fork / split
            if kind == _K_FAST:
                group.pc = static_next
                continue
            if kind == _K_COND:
                branch = results[0].branch
                target, fallthrough = branch.target, branch.fallthrough
                fork = speculate_cond and len(stack) < max_nesting
                taken = [
                    position
                    for position, result in enumerate(results)
                    if result.branch.taken
                ]
                if not taken or len(taken) == len(results):
                    _advance_cond(
                        group, bool(taken), target, fallthrough, fork,
                        speculation_window,
                    )
                    continue
                taken_set = set(taken)
                not_taken = [
                    position
                    for position in range(len(results))
                    if position not in taken_set
                ]
                for positions, outcome in ((not_taken, False), (taken, True)):
                    sub = _subgroup(group, positions, pc)
                    _advance_cond(
                        sub, outcome, target, fallthrough, fork,
                        speculation_window,
                    )
                    pending.append(sub)
                break
            if kind == _K_MEM:
                if (
                    op.is_store
                    and speculate_bypass
                    and len(stack) < max_nesting
                ):
                    _fork_bypass(
                        group, results, range(len(results)), static_next,
                        speculation_window,
                    )
                group.pc = static_next
                continue

            # _K_GENERIC: partition lanes by their architectural next pc
            fork = (
                speculate_bypass
                and len(stack) < max_nesting
                and bool(results[0].stores)
            )
            order: List[int] = []
            partitions = {}
            for position, result in enumerate(results):
                bucket = partitions.get(result.next_pc)
                if bucket is None:
                    partitions[result.next_pc] = bucket = []
                    order.append(result.next_pc)
                bucket.append(position)
            if len(order) == 1:
                next_pc = order[0]
                if fork:
                    _fork_bypass(
                        group, results, range(len(results)), next_pc,
                        speculation_window,
                    )
                group.pc = next_pc
                continue
            for next_pc in order:
                positions = partitions[next_pc]
                sub = _subgroup(group, positions, pc)
                if fork:
                    _fork_bypass(
                        sub, results, positions, next_pc, speculation_window
                    )
                sub.pc = next_pc
                pending.append(sub)
            break

    return [
        (CTrace(tuple(observations[i])), ExecutionLog(entries[i]))
        for i in range(count)
    ]


def _advance_cond(
    group: _Group, taken: bool, target: int, fallthrough: int, fork: bool,
    window: int,
) -> None:
    """Advance a group past a conditional branch with a uniform outcome.

    With speculation armed, checkpoint at the architectural successor
    and steer down the inverted path (Table 1), exactly like the
    per-input loop's fork.
    """
    architectural = target if taken else fallthrough
    if fork:
        group.stack.append(
            _Frame(
                [state.snapshot() for state in group.states],
                architectural,
                window,
            )
        )
        group.pc = fallthrough if taken else target
    else:
        group.pc = architectural


def _fork_bypass(
    group: _Group, results, positions, resume_pc: int, window: int
) -> None:
    """BPAS fork: checkpoint the post-store state, then undo each
    lane's stores for the speculative path."""
    group.stack.append(
        _Frame(
            [state.snapshot() for state in group.states],
            resume_pc,
            window,
        )
    )
    for lane_position, result_position in enumerate(positions):
        state = group.states[lane_position]
        for access in reversed(results[result_position].stores):
            state.write_memory(access.address, access.size, access.old_value)


__all__ = [
    "BatteryFallback",
    "DEFAULT_MAX_STEPS",
    "build_plan",
    "run_battery",
]
