"""Emulation error types.

Generated test cases are instrumented to avoid faults (paper §5.1, step 4),
so these exceptions indicate either a generator bug or a deliberately
faulting handwritten gadget.
"""

from __future__ import annotations


class EmulationError(Exception):
    """Base class for all emulator errors."""


class EmulationFault(EmulationError):
    """An architectural fault raised during execution (would be a CPU #GP/#DE)."""


class DivisionFault(EmulationFault):
    """#DE: division by zero or quotient overflow."""


class SandboxViolation(EmulationFault):
    """A memory access outside the test sandbox."""

    def __init__(self, address: int, size: int, layout_repr: str):
        super().__init__(
            f"access of {size} byte(s) at {address:#x} escapes sandbox {layout_repr}"
        )
        self.address = address
        self.size = size


class InvalidProgram(EmulationError):
    """The program is malformed (undefined label, bad operand, ...)."""


class ExecutionLimitExceeded(EmulationError):
    """The step budget was exhausted (runaway control flow)."""
