"""The emulator: a sequential run loop over a linearized program.

The :class:`Emulator` provides the low-level stepping interface that both
the contract model (§5.4) and simple architectural runs build on. Contract
execution clauses drive :meth:`Emulator.step` directly so they can fork
speculative paths with :meth:`checkpoint`/:meth:`rollback`.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.isa.instruction import LinearProgram, TestCaseProgram
from repro.emulator.errors import ExecutionLimitExceeded, InvalidProgram
from repro.emulator.semantics import StepResult
from repro.emulator.state import ArchState, InputData, SandboxLayout, Snapshot

#: Default upper bound on executed instructions for one run. Programs are
#: DAGs so this is generous; gadgets with CALL/RET could in principle loop.
DEFAULT_MAX_STEPS = 100_000


class Emulator:
    """Architectural execution of one test-case program."""

    def __init__(
        self,
        program: TestCaseProgram,
        layout: Optional[SandboxLayout] = None,
        arch=None,
    ):
        self.program = program
        self.linear: LinearProgram = program.linearize()
        self.state = ArchState(layout, arch)
        self.arch = self.state.arch

    @property
    def layout(self) -> SandboxLayout:
        return self.state.layout

    def resolve_label(self, name: str) -> int:
        try:
            return self.linear.label_to_index[name]
        except KeyError:
            raise InvalidProgram(f"undefined label: {name!r}") from None

    def step(self, pc: int) -> StepResult:
        """Execute the instruction at index ``pc``; return side effects."""
        if not 0 <= pc < len(self.linear):
            raise InvalidProgram(f"pc out of range: {pc}")
        instruction = self.linear.instructions[pc]
        return self.arch.execute(instruction, self.state, pc, self.resolve_label)

    def checkpoint(self) -> Snapshot:
        return self.state.snapshot()

    def rollback(self, snapshot: Snapshot) -> None:
        self.state.restore(snapshot)

    def run(
        self,
        input_data: InputData,
        max_steps: int = DEFAULT_MAX_STEPS,
        hook: Optional[Callable[[StepResult], None]] = None,
    ) -> List[StepResult]:
        """Run the program to completion with ``input_data``.

        Returns the list of step results in execution order. ``hook`` is
        invoked after each step (used by tests and diagnostics).
        """
        self.state.load_input(input_data)
        results: List[StepResult] = []
        pc = 0
        steps = 0
        end = len(self.linear)
        while 0 <= pc < end:
            if steps >= max_steps:
                raise ExecutionLimitExceeded(
                    f"exceeded {max_steps} steps in {self.program.name!r}"
                )
            result = self.step(pc)
            results.append(result)
            if hook is not None:
                hook(result)
            pc = result.next_pc
            steps += 1
        return results


__all__ = ["Emulator", "DEFAULT_MAX_STEPS"]
