"""Architecture-neutral semantics substrate.

The *types* of instruction execution live here — :class:`MemAccess`,
:class:`BranchInfo` and :class:`StepResult` describe the side effects of
one architecturally executed instruction, and :class:`OperandContext`
provides operand access with memory-access recording. The per-ISA
instruction semantics live in the architecture backends
(:mod:`repro.arch.x86_64.semantics`, :mod:`repro.arch.aarch64.semantics`)
and are dispatched through the architecture descriptor.

:func:`execute` and :func:`evaluate_condition` remain as thin
compatibility shims that delegate to the default (x86-64) backend, so
existing callers keep working; pipeline code resolves the architecture
explicitly and calls ``arch.execute`` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.isa.instruction import Instruction
from repro.isa.operands import (
    AgenOperand,
    ImmediateOperand,
    LabelOperand,
    MemoryOperand,
    RegisterOperand,
)
from repro.emulator.errors import InvalidProgram
from repro.emulator.state import ArchState

MASK64 = 0xFFFFFFFFFFFFFFFF


def mask(width: int) -> int:
    """All-ones mask of ``width`` bits."""
    return (1 << width) - 1


def signed(value: int, width: int) -> int:
    """Interpret ``value`` as a ``width``-bit two's-complement integer."""
    sign_bit = 1 << (width - 1)
    return value - (1 << width) if value & sign_bit else value


@dataclass(frozen=True)
class MemAccess:
    """One memory access performed by an instruction."""

    address: int
    size: int  # bytes
    value: int
    is_write: bool
    old_value: int = 0  # pre-write memory content (store-bypass modelling)


@dataclass(frozen=True)
class BranchInfo:
    """Control-flow outcome of a branch instruction."""

    kind: str  # "cond" | "uncond" | "indirect" | "call" | "ret"
    taken: bool
    target: Optional[int]  # instruction index when taken
    fallthrough: int
    condition: Optional[str] = None  # canonical condition code for "cond"


@dataclass
class StepResult:
    """All architectural side effects of executing one instruction."""

    instruction: Instruction
    pc: int
    next_pc: int
    mem_accesses: List[MemAccess] = field(default_factory=list)
    branch: Optional[BranchInfo] = None

    @property
    def loads(self) -> List[MemAccess]:
        return [a for a in self.mem_accesses if not a.is_write]

    @property
    def stores(self) -> List[MemAccess]:
        return [a for a in self.mem_accesses if a.is_write]

    @property
    def is_fence(self) -> bool:
        return self.instruction.is_fence


class OperandContext:
    """Per-instruction helper: operand access with memory recording.

    Shared by all architecture backends — operand kinds and their
    read/write mechanics are ISA-neutral; only the opcode semantics
    on top differ.
    """

    def __init__(
        self,
        instruction: Instruction,
        state: ArchState,
        resolve_label: Optional[Callable[[str], int]],
    ):
        self.instruction = instruction
        self.state = state
        self.resolve_label = resolve_label
        self.accesses: List[MemAccess] = []

    def address_of(self, operand) -> int:
        address = self.state.read_register(operand.base)
        if operand.index is not None:
            address += self.state.read_register(operand.index)
        address = (address + operand.displacement) & MASK64
        return address

    def read(self, position: int) -> int:
        """Read the value of operand ``position`` (recording loads)."""
        operand = self.instruction.operands[position]
        template = self.instruction.spec.operands[position]
        if isinstance(operand, RegisterOperand):
            return self.state.read_register(operand.name)
        if isinstance(operand, ImmediateOperand):
            return operand.value & mask(max(template.width, 8))
        if isinstance(operand, MemoryOperand):
            address = self.address_of(operand)
            size = operand.width // 8
            value = self.state.read_memory(address, size)
            self.accesses.append(MemAccess(address, size, value, is_write=False))
            return value
        if isinstance(operand, LabelOperand):
            if self.resolve_label is None:
                raise InvalidProgram("label operand without a resolver")
            return self.resolve_label(operand.name)
        if isinstance(operand, AgenOperand):
            address = self.state.read_register(operand.base)
            if operand.index is not None:
                address += self.state.read_register(operand.index)
            return (address + operand.displacement) & MASK64
        raise InvalidProgram(f"unreadable operand: {operand!r}")

    def write(self, position: int, value: int) -> None:
        """Write ``value`` to operand ``position`` (recording stores)."""
        operand = self.instruction.operands[position]
        if isinstance(operand, RegisterOperand):
            self.state.write_register(operand.name, value)
            return
        if isinstance(operand, MemoryOperand):
            address = self.address_of(operand)
            size = operand.width // 8
            old_value = self.state.read_memory(address, size)
            self.state.write_memory(address, size, value)
            self.accesses.append(
                MemAccess(
                    address,
                    size,
                    value & mask(size * 8),
                    is_write=True,
                    old_value=old_value,
                )
            )
            return
        raise InvalidProgram(f"unwritable operand: {operand!r}")

    def width(self, position: int = 0) -> int:
        """Operation width: the width of the given operand slot."""
        operand = self.instruction.operands[position]
        if isinstance(operand, RegisterOperand):
            return operand.width
        if isinstance(operand, MemoryOperand):
            return operand.width
        return self.instruction.spec.operands[position].width


# -- compatibility shims (default to the x86-64 backend) ----------------------


def execute(
    instruction: Instruction,
    state: ArchState,
    pc: int = 0,
    resolve_label: Optional[Callable[[str], int]] = None,
) -> StepResult:
    """Execute one instruction with the default (x86-64) semantics.

    Pipeline code should call ``arch.execute`` on a resolved
    :class:`~repro.arch.base.Architecture` instead.
    """
    from repro.arch import get_architecture

    return get_architecture("x86_64").execute(
        instruction, state, pc, resolve_label
    )


def evaluate_condition(code: str, state: ArchState) -> bool:
    """Evaluate an x86 condition code against FLAGS (compatibility shim)."""
    from repro.arch import get_architecture

    return get_architecture("x86_64").evaluate_condition(code, state)


__all__ = [
    "BranchInfo",
    "MASK64",
    "MemAccess",
    "OperandContext",
    "StepResult",
    "evaluate_condition",
    "execute",
    "mask",
    "signed",
]
