"""Compile-once program IR for the emulation hot loop.

Both execution engines — the contract model
(:meth:`repro.contracts.contract.Contract.collect_trace_and_log`) and the
speculative CPU simulator (:meth:`repro.uarch.cpu.SpeculativeCPU.run`) —
execute the *same* test-case program across dozens of inputs, contracts
and speculative rollbacks. The interpretive path pays the full decode
cost on every step: a string-mnemonic if/elif dispatch, a fresh
:class:`~repro.emulator.semantics.OperandContext` with per-operand
``isinstance`` chains, ``condition_of()`` string parsing, and label
resolution through a dict of names.

:func:`compile_program` lowers each instruction exactly once into a
:class:`DecodedOp`:

- a **bound semantics handler** (``run``): the architecture backend's
  per-mnemonic compiler (see ``_COMPILERS`` in
  :mod:`repro.arch.x86_64.semantics` / :mod:`repro.arch.aarch64.semantics`)
  specializes the instruction into a closure over precompiled operand
  accessors — no per-step mnemonic dispatch, no ``OperandContext``;
- **pre-resolved control flow**: condition codes extracted and bound to
  their evaluators, label operands resolved to instruction indices;
- **precomputed operand accessors**: register reads/writes bound to the
  canonical register name and width mask, memory operands lowered to
  ``base + index + displacement`` address closures with a fixed width;
- **static metadata** the execution engines used to re-derive per step:
  category, fence/serializing bits, register/flag read–write sets,
  address vs. data registers, latency class, and the constant fields of
  the model's :class:`~repro.traces.ExecutionLogEntry`.

The compiled path is **byte-identical** to the interpretive one: every
``run`` closure performs the same state transitions, raises the same
faults, and returns an equal :class:`~repro.emulator.semantics.StepResult`
(same memory-access order, same branch info), so contract traces,
hardware traces and fuzzing reports do not change — only the time they
take (see ``benchmarks/bench_emulation_throughput.py`` and
``docs/performance.md``). ``compile_linear(..., interpretive=True)``
builds the same IR with handlers that fall back to ``arch.execute``,
which is how the reference path stays available for equality tests.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.isa.instruction import Instruction, LinearProgram, TestCaseProgram
from repro.isa.operands import (
    AgenOperand,
    ImmediateOperand,
    LabelOperand,
    MemoryOperand,
    RegisterOperand,
)
from repro.isa.registers import canonical_register, register_width
from repro.emulator.errors import InvalidProgram
from repro.emulator.semantics import (
    MASK64,
    BranchInfo,
    MemAccess,
    StepResult,
    mask,
)
from repro.emulator.state import ArchState
from repro.traces import ExecutionLogEntry

#: ``run(state) -> StepResult`` — one fully bound instruction execution.
StepFn = Callable[[ArchState], StepResult]
#: ``read(state, accesses) -> value`` — precompiled operand read.
ReadFn = Callable[[ArchState, List[MemAccess]], int]
#: ``write(state, value, accesses)`` — precompiled operand write.
WriteFn = Callable[[ArchState, int, List[MemAccess]], None]
#: ``address(state) -> int`` — precompiled memory-operand address.
AddressFn = Callable[[ArchState], int]

_WIDTH_MASKS = {8: 0xFF, 16: 0xFFFF, 32: 0xFFFFFFFF, 64: MASK64}


def compile_address(operand) -> AddressFn:
    """Lower a memory/AGEN operand into an address closure.

    Mirrors :meth:`OperandContext.address_of`: read the base (and index)
    register views, add the displacement, wrap to 64 bits.
    """
    base_c = canonical_register(operand.base)
    base_m = _WIDTH_MASKS[register_width(operand.base)]
    disp = operand.displacement
    if operand.index is None:

        def address(state, _c=base_c, _m=base_m, _d=disp):
            return ((state.registers[_c] & _m) + _d) & MASK64

    else:
        index_c = canonical_register(operand.index)
        index_m = _WIDTH_MASKS[register_width(operand.index)]

        def address(state, _c=base_c, _m=base_m, _ic=index_c, _im=index_m,
                    _d=disp):
            return (
                (state.registers[_c] & _m)
                + (state.registers[_ic] & _im)
                + _d
            ) & MASK64

    return address


class CompiledOperands:
    """Compile-time analogue of :class:`OperandContext`.

    Where the interpretive context dispatches on the operand kind at
    every ``read``/``write``, this helper resolves the kind *once* and
    hands the backend's instruction compiler a bound accessor closure
    per operand slot. The closures reproduce the context's behaviour
    exactly, including memory-access recording order and the
    re-computation of a memory destination's address on write.
    """

    def __init__(
        self,
        instruction: Instruction,
        label_to_index: Optional[Mapping[str, int]] = None,
    ):
        self.instruction = instruction
        self.label_to_index = label_to_index

    def width(self, position: int = 0) -> int:
        """Operation width of a slot (same rule as ``OperandContext``)."""
        operand = self.instruction.operands[position]
        if isinstance(operand, (RegisterOperand, MemoryOperand)):
            return operand.width
        return self.instruction.spec.operands[position].width

    def reader(self, position: int) -> ReadFn:
        """A bound read accessor for operand slot ``position``."""
        operand = self.instruction.operands[position]
        template = self.instruction.spec.operands[position]
        if isinstance(operand, RegisterOperand):
            canonical = operand.canonical
            wmask = _WIDTH_MASKS[operand.width]

            def read(state, accesses, _c=canonical, _m=wmask):
                return state.registers[_c] & _m

            return read
        if isinstance(operand, ImmediateOperand):
            value = operand.value & mask(max(template.width, 8))

            def read(state, accesses, _v=value):
                return _v

            return read
        if isinstance(operand, MemoryOperand):
            address_fn = compile_address(operand)
            size = operand.width // 8

            def read(state, accesses, _a=address_fn, _s=size):
                address = _a(state)
                value = state.read_memory(address, _s)
                accesses.append(MemAccess(address, _s, value, False))
                return value

            return read
        if isinstance(operand, LabelOperand):
            index = self._resolve_label(operand.name)

            def read(state, accesses, _i=index):
                return _i

            return read
        if isinstance(operand, AgenOperand):
            address_fn = compile_address(operand)

            def read(state, accesses, _a=address_fn):
                return _a(state)

            return read
        raise InvalidProgram(f"unreadable operand: {operand!r}")

    def writer(self, position: int) -> WriteFn:
        """A bound write accessor for operand slot ``position``."""
        operand = self.instruction.operands[position]
        if isinstance(operand, RegisterOperand):
            canonical = operand.canonical
            width = operand.width
            wmask = _WIDTH_MASKS[width]
            if width >= 32:
                # 64-bit writes replace; 32-bit writes zero-extend.
                def write(state, value, accesses, _c=canonical, _m=wmask):
                    state.registers[_c] = value & _m

            else:
                def write(state, value, accesses, _c=canonical, _m=wmask):
                    old = state.registers[_c]
                    state.registers[_c] = (old & ~_m) | (value & _m)

            return write
        if isinstance(operand, MemoryOperand):
            address_fn = compile_address(operand)
            size = operand.width // 8
            vmask = _WIDTH_MASKS[operand.width]

            def write(state, value, accesses, _a=address_fn, _s=size,
                      _m=vmask):
                address = _a(state)
                old_value = state.read_memory(address, _s)
                state.write_memory(address, _s, value)
                accesses.append(
                    MemAccess(address, _s, value & _m, True, old_value)
                )

            return write
        raise InvalidProgram(f"unwritable operand: {operand!r}")

    def resolve_label_operand(self, position: int = 0) -> int:
        """Resolve a LABEL operand slot to its instruction index."""
        operand = self.instruction.operands[position]
        if not isinstance(operand, LabelOperand):
            raise InvalidProgram(f"not a label operand: {operand!r}")
        return self._resolve_label(operand.name)

    def _resolve_label(self, name: str) -> int:
        if self.label_to_index is None:
            raise InvalidProgram("label operand without a resolver")
        try:
            return self.label_to_index[name]
        except KeyError:
            raise InvalidProgram(f"undefined label: {name!r}") from None


def make_step(instruction: Instruction, pc: int,
              body: Callable[[ArchState, List[MemAccess]], None]) -> StepFn:
    """Wrap a straight-line handler body into a full ``run`` closure.

    The raw body is published as ``run.body`` so the battery engine
    (:mod:`repro.emulator.battery`) can execute memory-free ops without
    allocating the accesses list and :class:`StepResult` that a
    straight-line step discards anyway.
    """
    next_pc = pc + 1

    def run(state, _b=body, _i=instruction, _p=pc, _n=next_pc):
        accesses: List[MemAccess] = []
        _b(state, accesses)
        return StepResult(_i, _p, _n, accesses, None)

    run.body = body
    return run


# -- ISA-neutral control-flow compilers ---------------------------------------
#
# Branch shapes are identical across the backends (the paper's test
# cases are DAGs of direct/conditional/indirect jumps); only the
# condition-code extraction and its flag evaluator are per-ISA, so the
# backends bind those and delegate the closure construction here. One
# implementation means a fix to e.g. BranchInfo construction can never
# drift between backends — which the byte-identical-traces guarantee
# depends on.


def condition_evaluator(table, code: Optional[str]):
    """The bound evaluator for a pre-resolved condition code, from a
    backend's import-time evaluator table."""
    if code is None or code not in table:
        raise InvalidProgram(f"unknown condition code: {code!r}")
    return table[code]


def compile_cond_branch(instruction: Instruction, ops: "CompiledOperands",
                        pc: int, condition: Optional[str],
                        evaluator) -> StepFn:
    """A conditional branch with its condition pre-resolved and bound."""
    read0 = ops.reader(0)
    fallthrough = pc + 1

    def run(state):
        accesses: List[MemAccess] = []
        taken = evaluator(state)
        target = read0(state, accesses)
        branch = BranchInfo("cond", taken, target, fallthrough, condition)
        return StepResult(
            instruction, pc, target if taken else fallthrough, accesses,
            branch,
        )

    return run


def compile_uncond_branch(instruction: Instruction, ops: "CompiledOperands",
                          pc: int) -> StepFn:
    read0 = ops.reader(0)
    fallthrough = pc + 1

    def run(state):
        accesses: List[MemAccess] = []
        target = read0(state, accesses)
        branch = BranchInfo("uncond", True, target, fallthrough)
        return StepResult(instruction, pc, target, accesses, branch)

    return run


def compile_indirect_branch(instruction: Instruction,
                            ops: "CompiledOperands", pc: int) -> StepFn:
    read0 = ops.reader(0)
    fallthrough = pc + 1

    def run(state):
        accesses: List[MemAccess] = []
        target = read0(state, accesses) & MASK64
        branch = BranchInfo("indirect", True, target, fallthrough)
        return StepResult(instruction, pc, target, accesses, branch)

    return run


def compile_no_op(instruction: Instruction, ops: "CompiledOperands",
                  pc: int) -> StepFn:
    """NOPs and fences: no state change, no accesses, fall through."""
    next_pc = pc + 1

    def run(state):
        return StepResult(instruction, pc, next_pc, [], None)

    return run


@dataclass
class DecodedOp:
    """One instruction, lowered once for compile-once/execute-many.

    ``run`` is the bound semantics handler; everything else is static
    metadata the execution engines would otherwise re-derive per step.
    """

    instruction: Instruction
    pc: int
    run: StepFn
    # -- control flow -------------------------------------------------------
    #: canonical condition code of a conditional branch (pre-resolved)
    condition: Optional[str]
    #: direct branch target, resolved to an instruction index
    target: Optional[int]
    # -- static classification ---------------------------------------------
    category: str
    is_fence: bool
    is_serializing: bool
    is_cond_branch: bool
    is_uncond_branch: bool
    is_indirect_branch: bool
    is_load: bool
    is_store: bool
    #: a store that loads nothing: issues on data readiness (V4 modelling)
    pure_store: bool
    # -- dataflow -----------------------------------------------------------
    registers_read: Tuple[str, ...]
    registers_written: Tuple[str, ...]
    flags_read: Tuple[str, ...]
    flags_written: Tuple[str, ...]
    #: canonical registers feeding address generation
    addr_regs: frozenset
    #: canonical registers feeding data (implicit reads + source operands)
    data_regs: frozenset
    #: one ``(address closure, size in bytes)`` per explicit memory operand
    mem_operands: Tuple[Tuple[AddressFn, int], ...]
    # -- timing -------------------------------------------------------------
    #: "division" | "multiply" | "base"
    latency_class: str
    #: for "division": reads the value whose magnitude drives the latency
    division_value: Optional[Callable[[ArchState], int]]
    # -- logging ------------------------------------------------------------
    #: pre-bound ExecutionLogEntry constructor (static fields baked in;
    #: callers supply ``addresses`` and ``speculative``)
    log_entry: Callable[..., ExecutionLogEntry]


@dataclass
class CompiledProgram:
    """A test-case program lowered to :class:`DecodedOp` records.

    Compiled once per (program, architecture) pair and reused across
    every input, contract collection, speculative rollback and hardware
    measurement of that test case.
    """

    ops: Tuple[DecodedOp, ...]
    linear: LinearProgram
    arch: object
    #: True when the handlers fall back to ``arch.execute`` (the
    #: reference path used by the equality tests and benchmarks)
    interpretive: bool = False
    name: str = "testcase"
    #: lazily built per-observation-clause step plans of the battery
    #: engine (:mod:`repro.emulator.battery`). Derived state, not
    #: identity: excluded from comparisons, and ``dataclasses.replace``
    #: (the optimization passes) re-initializes it empty so a program
    #: with swapped handlers can never serve a stale plan.
    battery_plans: Dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def instructions(self) -> List[Instruction]:
        return self.linear.instructions

    @property
    def label_to_index(self):
        return self.linear.label_to_index


def _interpretive_step(instruction: Instruction, pc: int, arch,
                       label_to_index: Mapping[str, int]) -> StepFn:
    """The reference handler: full per-step dispatch via ``arch.execute``."""

    def resolve_label(name: str) -> int:
        try:
            return label_to_index[name]
        except KeyError:
            raise InvalidProgram(f"undefined label: {name!r}") from None

    def run(state, _i=instruction, _p=pc, _r=resolve_label, _e=arch.execute):
        return _e(_i, state, _p, _r)

    return run


def decode_op(instruction: Instruction, pc: int, arch,
              label_to_index: Mapping[str, int],
              interpretive: bool = False) -> DecodedOp:
    """Lower one instruction into a :class:`DecodedOp`."""
    if interpretive:
        run = _interpretive_step(instruction, pc, arch, label_to_index)
    else:
        run = arch.compile_instruction(instruction, pc, label_to_index)

    spec = instruction.spec
    category = spec.category
    mem_accesses = instruction.memory_accesses()
    is_load = any(read for _, read, _ in mem_accesses)
    is_store = any(write for _, _, write in mem_accesses)
    addr_regs = frozenset(
        register
        for operand, _, _ in mem_accesses
        for register in operand.address_registers()
    )
    data_regs = set(spec.implicit_reads)
    for operand, template in zip(instruction.operands, spec.operands):
        if template.src and hasattr(operand, "canonical"):
            data_regs.add(operand.canonical)
        elif isinstance(operand, AgenOperand):
            # AGEN registers feed an address *computation* whose result
            # lands in a register (LEA) — no memory access happens, so
            # they are data dependencies, not addr_regs
            data_regs.add(canonical_register(operand.base))
            if operand.index is not None:
                data_regs.add(canonical_register(operand.index))

    if category == "VAR":
        latency_class = "division"

        def division_value(state, _a=arch, _i=instruction):
            return _a.division_latency_value(state, _i)

    elif spec.mnemonic in arch.multiply_mnemonics:
        latency_class = "multiply"
        division_value = None
    else:
        latency_class = "base"
        division_value = None

    condition = arch.condition_of(spec.mnemonic) if category == "CB" else None
    label = instruction.label_target()
    target: Optional[int] = None
    if label is not None:
        try:
            target = label_to_index[label]
        except KeyError:
            raise InvalidProgram(f"undefined label: {label!r}") from None

    registers_read = instruction.registers_read()
    registers_written = instruction.registers_written()
    is_cond_branch = category == "CB"
    is_uncond_branch = category == "UNCOND"
    is_indirect_branch = category == "IND"

    log_entry = partial(
        ExecutionLogEntry,
        pc=pc,
        mnemonic=spec.mnemonic,
        registers_read=registers_read,
        registers_written=registers_written,
        flags_read=spec.flags_read,
        flags_written=spec.flags_written,
        is_load=is_load,
        is_store=is_store,
        is_cond_branch=is_cond_branch,
        is_uncond_branch=is_uncond_branch or is_indirect_branch,
    )

    return DecodedOp(
        instruction=instruction,
        pc=pc,
        run=run,
        condition=condition,
        target=target,
        category=category,
        is_fence=category == "FENCE",
        is_serializing=arch.is_serializing(instruction),
        is_cond_branch=is_cond_branch,
        is_uncond_branch=is_uncond_branch,
        is_indirect_branch=is_indirect_branch,
        is_load=is_load,
        is_store=is_store,
        pure_store=is_store and not is_load,
        registers_read=registers_read,
        registers_written=registers_written,
        flags_read=spec.flags_read,
        flags_written=spec.flags_written,
        addr_regs=addr_regs,
        data_regs=frozenset(data_regs),
        mem_operands=tuple(
            (compile_address(operand), operand.width // 8)
            for operand, _, _ in mem_accesses
        ),
        latency_class=latency_class,
        division_value=division_value,
        log_entry=log_entry,
    )


def compile_linear(linear: LinearProgram, arch=None,
                   interpretive: bool = False,
                   name: str = "testcase") -> CompiledProgram:
    """Lower a linearized program into a :class:`CompiledProgram`."""
    if arch is None:
        from repro.arch import get_architecture

        arch = get_architecture("x86_64")
    ops = tuple(
        decode_op(instruction, pc, arch, linear.label_to_index, interpretive)
        for pc, instruction in enumerate(linear.instructions)
    )
    return CompiledProgram(
        ops=ops, linear=linear, arch=arch, interpretive=interpretive,
        name=name,
    )


def compile_program(program: TestCaseProgram, arch=None,
                    interpretive: bool = False) -> CompiledProgram:
    """Compile a test-case program once for execute-many use.

    ``interpretive=True`` builds the same IR with handlers that fall
    back to the per-step ``arch.execute`` dispatch — the reference path
    the equality tests and the throughput benchmark compare against.
    """
    return compile_linear(
        program.linearize(), arch, interpretive, name=program.name
    )


def as_compiled(program: Union[TestCaseProgram, LinearProgram,
                               CompiledProgram],
                arch=None, interpretive: bool = False) -> CompiledProgram:
    """Normalize any program representation to a :class:`CompiledProgram`.

    Already-compiled programs pass through untouched (their own
    ``interpretive`` flag wins — they were compiled once upstream).
    """
    if isinstance(program, CompiledProgram):
        return program
    if isinstance(program, LinearProgram):
        return compile_linear(program, arch, interpretive)
    return compile_program(program, arch, interpretive)


# -- cross-object IR reuse ----------------------------------------------------


def program_digest(program: TestCaseProgram, arch_name: str = "") -> str:
    """A stable content digest of a test case (see also
    :func:`repro.core.trace_cache.program_fingerprint`, which delegates
    here).

    Block structure plus instruction text determine the lowered IR for
    one architecture, so two *distinct program objects* with equal text
    — e.g. the same seed re-generated by a neighboring sweep cell in
    the same worker process — share a digest and hence a compilation.
    ``arch_name`` namespaces the digest: same-text programs of
    different backends never collide.
    """
    hasher = hashlib.sha1()
    hasher.update(arch_name.encode("utf-8"))
    for block in program.blocks:
        hasher.update(f"\n.{block.name}:".encode("utf-8"))
        for instruction in block.instructions():
            hasher.update(b"\n")
            hasher.update(str(instruction).encode("utf-8"))
    return hasher.hexdigest()


class CompiledProgramCache:
    """A bounded LRU of lowered (and optimized) programs, keyed by
    content digest.

    Compiled handlers are closures, so the IR cannot be pickled across
    process boundaries; what *can* be shared is every compilation
    within one process. Campaign shard workers and the sweep runner's
    cell workers construct a fresh ``Fuzzer`` (and hence a fresh
    pipeline memo) per shard/cell, yet one worker process runs many of
    them — and deterministic grids regenerate byte-identical programs
    (same generator seed) in each. Keying by
    :func:`program_digest` instead of object identity lets every
    pipeline in the process reuse the one lowering.

    The key must include every knob that changes the lowered artifact:
    callers append their optimization-pass configuration to the digest
    (see ``TestingPipeline.compiled_for``).
    """

    def __init__(self, max_entries: int = 512):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[tuple, CompiledProgram]" = OrderedDict()

    def get(self, key: tuple) -> Optional[CompiledProgram]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: tuple, compiled: CompiledProgram) -> None:
        self._entries[key] = compiled
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


#: the process-global IR cache shared by every pipeline and executor in
#: this process (shard workers, sweep cells, the postprocessor)
_SHARED_CACHE = CompiledProgramCache()


def shared_compiled_cache() -> CompiledProgramCache:
    """The process-global :class:`CompiledProgramCache`."""
    return _SHARED_CACHE


__all__ = [
    "AddressFn",
    "CompiledOperands",
    "CompiledProgram",
    "CompiledProgramCache",
    "DecodedOp",
    "ReadFn",
    "StepFn",
    "WriteFn",
    "as_compiled",
    "compile_address",
    "compile_cond_branch",
    "compile_indirect_branch",
    "compile_linear",
    "compile_no_op",
    "compile_program",
    "compile_uncond_branch",
    "condition_evaluator",
    "decode_op",
    "make_step",
    "program_digest",
    "shared_compiled_cache",
]
