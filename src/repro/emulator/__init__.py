"""Functional ISA emulator substrate (replaces the Unicorn engine).

The emulator executes :class:`~repro.isa.instruction.TestCaseProgram`
instances architecturally: registers, flags and a sandboxed memory region.
It exposes a stepping interface with snapshot/restore so the contract model
(paper §5.4) can explore speculative paths with checkpoints and rollbacks,
and so the CPU simulator can reuse the same instruction semantics.
"""

from repro.emulator.errors import (
    DivisionFault,
    EmulationError,
    EmulationFault,
    SandboxViolation,
)
from repro.emulator.state import ArchState, InputData, SandboxLayout
from repro.emulator.semantics import BranchInfo, MemAccess, StepResult, execute
from repro.emulator.machine import Emulator
from repro.emulator.compiled import (
    CompiledProgram,
    DecodedOp,
    compile_program,
)

__all__ = [
    "ArchState",
    "BranchInfo",
    "CompiledProgram",
    "DecodedOp",
    "DivisionFault",
    "EmulationError",
    "EmulationFault",
    "Emulator",
    "InputData",
    "MemAccess",
    "SandboxLayout",
    "SandboxViolation",
    "StepResult",
    "compile_program",
    "execute",
]
