"""Revizor reproduction: Model-based Relational Testing of speculative CPUs.

This package reimplements the system from *"Revizor: Testing Black-Box CPUs
against Speculation Contracts"* (ASPLOS 2022) as a self-contained Python
library. The real Intel CPUs are replaced by a deterministic speculative
CPU simulator (:mod:`repro.uarch`); everything else — contracts, the
executor logic, the relational analyzer, generators, pattern coverage and
the postprocessor — follows the paper's design (see docs/index.md).

Quickstart::

    from repro import FuzzerConfig, fuzz

    report = fuzz(FuzzerConfig(
        instruction_subsets=("AR", "MEM", "CB"),
        contract_name="CT-SEQ",
        cpu_preset="skylake",
        num_test_cases=200,
    ))
    if report.found:
        print(report.violation.describe())
"""

from repro.traces import CTrace, HTrace
from repro.arch import Architecture, architecture_names, get_architecture
from repro.contracts import Contract, contract_names, get_contract
from repro.emulator import Emulator, InputData, SandboxLayout
from repro.uarch import SpeculativeCPU, UarchConfig, coffee_lake, preset, skylake
from repro.executor import Executor, ExecutorConfig, NoiseModel, measurement_mode
from repro.core import (
    Fuzzer,
    FuzzerConfig,
    FuzzingReport,
    GeneratorConfig,
    InputGenerator,
    MinimizationResult,
    Postprocessor,
    RelationalAnalyzer,
    TestCaseGenerator,
    TestingPipeline,
    Violation,
)
from repro.core.fuzzer import fuzz

__version__ = "1.0.0"

__all__ = [
    "Architecture",
    "CTrace",
    "Contract",
    "architecture_names",
    "get_architecture",
    "Emulator",
    "Executor",
    "ExecutorConfig",
    "Fuzzer",
    "FuzzerConfig",
    "FuzzingReport",
    "GeneratorConfig",
    "HTrace",
    "InputData",
    "InputGenerator",
    "MinimizationResult",
    "NoiseModel",
    "Postprocessor",
    "RelationalAnalyzer",
    "SandboxLayout",
    "SpeculativeCPU",
    "TestCaseGenerator",
    "TestingPipeline",
    "UarchConfig",
    "Violation",
    "coffee_lake",
    "contract_names",
    "fuzz",
    "get_contract",
    "measurement_mode",
    "preset",
    "skylake",
]
