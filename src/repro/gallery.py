"""Handwritten test cases for known vulnerabilities.

The paper evaluates Revizor on manually written gadgets representing
Spectre V1, V1.1, V2, V4, V5-ret, MDS-LFB and MDS-SB (Table 5), the novel
latency-race variants V1-var/V4-var (§6.3, Figure 5), the contract
sensitivity examples (Figure 6), the speculative-store-eviction check
(§6.4) and the store-bypass variant found during artifact evaluation
(Appendix A.6). This module provides all of them as parseable programs
with the target configuration each is meant to violate.

Gadget conventions: leaking code sits on the *fallthrough* path of a
conditional branch, so that first-encounter mispredictions (the predictor
starts weakly not-taken) surface the transient leak within a handful of
inputs, as in the paper's Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.arch import get_architecture
from repro.isa.instruction import TestCaseProgram


@dataclass(frozen=True)
class Gadget:
    """One handwritten test case plus the setup it violates.

    All gallery gadgets are written in the x86-64 backend's syntax and
    parse through its architecture descriptor (``arch`` names the
    registry entry, so a gadget set for another backend can reuse this
    class).
    """

    name: str
    vulnerability: str
    asm: str
    description: str
    #: ISA backend the gadget targets (registry name)
    arch: str = "x86_64"
    #: contract expected to be violated
    contract: str = "CT-SEQ"
    #: CPU preset the gadget targets
    cpu_preset: str = "skylake"
    #: executor measurement mode
    executor_mode: str = "P+P"
    #: analyzer mode needed to surface the violation ("subset" works for
    #: all but the pure latency races, which are subset-shaped)
    analyzer_mode: str = "subset"
    #: recommended PRNG entropy for random inputs (latency races need a
    #: wide dividend range)
    entropy_bits: int = 2
    references: Tuple[str, ...] = ()

    def program(self) -> TestCaseProgram:
        return get_architecture(self.arch).parse_program(self.asm, name=self.name)


SPECTRE_V1 = Gadget(
    name="spectre-v1",
    vulnerability="V1",
    description=(
        "Bounds-check bypass: a conditional branch is mispredicted; the "
        "wrong (fallthrough) path loads from an input-dependent address "
        "that the sequential contract trace never exposes."
    ),
    asm="""
        JNS .end
        AND RBX, 0b111111000000
        MOV RCX, qword ptr [R14 + RBX]
    .end: NOP
    """,
)

SPECTRE_V1_A64 = Gadget(
    name="spectre-v1-a64",
    vulnerability="V1 (aarch64)",
    description=(
        "Bounds-check bypass on the AArch64 backend: the same "
        "first-encounter misprediction as spectre-v1, written against "
        "the NZCV condition codes (B.PL falls through on negative) and "
        "the X27 sandbox base."
    ),
    arch="aarch64",
    asm="""
        B.PL .end
        AND X1, X1, #0b111111000000
        LDR X2, [X27, X1]
    .end: NOP
    """,
)

SPECTRE_V1_1 = Gadget(
    name="spectre-v1.1",
    vulnerability="V1.1",
    description=(
        "Speculative buffer overflow: a wrong-path store is forwarded to "
        "a wrong-path load, whose value then selects a leaking address."
    ),
    asm="""
        JNS .end
        MOV qword ptr [R14 + 8], RBX
        NOP
        NOP
        MOV RCX, qword ptr [R14 + 8]
        AND RCX, 0b111111000000
        MOV RDX, qword ptr [R14 + RCX]
    .end: NOP
    """,
)

SPECTRE_V2 = Gadget(
    name="spectre-v2",
    vulnerability="V2",
    description=(
        "Branch target injection: the BTB predicts the previous indirect "
        "target; inputs alternating between targets make the CPU "
        "transiently execute the other target's leak gadget."
    ),
    asm="""
        MOV RBX, .t1
        MOV RCX, .t2
        CMP RAX, 0
        CMOVNZ RBX, RCX
        JMP RBX
    .t1: NOP
        JMP .end
    .t2: AND RDX, 0b111111000000
        MOV RSI, qword ptr [R14 + RDX]
        JMP .end
    .end: NOP
    """,
)

SPECTRE_V4 = Gadget(
    name="spectre-v4",
    vulnerability="V4",
    description=(
        "Speculative store bypass: a load issued before the preceding "
        "aliasing store's address resolves transiently reads the stale "
        "memory value, which selects a leaking address."
    ),
    asm="""
        MOV qword ptr [R14 + 64], RAX
        MOV RBX, qword ptr [R14 + 64]
        AND RBX, 0b111111000000
        MOV RCX, qword ptr [R14 + RBX]
    """,
)

SPECTRE_V5_RET = Gadget(
    name="spectre-v5-ret",
    vulnerability="V5-ret",
    description=(
        "ret2spec: the function overwrites its return address on the "
        "stack; RET follows the stale RSB prediction into the original "
        "call-site continuation, which leaks."
    ),
    cpu_preset="skylake-v4-patched",  # avoid a V4 bypass on the RET load
    asm="""
        MOV RDX, .other
        CALL .func
    .cont: AND RBX, 0b111111000000
        MOV RCX, qword ptr [R14 + RBX]
        JMP .end
    .func: MOV qword ptr [RSP], RDX
        RET
    .other: NOP
    .end: NOP
    """,
)

MDS_LFB = Gadget(
    name="mds-lfb",
    vulnerability="MDS-LFB",
    description=(
        "ZombieLoad/RIDL: a load from a page with a cleared accessed bit "
        "takes a microcode assist and transiently forwards the newest "
        "line-fill-buffer entry — a value the contract never exposes."
    ),
    executor_mode="P+P+A",
    cpu_preset="skylake-v4-patched",
    asm="""
        MOV RAX, qword ptr [R14 + 8]
        MOV RBX, qword ptr [R14 + 4096]
        AND RBX, 0b111111000000
        MOV RCX, qword ptr [R14 + RBX]
    """,
)

MDS_SB = Gadget(
    name="mds-sb",
    vulnerability="MDS-SB",
    description=(
        "Fallout: the assist-taking load transiently forwards the newest "
        "store-buffer entry (the just-stored register value)."
    ),
    executor_mode="P+P+A",
    cpu_preset="skylake-v4-patched",
    asm="""
        MOV qword ptr [R14 + 8], RAX
        MOV RBX, qword ptr [R14 + 4096]
        AND RBX, 0b111111000000
        MOV RCX, qword ptr [R14 + RBX]
    """,
)

LVI_NULL = Gadget(
    name="lvi-null",
    vulnerability="LVI-Null",
    description=(
        "On MDS-patched silicon the assist forwards zero instead of stale "
        "data, but the transient window still executes dependent loads "
        "whose values leak (Target 8)."
    ),
    executor_mode="P+P+A",
    cpu_preset="coffee-lake",
    asm="""
        MOV RAX, qword ptr [R14 + 8]
        AND RAX, 0b111111000000
        MOV RBX, qword ptr [R14 + 4096]
        ADD RBX, RAX
        AND RBX, 0b111111000000
        MOV RCX, qword ptr [R14 + RBX]
    """,
)

V1_VAR = Gadget(
    name="v1-var",
    vulnerability="V1-var",
    description=(
        "Figure 5: a variable-latency division on the mispredicted path "
        "races branch resolution; whether the dependent load leaves a "
        "cache trace depends on the division operands' magnitude — the "
        "latency leaks through the data cache. The violation is "
        "subset-shaped, hence the strict analyzer mode."
    ),
    contract="CT-COND",
    analyzer_mode="strict",
    entropy_bits=30,
    asm="""
        JNZ .end
        MOV RDX, 0
        OR RBX, 1
        DIV RBX
        AND RAX, 0b111111000000
        MOV RDI, qword ptr [R14 + RAX]
    .end: NOP
    """,
)

V4_VAR = Gadget(
    name="v4-var",
    vulnerability="V4-var",
    description=(
        "The §6.3 V4 counterpart: the bypassed load's stale value feeds a "
        "division inside the store-bypass window; the dependent load's "
        "cache trace encodes the division latency (a race against the "
        "disambiguation squash)."
    ),
    contract="CT-BPAS",
    analyzer_mode="strict",
    asm="""
        MOV RCX, qword ptr [R14 + 512]
        MOV qword ptr [R14 + RCX], RSI
        MOV RAX, qword ptr [R14 + 64]
        MOV RDX, 0
        OR RBX, 1
        DIV RBX
        AND RAX, 0b111111000000
        MOV RDI, qword ptr [R14 + RAX]
    """,
)

FIG6A_NONSPECULATIVE_DATA = Gadget(
    name="fig6a-nonspec-data",
    vulnerability="V1 (non-speculative data)",
    description=(
        "Figure 6a: the transiently leaking value was loaded "
        "non-speculatively. Violates CT-SEQ but not ARCH-SEQ, which "
        "permits exposure of architecturally loaded values (the STT "
        "threat model)."
    ),
    asm="""
        MOVZX RBX, BL
        MOV RAX, qword ptr [R14 + RBX]
        JNS .end
        AND RAX, 0b111111000000
        MOV RDX, qword ptr [R14 + RAX]
    .end: NOP
    """,
)

FIG6B_SPECULATIVE_DATA = Gadget(
    name="fig6b-spec-data",
    vulnerability="V1 (speculative data)",
    description=(
        "Figure 6b: the classic two-load Spectre V1 — the leaking value is "
        "itself loaded speculatively. Violates both CT-SEQ and ARCH-SEQ."
    ),
    contract="ARCH-SEQ",
    asm="""
        CMP RCX, 0
        JNZ .end
        AND RBX, 0b111111000000
        MOV RAX, qword ptr [R14 + RBX]
        AND RAX, 0b111111000000
        MOV RDX, qword ptr [R14 + RAX]
    .end: NOP
    """,
)

SPECULATIVE_STORE_EVICTION = Gadget(
    name="spec-store-eviction",
    vulnerability="speculative store eviction (§6.4)",
    description=(
        "A wrong-path store. Under a CT-COND variant that does not expose "
        "speculative stores (the STT/KLEESpectre assumption), Coffee Lake "
        "violates — speculative stores allocate cache lines — while "
        "Skylake complies."
    ),
    contract="CT-NONSPEC-STORE-COND",
    cpu_preset="coffee-lake",
    asm="""
        JNS .end
        AND RBX, 0b111111000000
        MOV qword ptr [R14 + RBX], RCX
    .end: NOP
    """,
)

A6_STORE_BYPASS_VARIANT = Gadget(
    name="a6-bypass-variant",
    vulnerability="novel store-bypass variant (A.6)",
    description=(
        "Two loads of the same address: the fast one bypasses a pending "
        "slow-address store (stale value), the slow one receives "
        "forwarding (new value); their transient difference indexes a "
        "leaking load. Violates CT-BPAS, where *every* load is modelled "
        "as bypassing."
    ),
    contract="CT-BPAS",
    asm="""
        MOV RCX, qword ptr [R14 + 512]
        MOV qword ptr [R14 + RCX], RDX
        MOV RSI, qword ptr [R14 + 64]
        OR RCX, 0
        ADD RCX, 0
        SUB RCX, 0
        MOV RDI, qword ptr [R14 + RCX]
        SUB RSI, RDI
        AND RSI, 0b111111000000
        MOV RBP, qword ptr [R14 + RSI]
    """,
)

GALLERY: Dict[str, Gadget] = {
    gadget.name: gadget
    for gadget in (
        SPECTRE_V1,
        SPECTRE_V1_A64,
        SPECTRE_V1_1,
        SPECTRE_V2,
        SPECTRE_V4,
        SPECTRE_V5_RET,
        MDS_LFB,
        MDS_SB,
        LVI_NULL,
        V1_VAR,
        V4_VAR,
        FIG6A_NONSPECULATIVE_DATA,
        FIG6B_SPECULATIVE_DATA,
        SPECULATIVE_STORE_EVICTION,
        A6_STORE_BYPASS_VARIANT,
    )
}

#: the Table 5 gadget set, in the paper's column order
TABLE5_GADGETS: Tuple[str, ...] = (
    "spectre-v1",
    "spectre-v1.1",
    "spectre-v2",
    "spectre-v4",
    "spectre-v5-ret",
    "mds-lfb",
    "mds-sb",
)


def gadget(name: str) -> Gadget:
    """Look up a gadget by name."""
    try:
        return GALLERY[name]
    except KeyError:
        raise KeyError(
            f"unknown gadget {name!r}; available: {', '.join(sorted(GALLERY))}"
        ) from None


__all__ = [
    "A6_STORE_BYPASS_VARIANT",
    "FIG6A_NONSPECULATIVE_DATA",
    "FIG6B_SPECULATIVE_DATA",
    "GALLERY",
    "Gadget",
    "LVI_NULL",
    "MDS_LFB",
    "MDS_SB",
    "SPECTRE_V1",
    "SPECTRE_V1_1",
    "SPECTRE_V1_A64",
    "SPECTRE_V2",
    "SPECTRE_V4",
    "SPECTRE_V5_RET",
    "SPECULATIVE_STORE_EVICTION",
    "TABLE5_GADGETS",
    "V1_VAR",
    "V4_VAR",
    "gadget",
]
