"""Data-driven instruction catalog, split into the paper's ISA subsets.

The paper builds test cases from subsets of x86 (§6.1): ``AR`` (in-register
arithmetic, logic, bitwise), ``MEM`` (memory operands and loads/stores),
``VAR`` (variable-latency division), ``CB`` (conditional branches). We add
``IND`` (indirect jumps), ``CALL``/``RET`` and ``FENCE`` which are used only
by handwritten gadgets (Table 5) and the postprocessor. Shift/bit-test
instructions are excluded, matching the paper's footnote 4.

Each entry is an :class:`~repro.isa.instruction.InstructionSpec` describing
one instruction *form* (mnemonic + operand shape + width), mirroring how the
nanoBench XML catalog enumerates variants.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.isa.instruction import (
    InstructionSet,
    InstructionSpec,
    OperandTemplate,
)

#: All x86 condition codes implemented (16, as on real silicon).
CONDITION_CODES: Tuple[str, ...] = (
    "O",
    "NO",
    "B",
    "AE",
    "Z",
    "NZ",
    "BE",
    "A",
    "S",
    "NS",
    "P",
    "NP",
    "L",
    "GE",
    "LE",
    "G",
)

#: Flags read by each condition code.
CONDITION_FLAGS: Dict[str, Tuple[str, ...]] = {
    "O": ("OF",),
    "NO": ("OF",),
    "B": ("CF",),
    "AE": ("CF",),
    "Z": ("ZF",),
    "NZ": ("ZF",),
    "BE": ("CF", "ZF"),
    "A": ("CF", "ZF"),
    "S": ("SF",),
    "NS": ("SF",),
    "P": ("PF",),
    "NP": ("PF",),
    "L": ("SF", "OF"),
    "GE": ("SF", "OF"),
    "LE": ("ZF", "SF", "OF"),
    "G": ("ZF", "SF", "OF"),
}

#: Aliases accepted by the parser (canonical code on the right).
CONDITION_ALIASES: Dict[str, str] = {
    "C": "B",
    "NC": "AE",
    "NB": "AE",
    "E": "Z",
    "NE": "NZ",
    "NA": "BE",
    "NBE": "A",
    "PE": "P",
    "PO": "NP",
    "NGE": "L",
    "NL": "GE",
    "NG": "LE",
    "NLE": "G",
}

ARITH_FLAGS = ("CF", "PF", "AF", "ZF", "SF", "OF")
LOGIC_FLAGS = ("CF", "PF", "AF", "ZF", "SF", "OF")  # AF defined as cleared
INCDEC_FLAGS = ("PF", "AF", "ZF", "SF", "OF")

WIDTHS = (8, 16, 32, 64)

_REG = lambda width, src=True, dest=False: OperandTemplate("REG", width, src, dest)
_IMM = lambda width: OperandTemplate("IMM", width, True, False)
_MEM = lambda width, src=True, dest=False: OperandTemplate("MEM", width, src, dest)
_LABEL = OperandTemplate("LABEL", 0, True, False)
_AGEN = OperandTemplate("AGEN", 64, True, False)


def _binary_arith_specs() -> List[InstructionSpec]:
    """ADD/SUB/ADC/SBB/AND/OR/XOR/CMP/TEST in register and memory forms."""
    specs: List[InstructionSpec] = []
    table = [
        ("ADD", (), ARITH_FLAGS),
        ("SUB", (), ARITH_FLAGS),
        ("ADC", ("CF",), ARITH_FLAGS),
        ("SBB", ("CF",), ARITH_FLAGS),
        ("AND", (), LOGIC_FLAGS),
        ("OR", (), LOGIC_FLAGS),
        ("XOR", (), LOGIC_FLAGS),
        ("CMP", (), ARITH_FLAGS),
        ("TEST", (), LOGIC_FLAGS),
    ]
    for mnemonic, reads, writes in table:
        writes_dest = mnemonic not in ("CMP", "TEST")
        for width in WIDTHS:
            imm_width = min(width, 32)
            # register forms (AR)
            specs.append(
                InstructionSpec(
                    mnemonic,
                    (_REG(width, src=True, dest=writes_dest), _REG(width)),
                    "AR",
                    flags_read=reads,
                    flags_written=writes,
                )
            )
            specs.append(
                InstructionSpec(
                    mnemonic,
                    (_REG(width, src=True, dest=writes_dest), _IMM(imm_width)),
                    "AR",
                    flags_read=reads,
                    flags_written=writes,
                )
            )
            # memory forms (MEM)
            if mnemonic != "TEST":
                specs.append(
                    InstructionSpec(
                        mnemonic,
                        (_REG(width, src=True, dest=writes_dest), _MEM(width)),
                        "MEM",
                        flags_read=reads,
                        flags_written=writes,
                    )
                )
            specs.append(
                InstructionSpec(
                    mnemonic,
                    (_MEM(width, src=True, dest=writes_dest), _REG(width)),
                    "MEM",
                    flags_read=reads,
                    flags_written=writes,
                    lockable=writes_dest,
                )
            )
            specs.append(
                InstructionSpec(
                    mnemonic,
                    (_MEM(width, src=True, dest=writes_dest), _IMM(imm_width)),
                    "MEM",
                    flags_read=reads,
                    flags_written=writes,
                    lockable=writes_dest,
                )
            )
    return specs


def _mov_specs() -> List[InstructionSpec]:
    specs: List[InstructionSpec] = []
    for width in WIDTHS:
        imm_width = min(width, 32)
        specs.append(
            InstructionSpec(
                "MOV", (_REG(width, src=False, dest=True), _REG(width)), "AR"
            )
        )
        specs.append(
            InstructionSpec(
                "MOV", (_REG(width, src=False, dest=True), _IMM(imm_width)), "AR"
            )
        )
        specs.append(
            InstructionSpec(
                "MOV", (_REG(width, src=False, dest=True), _MEM(width)), "MEM"
            )
        )
        specs.append(
            InstructionSpec(
                "MOV", (_MEM(width, src=False, dest=True), _REG(width)), "MEM"
            )
        )
        specs.append(
            InstructionSpec(
                "MOV", (_MEM(width, src=False, dest=True), _IMM(imm_width)), "MEM"
            )
        )
    # zero/sign extension
    for mnemonic in ("MOVZX", "MOVSX"):
        for dst_width in (16, 32, 64):
            for src_width in (8, 16):
                if src_width >= dst_width:
                    continue
                specs.append(
                    InstructionSpec(
                        mnemonic,
                        (_REG(dst_width, src=False, dest=True), _REG(src_width)),
                        "AR",
                    )
                )
                specs.append(
                    InstructionSpec(
                        mnemonic,
                        (_REG(dst_width, src=False, dest=True), _MEM(src_width)),
                        "MEM",
                    )
                )
    return specs


def _unary_specs() -> List[InstructionSpec]:
    specs: List[InstructionSpec] = []
    table = [
        ("INC", INCDEC_FLAGS),
        ("DEC", INCDEC_FLAGS),
        ("NEG", ARITH_FLAGS),
        ("NOT", ()),
    ]
    for mnemonic, writes in table:
        for width in WIDTHS:
            specs.append(
                InstructionSpec(
                    mnemonic,
                    (_REG(width, src=True, dest=True),),
                    "AR",
                    flags_written=writes,
                )
            )
            specs.append(
                InstructionSpec(
                    mnemonic,
                    (_MEM(width, src=True, dest=True),),
                    "MEM",
                    flags_written=writes,
                    lockable=True,
                )
            )
    return specs


def _misc_ar_specs() -> List[InstructionSpec]:
    specs: List[InstructionSpec] = []
    for width in (16, 32, 64):
        # SF/ZF/AF/PF are architecturally undefined after IMUL; the
        # emulator defines them deterministically (like DIV), so the
        # spec declares the full arithmetic-flag set as clobbered.
        specs.append(
            InstructionSpec(
                "IMUL",
                (_REG(width, src=True, dest=True), _REG(width)),
                "AR",
                flags_written=ARITH_FLAGS,
            )
        )
        specs.append(
            InstructionSpec(
                "IMUL",
                (_REG(width, src=True, dest=True), _MEM(width)),
                "MEM",
                flags_written=ARITH_FLAGS,
            )
        )
    for width in WIDTHS:
        specs.append(
            InstructionSpec(
                "XCHG",
                (_REG(width, src=True, dest=True), _REG(width, src=True, dest=True)),
                "AR",
            )
        )
    specs.append(
        InstructionSpec("LEA", (_REG(64, src=False, dest=True), _AGEN), "AR")
    )
    for code in CONDITION_CODES:
        flags = CONDITION_FLAGS[code]
        specs.append(
            InstructionSpec(
                f"SET{code}",
                (_REG(8, src=False, dest=True),),
                "AR",
                flags_read=flags,
            )
        )
        for width in (16, 32, 64):
            specs.append(
                InstructionSpec(
                    f"CMOV{code}",
                    (_REG(width, src=True, dest=True), _REG(width)),
                    "AR",
                    flags_read=flags,
                )
            )
            specs.append(
                InstructionSpec(
                    f"CMOV{code}",
                    (_REG(width, src=True, dest=True), _MEM(width)),
                    "MEM",
                    flags_read=flags,
                )
            )
    return specs


def _division_specs() -> List[InstructionSpec]:
    """DIV/IDIV: the only variable-latency instructions in base x86 (§6.1)."""
    specs: List[InstructionSpec] = []
    for mnemonic in ("DIV", "IDIV"):
        for width in (32, 64):
            implicit = ("RAX", "RDX")
            specs.append(
                InstructionSpec(
                    mnemonic,
                    (_REG(width),),
                    "VAR",
                    flags_written=ARITH_FLAGS,  # architecturally undefined; we define
                    implicit_reads=implicit,
                    implicit_writes=implicit,
                )
            )
            specs.append(
                InstructionSpec(
                    mnemonic,
                    (_MEM(width),),
                    "VAR",
                    flags_written=ARITH_FLAGS,
                    implicit_reads=implicit,
                    implicit_writes=implicit,
                )
            )
    return specs


def _branch_specs() -> List[InstructionSpec]:
    specs: List[InstructionSpec] = []
    for code in CONDITION_CODES:
        specs.append(
            InstructionSpec(
                f"J{code}", (_LABEL,), "CB", flags_read=CONDITION_FLAGS[code]
            )
        )
    specs.append(InstructionSpec("JMP", (_LABEL,), "UNCOND"))
    return specs


def _extension_specs() -> List[InstructionSpec]:
    """Indirect control flow and fences (handwritten gadgets only)."""
    return [
        InstructionSpec("JMP", (_REG(64),), "IND"),
        # MOV reg, .label -- materialize a code location (gadget helper for
        # indirect jumps); not control flow itself, hence category AR.
        InstructionSpec("MOV", (_REG(64, src=False, dest=True), _LABEL), "AR"),
        InstructionSpec(
            "CALL",
            (_LABEL,),
            "CALL",
            implicit_reads=("RSP",),
            implicit_writes=("RSP",),
        ),
        InstructionSpec(
            "RET", (), "RET", implicit_reads=("RSP",), implicit_writes=("RSP",)
        ),
        InstructionSpec("LFENCE", (), "FENCE"),
        InstructionSpec("MFENCE", (), "FENCE"),
        InstructionSpec("SFENCE", (), "FENCE"),
        InstructionSpec("NOP", (), "AR"),
    ]


def _build_catalog() -> List[InstructionSpec]:
    catalog: List[InstructionSpec] = []
    catalog.extend(_binary_arith_specs())
    catalog.extend(_mov_specs())
    catalog.extend(_unary_specs())
    catalog.extend(_misc_ar_specs())
    catalog.extend(_division_specs())
    catalog.extend(_branch_specs())
    catalog.extend(_extension_specs())
    return catalog


_CATALOG: List[InstructionSpec] = _build_catalog()


FULL_INSTRUCTION_SET = InstructionSet(_CATALOG)

_SUBSET_CATEGORIES: Dict[str, Tuple[str, ...]] = {
    "AR": ("AR",),
    "MEM": ("MEM",),
    "VAR": ("VAR",),
    "CB": ("CB", "UNCOND"),
    "IND": ("IND", "CALL", "RET"),
    "FENCE": ("FENCE",),
}


def subset_names() -> Tuple[str, ...]:
    """Names accepted by :func:`instruction_subset`."""
    return tuple(_SUBSET_CATEGORIES)


def instruction_subset(names: Iterable[str]) -> InstructionSet:
    """Build an instruction set from subset names, e.g. ``["AR", "MEM"]``.

    Matches the paper's notation: ``instruction_subset("AR+MEM+CB".split("+"))``.
    """
    categories: List[str] = []
    for name in names:
        try:
            categories.extend(_SUBSET_CATEGORIES[name.upper()])
        except KeyError:
            raise ValueError(
                f"unknown subset {name!r}; expected one of {subset_names()}"
            ) from None
    return InstructionSet(FULL_INSTRUCTION_SET.by_category(*categories))


def parse_subset_expression(expression: str) -> InstructionSet:
    """Parse a ``"AR+MEM+CB"``-style expression into an instruction set."""
    return instruction_subset(expression.split("+"))


def canonical_condition(code: str) -> str:
    """Normalize a condition-code mnemonic suffix (``NE`` -> ``NZ``)."""
    code = code.upper()
    if code in CONDITION_FLAGS:
        return code
    if code in CONDITION_ALIASES:
        return CONDITION_ALIASES[code]
    raise ValueError(f"unknown condition code: {code!r}")


def canonical_mnemonic(mnemonic: str) -> str:
    """Normalize condition-code aliases in mnemonics (CMOVNBE -> CMOVA)."""
    mnemonic = mnemonic.upper()
    if mnemonic == "JMP":
        return mnemonic
    for prefix in ("CMOV", "SET", "J"):
        if mnemonic.startswith(prefix):
            suffix = mnemonic[len(prefix) :]
            try:
                return prefix + canonical_condition(suffix)
            except ValueError:
                continue
    return mnemonic


def _build_condition_of_table() -> Dict[str, Optional[str]]:
    """``mnemonic -> canonical condition code`` for every Jcc/CMOVcc/SETcc
    form (canonical codes and aliases), precomputed at import: the
    per-call prefix scan plus suffix canonicalization was rebuilt on
    every conditional-branch decode of the emulation hot loop."""
    table: Dict[str, Optional[str]] = {"JMP": None}
    for code in (*CONDITION_FLAGS, *CONDITION_ALIASES):
        canonical = canonical_condition(code)
        for prefix in ("CMOV", "SET", "J"):
            table[prefix + code] = canonical
    return table


_CONDITION_OF: Dict[str, Optional[str]] = _build_condition_of_table()


def condition_of(mnemonic: str) -> Optional[str]:
    """Extract the condition code from ``Jcc``/``CMOVcc``/``SETcc``.

    Served from a table built at module import; unknown mnemonics (no
    condition suffix) are memoized as ``None`` on first sight.
    """
    mnemonic = mnemonic.upper()
    try:
        return _CONDITION_OF[mnemonic]
    except KeyError:
        pass
    result: Optional[str] = None
    for prefix in ("CMOV", "SET", "J"):
        if mnemonic.startswith(prefix) and mnemonic not in ("JMP",):
            suffix = mnemonic[len(prefix) :]
            try:
                result = canonical_condition(suffix)
                break
            except ValueError:
                continue
    _CONDITION_OF[mnemonic] = result
    return result


__all__ = [
    "CONDITION_CODES",
    "CONDITION_FLAGS",
    "CONDITION_ALIASES",
    "FULL_INSTRUCTION_SET",
    "InstructionSet",
    "instruction_subset",
    "parse_subset_expression",
    "subset_names",
    "canonical_condition",
    "condition_of",
]
