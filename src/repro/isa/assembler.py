"""Intel-syntax rendering and parsing of test-case programs.

Rendering produces the format the paper uses in Figures 3 and 4; parsing
accepts the same format so that handwritten gadgets (Table 5) and minimized
counterexamples round-trip through text.
"""

from __future__ import annotations

import re
from typing import Callable, List, Optional, Sequence, Tuple

from repro.isa.instruction import (
    BasicBlock,
    Instruction,
    TestCaseProgram,
)
from repro.isa.instruction_set import (
    FULL_INSTRUCTION_SET,
    InstructionSet,
    canonical_mnemonic,
)
from repro.isa.operands import (
    AgenOperand,
    ImmediateOperand,
    LabelOperand,
    MemoryOperand,
    Operand,
    RegisterOperand,
)
from repro.isa.registers import is_register, register_width

_SIZE_NAMES = {"byte": 8, "word": 16, "dword": 32, "qword": 64}
_MEM_RE = re.compile(
    r"^(?:(?P<size>byte|word|dword|qword)\s+ptr\s+)?"
    r"\[(?P<expr>[^\]]+)\]$",
    re.IGNORECASE,
)


def render_instruction(instruction: Instruction) -> str:
    """Render one instruction in Intel syntax."""
    return str(instruction)


def render_program_with(
    program: TestCaseProgram,
    render: "Callable[[Instruction], str]",
    numbered: bool = False,
) -> str:
    """Render a program block-by-block with a per-ISA instruction renderer.

    Shared by all architecture backends: block labelling and numbering
    are syntax-neutral, only the instruction text differs.
    """
    lines: List[str] = []
    for i, block in enumerate(program.blocks):
        prefix = f".{block.name}: " if i > 0 else ""
        instructions = list(block.instructions())
        if not instructions and i > 0:
            # an emptied block (instruction minimization can drain one)
            # still owns its label: branches may target it, and the text
            # must parse back to the same block structure
            lines.append(f".{block.name}:")
            continue
        for j, instruction in enumerate(instructions):
            label = prefix if j == 0 else " " * len(prefix)
            lines.append(f"{label}{render(instruction)}")
    if numbered:
        lines = [f"{i + 1:3d} {line}" for i, line in enumerate(lines)]
    return "\n".join(lines)


def render_program(program: TestCaseProgram, numbered: bool = False) -> str:
    """Render a program block-by-block, Figure 3 style."""
    return render_program_with(program, render_instruction, numbered)


def _parse_int(text: str) -> Optional[int]:
    text = text.strip().replace("_", "")
    negative = text.startswith("-")
    if negative:
        text = text[1:].strip()
    try:
        if text.lower().startswith("0x"):
            value = int(text, 16)
        elif text.lower().startswith("0b"):
            value = int(text, 2)
        elif text.isdigit():
            value = int(text)
        else:
            return None
    except ValueError:
        return None
    return -value if negative else value


def _parse_address_expr(expr: str) -> Tuple[str, Optional[str], int]:
    """Parse ``R14 + RAX + 8`` into (base, index, displacement)."""
    base: Optional[str] = None
    index: Optional[str] = None
    displacement = 0
    # normalize "a - 8" into "a + -8"
    expr = expr.replace("-", "+ -")
    for token in expr.split("+"):
        token = token.strip()
        if not token:
            continue
        value = _parse_int(token)
        if value is not None:
            displacement += value
        elif is_register(token):
            if base is None:
                base = token.upper()
            elif index is None:
                index = token.upper()
            else:
                raise ValueError(f"too many registers in address: {expr!r}")
        else:
            raise ValueError(f"cannot parse address term: {token!r}")
    if base is None:
        raise ValueError(f"address without base register: {expr!r}")
    return base, index, displacement


def _parse_operand(text: str, agen: bool = False) -> Operand:
    text = text.strip()
    match = _MEM_RE.match(text)
    if match:
        base, index, displacement = _parse_address_expr(match.group("expr"))
        if agen:
            return AgenOperand(base, index, displacement)
        size = match.group("size")
        width = _SIZE_NAMES[size.lower()] if size else 64
        return MemoryOperand(base, index, displacement, width)
    if text.startswith("."):
        return LabelOperand(text[1:])
    if is_register(text):
        return RegisterOperand(text)
    value = _parse_int(text)
    if value is not None:
        return ImmediateOperand(value)
    raise ValueError(f"cannot parse operand: {text!r}")


def _operand_kind(operand: Operand) -> str:
    if isinstance(operand, RegisterOperand):
        return "REG"
    if isinstance(operand, ImmediateOperand):
        return "IMM"
    if isinstance(operand, MemoryOperand):
        return "MEM"
    if isinstance(operand, LabelOperand):
        return "LABEL"
    if isinstance(operand, AgenOperand):
        return "AGEN"
    raise TypeError(f"unknown operand type: {operand!r}")


def _operand_width(operand: Operand) -> Optional[int]:
    if isinstance(operand, RegisterOperand):
        return register_width(operand.name)
    if isinstance(operand, MemoryOperand):
        return operand.width
    return None


def parse_instruction(
    line: str, instruction_set: Optional[InstructionSet] = None
) -> Instruction:
    """Parse a single Intel-syntax instruction line."""
    instruction_set = instruction_set or FULL_INSTRUCTION_SET
    text = line.strip()
    lock = False
    upper = text.upper()
    for prefix in ("LOCK ", "REX "):
        if upper.startswith(prefix):
            lock = lock or prefix.strip() == "LOCK"
            text = text[len(prefix) :].strip()
            upper = text.upper()
    parts = text.split(None, 1)
    mnemonic = canonical_mnemonic(parts[0])
    operand_texts = (
        [t.strip() for t in parts[1].split(",")] if len(parts) > 1 else []
    )
    agen = mnemonic == "LEA"
    operands = tuple(
        _parse_operand(t, agen=agen and i == 1)
        for i, t in enumerate(operand_texts)
    )
    kinds = tuple(_operand_kind(op) for op in operands)
    width = _operand_width(operands[0]) if operands else None
    spec = instruction_set.find(mnemonic, kinds, width)
    return Instruction(spec, operands, lock=lock)


def parse_program_with(
    text: str,
    name: str,
    parse_line: "Callable[[str], Instruction]",
    comment_chars: str = "#;",
) -> TestCaseProgram:
    """Parse a multi-line program with a per-ISA line parser.

    The block structure is syntax-neutral: lines starting with ``#`` or
    ``;`` (or inline after those characters) are comments, labels are
    ``.name:`` and may share a line with an instruction, as in the
    paper's listings. ``//`` comments can be enabled via
    ``comment_chars``.
    """
    blocks: List[BasicBlock] = [BasicBlock("entry")]
    comment_re = re.compile("|".join(re.escape(c) for c in comment_chars))
    for raw_line in text.splitlines():
        line = comment_re.split(raw_line, maxsplit=1)[0].strip()
        if not line:
            continue
        label_match = re.match(r"^\.(\w+)\s*:\s*(.*)$", line)
        if label_match:
            blocks.append(BasicBlock(label_match.group(1)))
            line = label_match.group(2).strip()
            if not line:
                continue
        instruction = parse_line(line)
        block = blocks[-1]
        if instruction.is_control_flow and not instruction.is_call:
            block.terminators.append(instruction)
        elif block.terminators:
            # instruction after a terminator: implicit unreachable block split
            blocks.append(BasicBlock(f"anon{len(blocks)}"))
            blocks[-1].body.append(instruction)
        else:
            block.body.append(instruction)
    if not blocks[0].body and not blocks[0].terminators and len(blocks) > 1:
        blocks = blocks[1:]
    return TestCaseProgram(blocks=blocks, name=name)


def parse_program(
    text: str,
    name: str = "testcase",
    instruction_set: Optional[InstructionSet] = None,
) -> TestCaseProgram:
    """Parse a multi-line Intel-syntax program into a :class:`TestCaseProgram`."""
    return parse_program_with(
        text, name, lambda line: parse_instruction(line, instruction_set)
    )


def assemble(lines: Sequence[str], name: str = "testcase") -> TestCaseProgram:
    """Build a program from a list of instruction/label lines."""
    return parse_program("\n".join(lines), name=name)


__all__ = [
    "assemble",
    "parse_instruction",
    "parse_program",
    "parse_program_with",
    "render_instruction",
    "render_program",
    "render_program_with",
]
