"""Operand kinds for the x86-64 subset.

An instruction instance carries a list of concrete operands. The kinds are:

- :class:`RegisterOperand` -- a register view (width derived from the name);
- :class:`ImmediateOperand` -- a constant;
- :class:`MemoryOperand` -- ``[base + index + displacement]`` with an access
  width; in generated test cases ``base`` is always the sandbox register;
- :class:`LabelOperand` -- a basic-block label (branch targets);
- :class:`AgenOperand` -- address-generation operand for LEA;
- :class:`FlagsOperand` -- implicit FLAGS read/write markers on specs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.isa.registers import canonical_register, register_width


class Operand:
    """Base class for all operand kinds."""

    __slots__ = ()


@dataclass(frozen=True)
class RegisterOperand(Operand):
    """A register view operand, e.g. ``RAX`` or ``BL``."""

    name: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", self.name.upper())
        canonical_register(self.name)  # validate

    @property
    def width(self) -> int:
        """Width of the view in bits."""
        return register_width(self.name)

    @property
    def canonical(self) -> str:
        """The canonical 64-bit register backing this view."""
        return canonical_register(self.name)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ImmediateOperand(Operand):
    """An immediate constant operand."""

    value: int
    width: int = 32

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class MemoryOperand(Operand):
    """A memory operand ``width ptr [base + index + displacement]``."""

    base: str
    index: Optional[str] = None
    displacement: int = 0
    width: int = 64

    def __post_init__(self) -> None:
        object.__setattr__(self, "base", self.base.upper())
        canonical_register(self.base)
        if self.index is not None:
            object.__setattr__(self, "index", self.index.upper())
            canonical_register(self.index)

    def address_registers(self) -> Tuple[str, ...]:
        """Canonical registers participating in address generation."""
        regs = [canonical_register(self.base)]
        if self.index is not None:
            regs.append(canonical_register(self.index))
        return tuple(regs)

    def __str__(self) -> str:
        size_name = {8: "byte", 16: "word", 32: "dword", 64: "qword"}[self.width]
        parts = [self.base]
        if self.index is not None:
            parts.append(self.index)
        expr = " + ".join(parts)
        if self.displacement:
            sign = "+" if self.displacement > 0 else "-"
            expr = f"{expr} {sign} {abs(self.displacement)}"
        return f"{size_name} ptr [{expr}]"


@dataclass(frozen=True)
class LabelOperand(Operand):
    """A basic-block label operand (branch target)."""

    name: str

    def __str__(self) -> str:
        return f".{self.name}"


@dataclass(frozen=True)
class AgenOperand(Operand):
    """Address-generation operand for LEA (no memory access)."""

    base: str
    index: Optional[str] = None
    displacement: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "base", self.base.upper())
        canonical_register(self.base)
        if self.index is not None:
            object.__setattr__(self, "index", self.index.upper())
            canonical_register(self.index)

    def __str__(self) -> str:
        parts = [self.base]
        if self.index is not None:
            parts.append(self.index)
        expr = " + ".join(parts)
        if self.displacement:
            sign = "+" if self.displacement > 0 else "-"
            expr = f"{expr} {sign} {abs(self.displacement)}"
        return f"[{expr}]"


@dataclass(frozen=True)
class FlagsOperand(Operand):
    """Implicit FLAGS operand used in instruction specs.

    ``read`` / ``written`` list the flag bits the instruction reads and
    writes; an empty tuple means none.
    """

    read: Tuple[str, ...] = ()
    written: Tuple[str, ...] = ()

    def __str__(self) -> str:
        return "FLAGS"
