"""Register names: the cross-architecture view registry plus the x86-64
register file.

Two things live here:

1. **The view registry.** Operands and instructions validate and resolve
   register names through :func:`canonical_register`,
   :func:`register_width` and :func:`is_register`. The registry holds the
   union of all registered architectures' register views (names are
   namespaced by convention — ``RAX``/``R8D`` vs ``X0``/``W0`` — so the
   union is collision-free); architecture backends contribute their views
   via :func:`register_views` when they register themselves with
   :mod:`repro.arch`. On a miss the registry lazily loads the built-in
   backends, so ``RegisterOperand("X0")`` works without an explicit
   ``import repro.arch``.

2. **The x86-64 register file.** Canonical registers are the 64-bit
   GPRs; narrower names (``EAX``, ``AX``, ``AL``, ``R8D``, ...) are
   *views* described by a width in bits. Writes to 32-bit views zero the
   upper half (x86-64 semantics); writes to 16/8-bit views merge. The
   FLAGS register is modelled as six independent boolean bits (CF, PF,
   AF, ZF, SF, OF). These constants remain here as the x86-64 backend's
   data (re-exported by :mod:`repro.arch.x86_64`); pipeline code should
   consume them through the architecture descriptor, never directly.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

#: Canonical 64-bit general-purpose registers. R14 is reserved by the test
#: case generator as the sandbox base pointer (as in the paper's Figure 3).
GPR_NAMES: Tuple[str, ...] = (
    "RAX",
    "RBX",
    "RCX",
    "RDX",
    "RSI",
    "RDI",
    "RBP",
    "RSP",
    "R8",
    "R9",
    "R10",
    "R11",
    "R12",
    "R13",
    "R14",
    "R15",
)

#: The register that always holds the sandbox base address in generated and
#: handwritten test cases.
SANDBOX_BASE_REGISTER = "R14"

#: FLAGS bits implemented by the emulator, in their x86 bit order.
FLAG_BITS: Tuple[str, ...] = ("CF", "PF", "AF", "ZF", "SF", "OF")

_LEGACY_VIEWS: Dict[str, Tuple[str, int]] = {}


def _build_views() -> None:
    legacy = {
        "RAX": ("EAX", "AX", "AH", "AL"),
        "RBX": ("EBX", "BX", "BH", "BL"),
        "RCX": ("ECX", "CX", "CH", "CL"),
        "RDX": ("EDX", "DX", "DH", "DL"),
        "RSI": ("ESI", "SI", None, "SIL"),
        "RDI": ("EDI", "DI", None, "DIL"),
        "RBP": ("EBP", "BP", None, "BPL"),
        "RSP": ("ESP", "SP", None, "SPL"),
    }
    for canonical, (name32, name16, name8h, name8) in legacy.items():
        _LEGACY_VIEWS[canonical] = (canonical, 64)
        _LEGACY_VIEWS[name32] = (canonical, 32)
        _LEGACY_VIEWS[name16] = (canonical, 16)
        _LEGACY_VIEWS[name8] = (canonical, 8)
        if name8h is not None:
            # High-byte views are modelled as 8-bit low views for simplicity;
            # the generator never emits them, the parser accepts them.
            _LEGACY_VIEWS[name8h] = (canonical, 8)
    for index in range(8, 16):
        canonical = f"R{index}"
        _LEGACY_VIEWS[canonical] = (canonical, 64)
        _LEGACY_VIEWS[f"R{index}D"] = (canonical, 32)
        _LEGACY_VIEWS[f"R{index}W"] = (canonical, 16)
        _LEGACY_VIEWS[f"R{index}B"] = (canonical, 8)


_build_views()

#: The cross-architecture view registry: name -> (canonical, width).
#: Seeded with the x86-64 views; other backends add theirs through
#: :func:`register_views`.
_ALL_VIEWS: Dict[str, Tuple[str, int]] = dict(_LEGACY_VIEWS)

_BACKENDS_LOADED = False


def register_views(views: Mapping[str, Tuple[str, int]]) -> None:
    """Add an architecture's register views to the global registry."""
    _ALL_VIEWS.update(
        (name.upper(), (canonical.upper(), width))
        for name, (canonical, width) in views.items()
    )


def _lookup(name: str) -> Tuple[str, int]:
    key = name.upper()
    try:
        return _ALL_VIEWS[key]
    except KeyError:
        pass
    # Lazily register the built-in backends (they contribute their views
    # on import) and retry once: this keeps ``RegisterOperand("X0")``
    # working even before repro.arch was imported explicitly.
    global _BACKENDS_LOADED
    if not _BACKENDS_LOADED:
        _BACKENDS_LOADED = True
        import repro.arch  # noqa: F401  (import side effect: registration)

        try:
            return _ALL_VIEWS[key]
        except KeyError:
            pass
    raise ValueError(f"unknown register: {name!r}")


def canonical_register(name: str) -> str:
    """Return the canonical register backing ``name`` (any architecture).

    >>> canonical_register("EAX")
    'RAX'
    >>> canonical_register("r9d")
    'R9'
    """
    return _lookup(name)[0]


def register_width(name: str) -> int:
    """Return the width in bits of register view ``name``.

    >>> register_width("AX")
    16
    """
    return _lookup(name)[1]


def is_register(name: str) -> bool:
    """Return True if ``name`` names a known register view."""
    try:
        _lookup(name)
        return True
    except ValueError:
        return False


def view_name(canonical: str, width: int) -> str:
    """Return the conventional name of the ``width``-bit view of a register.

    >>> view_name("RAX", 16)
    'AX'
    >>> view_name("R10", 32)
    'R10D'
    """
    canonical = canonical.upper()
    if canonical not in GPR_NAMES:
        raise ValueError(f"not a canonical register: {canonical!r}")
    if width == 64:
        return canonical
    if canonical.startswith("R") and canonical[1:].isdigit():
        suffix = {32: "D", 16: "W", 8: "B"}[width]
        return canonical + suffix
    base = canonical[1:]  # e.g. "AX" from "RAX", "SI" from "RSI"
    if width == 32:
        return "E" + base
    if width == 16:
        return base
    if width == 8:
        return base[0] + "L" if base.endswith("X") else base + "L"
    raise ValueError(f"unsupported register width: {width}")
