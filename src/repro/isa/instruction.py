"""Instructions, basic blocks and test-case programs.

A :class:`TestCaseProgram` is the unit of testing in MRT (paper §5.1): a DAG
of basic blocks whose terminators are direct/conditional jumps, filled with
instructions from the tested ISA subset. Programs are linearized into a flat
instruction stream (with labels resolved to instruction indices) before
being handed to the functional emulator or the CPU simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.isa.operands import (
    AgenOperand,
    ImmediateOperand,
    LabelOperand,
    MemoryOperand,
    Operand,
    RegisterOperand,
)
from repro.isa.registers import canonical_register

#: Instruction categories, matching the paper's ISA subsets (§6.1) plus the
#: infrastructure categories used by handwritten gadgets.
CATEGORIES = ("AR", "MEM", "VAR", "CB", "UNCOND", "IND", "CALL", "RET", "FENCE")


@dataclass(frozen=True)
class OperandTemplate:
    """Template for one operand slot of an instruction spec."""

    kind: str  # "REG", "IMM", "MEM", "LABEL", "AGEN"
    width: int = 64
    src: bool = True
    dest: bool = False


@dataclass(frozen=True)
class InstructionSpec:
    """Immutable description of one instruction form in the catalog.

    A *form* is a mnemonic plus a concrete operand shape (e.g. ``ADD r64,
    r64`` and ``ADD r64, imm`` are distinct specs), mirroring how nanoBench's
    XML catalog enumerates instruction variants.
    """

    mnemonic: str
    operands: Tuple[OperandTemplate, ...]
    category: str
    flags_read: Tuple[str, ...] = ()
    flags_written: Tuple[str, ...] = ()
    implicit_reads: Tuple[str, ...] = ()  # canonical register names
    implicit_writes: Tuple[str, ...] = ()
    lockable: bool = False

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise ValueError(f"unknown category: {self.category!r}")

    @property
    def name(self) -> str:
        """Unique human-readable name of the form, e.g. ``ADD_r64_m64``."""
        parts = [self.mnemonic]
        for template in self.operands:
            parts.append(f"{template.kind.lower()}{template.width}")
        return "_".join(parts)

    @property
    def has_memory_operand(self) -> bool:
        return any(t.kind == "MEM" for t in self.operands)

    @property
    def is_control_flow(self) -> bool:
        return self.category in ("CB", "UNCOND", "IND", "CALL", "RET")


@dataclass(frozen=True)
class Instruction:
    """A concrete instruction: a spec plus concrete operands."""

    spec: InstructionSpec
    operands: Tuple[Operand, ...]
    lock: bool = False

    def __post_init__(self) -> None:
        if len(self.operands) != len(self.spec.operands):
            raise ValueError(
                f"{self.spec.mnemonic}: expected {len(self.spec.operands)} "
                f"operands, got {len(self.operands)}"
            )
        if self.lock and not self.spec.lockable:
            raise ValueError(f"{self.spec.mnemonic} does not accept LOCK")

    @property
    def mnemonic(self) -> str:
        return self.spec.mnemonic

    @property
    def category(self) -> str:
        return self.spec.category

    @property
    def is_cond_branch(self) -> bool:
        return self.spec.category == "CB"

    @property
    def is_uncond_branch(self) -> bool:
        return self.spec.category == "UNCOND"

    @property
    def is_indirect_branch(self) -> bool:
        return self.spec.category == "IND"

    @property
    def is_call(self) -> bool:
        return self.spec.category == "CALL"

    @property
    def is_ret(self) -> bool:
        return self.spec.category == "RET"

    @property
    def is_control_flow(self) -> bool:
        return self.spec.is_control_flow

    @property
    def is_fence(self) -> bool:
        return self.spec.category == "FENCE"

    def memory_accesses(self) -> List[Tuple[MemoryOperand, bool, bool]]:
        """Return ``(operand, is_read, is_write)`` for each memory operand.

        Calls and returns access the stack implicitly and are handled by the
        emulator directly, not through this method.
        """
        accesses = []
        for operand, template in zip(self.operands, self.spec.operands):
            if isinstance(operand, MemoryOperand):
                accesses.append((operand, template.src, template.dest))
        return accesses

    @property
    def is_load(self) -> bool:
        return any(read for _, read, _ in self.memory_accesses())

    @property
    def is_store(self) -> bool:
        return any(write for _, _, write in self.memory_accesses())

    def registers_read(self) -> Tuple[str, ...]:
        """Canonical registers read, including address registers."""
        regs: List[str] = list(self.spec.implicit_reads)
        for operand, template in zip(self.operands, self.spec.operands):
            if isinstance(operand, RegisterOperand) and template.src:
                regs.append(operand.canonical)
            elif isinstance(operand, (MemoryOperand, AgenOperand)):
                regs.append(canonical_register(operand.base))
                if operand.index is not None:
                    regs.append(canonical_register(operand.index))
        return tuple(dict.fromkeys(regs))

    def registers_written(self) -> Tuple[str, ...]:
        """Canonical registers written."""
        regs: List[str] = list(self.spec.implicit_writes)
        for operand, template in zip(self.operands, self.spec.operands):
            if isinstance(operand, RegisterOperand) and template.dest:
                regs.append(operand.canonical)
        return tuple(dict.fromkeys(regs))

    @property
    def flags_read(self) -> Tuple[str, ...]:
        return self.spec.flags_read

    @property
    def flags_written(self) -> Tuple[str, ...]:
        return self.spec.flags_written

    def label_target(self) -> Optional[str]:
        """The label name this instruction jumps to, if any."""
        for operand in self.operands:
            if isinstance(operand, LabelOperand):
                return operand.name
        return None

    def with_operands(self, operands: Sequence[Operand]) -> "Instruction":
        """Return a copy with different operands (used by instrumentation)."""
        return Instruction(self.spec, tuple(operands), self.lock)

    def __str__(self) -> str:
        text = self.mnemonic
        if self.lock:
            text = "LOCK " + text
        if self.operands:
            text += " " + ", ".join(str(op) for op in self.operands)
        return text


class InstructionSet:
    """A queryable collection of instruction specs (architecture-neutral).

    Each backend's full catalog is an instance;
    :meth:`repro.arch.base.Architecture.instruction_subset` builds the
    per-experiment subsets of Table 2.
    """

    def __init__(self, specs: Sequence[InstructionSpec]):
        self._specs: Tuple[InstructionSpec, ...] = tuple(specs)
        self._by_mnemonic: Dict[str, List[InstructionSpec]] = {}
        for spec in self._specs:
            self._by_mnemonic.setdefault(spec.mnemonic, []).append(spec)

    @property
    def specs(self) -> Tuple[InstructionSpec, ...]:
        return self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self):
        return iter(self._specs)

    def by_category(self, *categories: str) -> List[InstructionSpec]:
        return [s for s in self._specs if s.category in categories]

    def by_mnemonic(self, mnemonic: str) -> List[InstructionSpec]:
        return list(self._by_mnemonic.get(mnemonic.upper(), []))

    def find(
        self,
        mnemonic: str,
        kinds: Sequence[str],
        width: Optional[int] = None,
    ) -> InstructionSpec:
        """Find the spec matching a mnemonic and operand-kind shape.

        ``kinds`` is a sequence like ``("REG", "IMM")``; ``width`` matches the
        first operand's width when given. Used by the assembler parsers.
        """
        mnemonic = mnemonic.upper()
        candidates = [
            spec
            for spec in self._by_mnemonic.get(mnemonic, [])
            if tuple(t.kind for t in spec.operands) == tuple(kinds)
        ]
        if width is not None:
            candidates = [
                spec
                for spec in candidates
                if not spec.operands or spec.operands[0].width == width
            ]
        if not candidates:
            raise KeyError(
                f"no instruction form {mnemonic} {'/'.join(kinds)} width={width}"
            )
        return candidates[0]


@dataclass
class BasicBlock:
    """A basic block: a label, straight-line body and terminator jumps."""

    name: str
    body: List[Instruction] = field(default_factory=list)
    terminators: List[Instruction] = field(default_factory=list)

    def instructions(self) -> Iterator[Instruction]:
        yield from self.body
        yield from self.terminators

    def successors(self) -> List[str]:
        """Labels of blocks this block can branch to (not fallthrough)."""
        return [
            target
            for instr in self.terminators
            if (target := instr.label_target()) is not None
        ]

    def __len__(self) -> int:
        return len(self.body) + len(self.terminators)


@dataclass
class LinearProgram:
    """A flattened program: instruction stream + label-to-index map."""

    instructions: List[Instruction]
    label_to_index: Dict[str, int]
    #: for each instruction, the name of the block it belongs to
    block_of: List[str]

    def __len__(self) -> int:
        return len(self.instructions)

    def target_index(self, instruction: Instruction) -> Optional[int]:
        """Resolve the branch target of ``instruction`` to an index."""
        label = instruction.label_target()
        if label is None:
            return None
        return self.label_to_index[label]


@dataclass
class TestCaseProgram:
    """A test case: an ordered list of basic blocks forming a DAG.

    Block order defines the memory layout (and thus fallthrough); the first
    block is the entry point. The program ends after the last block.
    """

    __test__ = False  # not a pytest class, despite the name

    blocks: List[BasicBlock] = field(default_factory=list)
    name: str = "testcase"

    def block_named(self, name: str) -> BasicBlock:
        for block in self.blocks:
            if block.name == name:
                return block
        raise KeyError(f"no block named {name!r}")

    def all_instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions()

    @property
    def num_instructions(self) -> int:
        return sum(len(block) for block in self.blocks)

    def linearize(self) -> LinearProgram:
        """Flatten the block list into a :class:`LinearProgram`."""
        instructions: List[Instruction] = []
        block_of: List[str] = []
        label_to_index: Dict[str, int] = {}
        for block in self.blocks:
            label_to_index[block.name] = len(instructions)
            for instr in block.instructions():
                instructions.append(instr)
                block_of.append(block.name)
        # The conventional exit label points one past the end.
        label_to_index.setdefault("exit", len(instructions))
        return LinearProgram(instructions, label_to_index, block_of)

    def validate_dag(self) -> None:
        """Raise ``ValueError`` if any branch goes backwards (loop risk)."""
        order = {block.name: i for i, block in enumerate(self.blocks)}
        for i, block in enumerate(self.blocks):
            for successor in block.successors():
                if successor == "exit":
                    continue
                if successor not in order:
                    raise ValueError(f"undefined label: {successor!r}")
                if order[successor] <= i:
                    raise ValueError(
                        f"backward edge {block.name} -> {successor}: "
                        "test cases must be DAGs"
                    )

    def clone(self) -> "TestCaseProgram":
        """Deep-ish copy (instructions are immutable and shared)."""
        return TestCaseProgram(
            blocks=[
                BasicBlock(b.name, list(b.body), list(b.terminators))
                for b in self.blocks
            ],
            name=self.name,
        )


def make_instruction(
    spec: InstructionSpec, *operands: Operand, lock: bool = False
) -> Instruction:
    """Convenience constructor used throughout tests and gadgets."""
    return Instruction(spec, tuple(operands), lock)


__all__ = [
    "CATEGORIES",
    "OperandTemplate",
    "InstructionSpec",
    "InstructionSet",
    "Instruction",
    "BasicBlock",
    "LinearProgram",
    "TestCaseProgram",
    "make_instruction",
    "AgenOperand",
    "ImmediateOperand",
    "LabelOperand",
    "MemoryOperand",
    "RegisterOperand",
]
