"""x86-64 subset ISA substrate.

This package replaces the paper's nanoBench XML instruction catalog and the
x86 machine-code toolchain with a self-contained, data-driven instruction
set: registers with sub-register views, operand kinds, an instruction
catalog split into the paper's test subsets (AR, MEM, VAR, CB, plus the IND
extension used by handwritten gadgets), and an Intel-syntax assembler /
parser for programs.
"""

from repro.isa.registers import (
    FLAG_BITS,
    GPR_NAMES,
    SANDBOX_BASE_REGISTER,
    canonical_register,
    register_width,
)
from repro.isa.operands import (
    AgenOperand,
    FlagsOperand,
    ImmediateOperand,
    LabelOperand,
    MemoryOperand,
    Operand,
    RegisterOperand,
)
from repro.isa.instruction import (
    BasicBlock,
    Instruction,
    InstructionSpec,
    TestCaseProgram,
)
from repro.isa.instruction_set import (
    InstructionSet,
    instruction_subset,
    subset_names,
)
from repro.isa.assembler import parse_program, render_instruction, render_program

__all__ = [
    "FLAG_BITS",
    "GPR_NAMES",
    "SANDBOX_BASE_REGISTER",
    "canonical_register",
    "register_width",
    "AgenOperand",
    "FlagsOperand",
    "ImmediateOperand",
    "LabelOperand",
    "MemoryOperand",
    "Operand",
    "RegisterOperand",
    "BasicBlock",
    "Instruction",
    "InstructionSpec",
    "TestCaseProgram",
    "InstructionSet",
    "instruction_subset",
    "subset_names",
    "parse_program",
    "render_instruction",
    "render_program",
]
