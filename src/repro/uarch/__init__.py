"""Speculative CPU simulator substrate (replaces the Intel CPUs under test).

The paper treats the CPU as a black box that turns ``(Prog, Data, Ctx)``
into a hardware trace. This package provides such a black box: a
deterministic, timing-based speculative interpreter with the leak
mechanisms the paper's evaluation exercises — branch misprediction
(Spectre V1), speculative store bypass (V4), operand-dependent division
latency (the V1-var/V4-var races of §6.3), microcode assists with
stale-data forwarding (MDS) or zero injection (LVI-Null), and
speculative-store cache updates (the §6.4 Coffee Lake behaviour).
"""

from repro.uarch.cache import L1DCache
from repro.uarch.config import (
    UarchConfig,
    coffee_lake,
    preset,
    preset_names,
    skylake,
)
from repro.uarch.cpu import RunInfo, SpeculativeCPU
from repro.uarch.lfb import LineFillBuffer
from repro.uarch.predictors import (
    BranchTargetBuffer,
    ConditionalBranchPredictor,
    MemoryDisambiguator,
    ReturnStackBuffer,
)

__all__ = [
    "BranchTargetBuffer",
    "ConditionalBranchPredictor",
    "L1DCache",
    "LineFillBuffer",
    "MemoryDisambiguator",
    "ReturnStackBuffer",
    "RunInfo",
    "SpeculativeCPU",
    "UarchConfig",
    "coffee_lake",
    "preset",
    "preset_names",
    "skylake",
]
