"""The speculative CPU simulator: a black box producing hardware traces.

``SpeculativeCPU.run`` executes a test case with one input, modelling an
in-order-fetch, dataflow-stalling speculative pipeline with an explicit
cycle clock:

- an instruction *issues* at ``max(fetch cycle, operand-ready cycles)`` and
  makes its results available after its latency;
- a mispredicted branch opens a *speculation frame* (an architectural
  checkpoint) that is squashed at the branch's resolve cycle; wrong-path
  instructions execute — and leave cache traces — only if they issue before
  the squash. Operand-dependent DIV latency therefore races against branch
  resolution, reproducing the paper's V1-var/V4-var leaks (§6.3);
- a load that issues before an older aliasing store's address is resolved
  speculatively *bypasses* the store (Spectre V4) when the memory
  disambiguator predicts no alias; it is squashed and replayed once the
  alias is detected;
- an access to a page whose accessed bit is clear triggers a *microcode
  assist*: a transient window in which the load forwards stale
  store-buffer/line-fill-buffer data (MDS) or zero (LVI-Null on
  MDS-patched parts) before the replay;
- speculative stores allocate cache lines only when the configuration says
  so (Coffee Lake: yes; Skylake: no — the §6.4 experiment).

The cache, predictors and line-fill buffer persist across :meth:`run`
calls; they are the microarchitectural context ``Ctx`` that the executor's
priming sequences manipulate. :meth:`reset_context` starts a fresh context
for a new test case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.isa.instruction import Instruction, LinearProgram
from repro.emulator.compiled import CompiledProgram, compile_linear
from repro.emulator.errors import EmulationFault, ExecutionLimitExceeded
from repro.emulator.state import ArchState, InputData, SandboxLayout, Snapshot
from repro.uarch.cache import L1DCache
from repro.uarch.config import UarchConfig
from repro.uarch.lfb import LineFillBuffer
from repro.uarch.predictors import (
    BranchTargetBuffer,
    ConditionalBranchPredictor,
    MemoryDisambiguator,
    ReturnStackBuffer,
)

DEFAULT_MAX_STEPS = 50_000


@dataclass
class _StoreEntry:
    """A store-buffer entry of the current execution.

    The covered interval ``[address, end)`` is precomputed on
    construction: the overlap scans of the store-bypass machinery probe
    every buffered entry per load, and re-deriving ``address + size``
    on each probe was pure hot-path overhead.
    """

    address: int
    size: int
    value: int
    old_value: int
    addr_ready: int  # cycle at which the store's address is resolved
    pc: int
    #: one past the last covered byte, fixed at construction
    end: int = field(init=False)

    def __post_init__(self) -> None:
        self.end = self.address + self.size

    def overlaps_exactly(self, address: int, size: int) -> bool:
        return self.address == address and self.size == size

    def overlaps(self, address: int, size: int) -> bool:
        return self.address < address + size and address < self.end


_Timing = Tuple[Dict[str, int], Dict[str, int], List[_StoreEntry]]


@dataclass
class _Frame:
    """One open speculation frame (an unresolved squash point)."""

    kind: str  # "cond" | "indirect" | "ret" | "bypass" | "assist"
    snapshot: Snapshot
    timing: _Timing
    resume_pc: int
    squash_cycle: int
    executed: int = 0
    load_pc: Optional[int] = None  # for "bypass": trains the disambiguator


@dataclass
class RunInfo:
    """Diagnostics of one run. Only used for *post-hoc* classification of
    violations (the paper's manual inspection); the MRT pipeline itself
    never looks inside."""

    instructions_executed: int = 0
    squashes: List[str] = field(default_factory=list)
    assists_triggered: int = 0
    #: (frame kind, address) for every cache-visible speculative access
    speculative_accesses: List[Tuple[str, int]] = field(default_factory=list)
    #: (kind, injected value) for every assist value injection
    injected_values: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def speculation_kinds(self) -> Set[str]:
        return set(kind for kind, _ in self.speculative_accesses)


class SpeculativeCPU:
    """A simulated CPU under test: black box from (program, input, context)
    to microarchitectural cache state."""

    def __init__(
        self,
        config: UarchConfig,
        layout: Optional[SandboxLayout] = None,
        arch=None,
    ):
        self.config = config
        self.layout = layout or SandboxLayout()
        self.cache = L1DCache()
        self.cond_predictor = ConditionalBranchPredictor()
        self.btb = BranchTargetBuffer()
        self.rsb = ReturnStackBuffer()
        self.disambiguator = MemoryDisambiguator(
            config.disambiguator_reset_interval
        )
        self.lfb = LineFillBuffer()
        self.assist_pages: Set[int] = set()
        self.state = ArchState(self.layout, arch)
        self.arch = self.state.arch

    # -- context management (executor interface) ---------------------------

    def reset_context(self) -> None:
        """Start a fresh microarchitectural context (new test case)."""
        self.cache.flush_all()
        self.cond_predictor.reset()
        self.btb.reset()
        self.rsb.reset()
        self.disambiguator.reset()
        self.lfb.reset()
        self.assist_pages.clear()

    def clear_accessed_bit(self, page_index: int) -> None:
        """Make the next access to this page trigger a microcode assist
        (the executor's ``*+Assist`` preparation, §5.3)."""
        self.assist_pages.add(page_index)

    # -- execution ----------------------------------------------------------

    def run(
        self,
        program: Union[LinearProgram, CompiledProgram],
        input_data: InputData,
        max_steps: int = DEFAULT_MAX_STEPS,
        trace_hook=None,
    ) -> RunInfo:
        """Execute the program once; leak into the cache as configured.

        ``program`` is either a plain :class:`LinearProgram` — decoded
        on the fly with the reference (interpretive) handlers — or a
        :class:`~repro.emulator.compiled.CompiledProgram` lowered once
        upstream (the executor compiles per collection and reuses the
        IR across every warm-up, repetition and priming input). Both
        produce bit-identical runs; only the per-step decode cost
        differs.

        ``trace_hook(pc, issue_cycle, speculative)`` is called for every
        executed instruction (tests and diagnostics only).
        """
        if isinstance(program, CompiledProgram):
            if program.arch is not self.arch:
                raise ValueError(
                    f"program compiled for {program.arch!r}, "
                    f"CPU runs {self.arch!r}"
                )
            compiled = program
        else:
            compiled = compile_linear(program, self.arch, interpretive=True)
        ops = compiled.ops
        state = self.state
        state.load_input(input_data)
        config = self.config
        info = RunInfo()

        regfile = self.arch.registers
        reg_ready: Dict[str, int] = {name: 0 for name in regfile.gpr_names}
        flag_ready: Dict[str, int] = {flag: 0 for flag in regfile.flag_bits}
        store_buffer: List[_StoreEntry] = []
        frames: List[_Frame] = []
        pc = 0
        cycle = 0
        end = len(ops)

        def timing_snapshot() -> _Timing:
            return (dict(reg_ready), dict(flag_ready), list(store_buffer))

        def squash(index: int) -> int:
            """Resolve frame ``index``: roll back it and everything after."""
            nonlocal cycle, store_buffer
            frame = frames[index]
            del frames[index:]
            state.restore(frame.snapshot)
            saved_regs, saved_flags, saved_buffer = frame.timing
            reg_ready.clear()
            reg_ready.update(saved_regs)
            flag_ready.clear()
            flag_ready.update(saved_flags)
            store_buffer = saved_buffer
            cycle = max(cycle, frame.squash_cycle)
            if frame.kind == "bypass" and frame.load_pc is not None:
                self.disambiguator.update(frame.load_pc, aliased=True)
            info.squashes.append(frame.kind)
            return frame.resume_pc

        def earliest_frame() -> int:
            return min(range(len(frames)), key=lambda i: frames[i].squash_cycle)

        while True:
            if info.instructions_executed >= max_steps:
                raise ExecutionLimitExceeded(
                    f"CPU exceeded {max_steps} instructions"
                )
            if not 0 <= pc < end:
                if frames:
                    pc = squash(earliest_frame())
                    continue
                break

            op = ops[pc]
            instruction = op.instruction
            speculative = bool(frames)

            # A serializing fence (LFENCE/MFENCE on x86, DSB/ISB on
            # AArch64) waits for all older work; any open misprediction
            # resolves, squashing the wrong path the fence sits on.
            if speculative and op.is_serializing:
                pc = squash(earliest_frame())
                continue

            # -- issue cycle: dataflow stalls --------------------------------
            addr_regs = op.addr_regs
            data_regs = op.data_regs
            pure_store = op.pure_store
            issue = cycle
            for register in op.registers_read:
                if pure_store and register in addr_regs and register not in data_regs:
                    # a pure store issues on data readiness; its address
                    # resolves later through the AGU (enables V4 and A.6)
                    continue
                issue = max(issue, reg_ready[register])
            for flag in op.flags_read:
                issue = max(issue, flag_ready[flag])

            addr_ready_input = max(
                [issue] + [reg_ready[r] for r in addr_regs]
            )

            # -- squash deadline check ----------------------------------------
            if frames:
                idx = earliest_frame()
                if issue >= frames[idx].squash_cycle:
                    pc = squash(idx)
                    continue

            # (address, size) of each explicit memory operand, from the
            # IR's precompiled address closures
            pre_accesses = [
                (address_of(state), size)
                for address_of, size in op.mem_operands
            ]
            # (address, size, architectural value) to restore right after
            # this instruction executes: value injections (bypass/assist)
            # must only be visible to the injected load itself
            pending_unpatch: Optional[Tuple[int, int, int]] = None

            # -- microcode assist (\*+Assist executor modes) -------------------
            assist_fired = False
            if self.assist_pages and len(frames) < config.max_speculation_depth:
                for address, size in pre_accesses:
                    if not self.layout.contains(address, size):
                        continue
                    page = self.layout.page_of(address)
                    if page not in self.assist_pages:
                        continue
                    self.assist_pages.discard(page)
                    info.assists_triggered += 1
                    frames.append(
                        _Frame(
                            kind="assist",
                            snapshot=state.snapshot(),
                            timing=timing_snapshot(),
                            resume_pc=pc,
                            squash_cycle=issue + config.assist_window,
                        )
                    )
                    if op.is_load:
                        injected = self._assist_value(store_buffer)
                        pending_unpatch = (
                            address,
                            size,
                            state.read_memory(address, size),
                        )
                        state.write_memory(address, size, injected)
                        info.injected_values.append(
                            ("stale" if config.assists_leak_stale_data else "zero",
                             injected)
                        )
                    assist_fired = True
                    speculative = True
                    break

            # -- store bypass (Spectre V4) -------------------------------------
            if (
                not assist_fired
                and op.is_load
                and store_buffer
            ):
                for address, size in pre_accesses:
                    entry = self._youngest_overlap(store_buffer, address, size)
                    if entry is None:
                        continue
                    if entry.addr_ready <= issue:
                        continue  # resolved: store-to-load forwarding
                    if not entry.overlaps_exactly(address, size):
                        # partial overlap: conservative stall until resolved
                        issue = max(issue, entry.addr_ready)
                        continue
                    can_bypass = (
                        config.store_bypass
                        and len(frames) < config.max_speculation_depth
                        and self.disambiguator.predict_no_alias(pc)
                    )
                    if not can_bypass:
                        issue = max(issue, entry.addr_ready)
                        continue
                    oldest = self._oldest_unresolved_overlap(
                        store_buffer, address, size, issue
                    )
                    frames.append(
                        _Frame(
                            kind="bypass",
                            snapshot=state.snapshot(),
                            timing=timing_snapshot(),
                            resume_pc=pc,
                            squash_cycle=entry.addr_ready
                            + config.disambiguation_penalty,
                            load_pc=pc,
                        )
                    )
                    pending_unpatch = (
                        address,
                        size,
                        state.read_memory(address, size),
                    )
                    state.write_memory(address, size, oldest.old_value)
                    speculative = True
                    break

            # -- architectural execution ---------------------------------------
            try:
                result = op.run(state)
            except EmulationFault:
                # a fault inside speculation squashes; the rollback also
                # undoes any pending value-injection patch
                if frames:
                    pc = squash(earliest_frame())
                    continue
                raise
            info.instructions_executed += 1
            if trace_hook is not None:
                trace_hook(pc, issue, bool(frames))
            if pending_unpatch is not None:
                address, size, value = pending_unpatch
                if not any(s.address == address for s in result.stores):
                    # the injected value was only for this load; keep memory
                    # architectural for the rest of the transient window
                    state.write_memory(address, size, value)

            # -- division latency needs post-division results -------------------
            latency_class = op.latency_class
            if latency_class == "division":
                latency = self._division_latency_of(op)
            elif latency_class == "multiply":
                latency = config.multiply_latency
            else:
                latency = config.base_latency

            # -- cache effects and memory latencies -----------------------------
            innermost = frames[-1].kind if frames else None
            for access in result.mem_accesses:
                if access.is_write:
                    visible = (not frames) or config.speculative_stores_update_cache
                    if visible:
                        self.cache.access(access.address)
                        if frames:
                            info.speculative_accesses.append(
                                (innermost, access.address)
                            )
                    self.lfb.record(access.address, access.value)
                    store_buffer.append(
                        _StoreEntry(
                            address=access.address,
                            size=access.size,
                            value=access.value,
                            old_value=access.old_value,
                            addr_ready=addr_ready_input + config.store_agu_latency,
                            pc=pc,
                        )
                    )
                else:
                    hit = self.cache.access(access.address)
                    latency = max(
                        latency,
                        config.load_hit_latency
                        if hit
                        else config.load_miss_latency,
                    )
                    self.lfb.record(access.address, access.value)
                    if frames:
                        info.speculative_accesses.append(
                            (innermost, access.address)
                        )

            done = issue + latency
            for register in op.registers_written:
                reg_ready[register] = done
            for flag in op.flags_written:
                flag_ready[flag] = done

            # -- control flow and prediction -------------------------------------
            next_pc = result.next_pc
            branch = result.branch
            if branch is not None:
                next_pc = self._handle_branch(
                    instruction,
                    branch,
                    pc,
                    issue,
                    frames,
                    speculative,
                    state,
                    timing_snapshot,
                )

            # -- reorder-buffer window accounting ---------------------------------
            squashed_by_rob = False
            for index, frame in enumerate(frames):
                frame.executed += 1
                if frame.executed > config.rob_size:
                    pc = squash(index)
                    squashed_by_rob = True
                    break
            if squashed_by_rob:
                continue

            cycle = issue + 1
            pc = next_pc

        return info

    # -- helpers --------------------------------------------------------------

    def _assist_value(self, store_buffer: List[_StoreEntry]) -> int:
        """The value transiently forwarded to a load that takes an assist."""
        if not self.config.assists_leak_stale_data:
            return 0  # LVI-Null: hardware MDS patch forwards zeros
        if store_buffer:
            return store_buffer[-1].value  # Fallout-style store-buffer leak
        stale = self.lfb.stale_value()
        return stale if stale is not None else 0

    @staticmethod
    def _youngest_overlap(
        store_buffer: List[_StoreEntry], address: int, size: int
    ) -> Optional[_StoreEntry]:
        # the probe interval is derived once; entries carry theirs
        # precomputed from construction
        end = address + size
        for entry in reversed(store_buffer):
            if entry.address < end and address < entry.end:
                return entry
        return None

    @staticmethod
    def _oldest_unresolved_overlap(
        store_buffer: List[_StoreEntry], address: int, size: int, issue: int
    ) -> _StoreEntry:
        end = address + size
        for entry in store_buffer:
            if entry.address < end and address < entry.end and entry.addr_ready > issue:
                return entry
        raise AssertionError("caller guarantees an unresolved overlap exists")

    def _division_latency_of(self, op) -> int:
        """Operand-dependent latency of a division (the §6.3 leak source).

        The architecture says where the quotient lands (RAX on x86, the
        destination register on AArch64) — the IR binds that lookup at
        compile time (``DecodedOp.division_value``); the divider's
        latency grows with the number of significant quotient bits, as
        on real radix-16 dividers.
        """
        quotient = op.division_value(self.state)
        return (
            self.config.div_base_latency
            + self.config.div_per_bit_latency * quotient.bit_length()
        )

    def _handle_branch(
        self,
        instruction: Instruction,
        branch,
        pc: int,
        issue: int,
        frames: List[_Frame],
        speculative: bool,
        state: ArchState,
        timing_snapshot,
    ) -> int:
        """Apply prediction to a branch; open a frame on misprediction.

        Returns the pc to fetch next (the predicted path on mispredictions).
        """
        config = self.config
        resolve_cycle = issue + config.branch_resolve_latency
        can_speculate = len(frames) < config.max_speculation_depth

        if branch.kind == "cond":
            predicted_taken = self.cond_predictor.predict(pc)
            if not speculative:
                self.cond_predictor.update(pc, branch.taken)
            if (
                predicted_taken != branch.taken
                and config.conditional_branch_speculation
                and can_speculate
            ):
                frames.append(
                    _Frame(
                        kind="cond",
                        snapshot=state.snapshot(),
                        timing=timing_snapshot(),
                        resume_pc=branch.target if branch.taken else branch.fallthrough,
                        squash_cycle=resolve_cycle,
                    )
                )
                return branch.fallthrough if branch.taken else branch.target
            return branch.target if branch.taken else branch.fallthrough

        if branch.kind == "indirect":
            predicted = self.btb.predict(pc)
            if not speculative:
                self.btb.update(pc, branch.target)
            if (
                predicted is not None
                and predicted != branch.target
                and config.indirect_branch_speculation
                and can_speculate
            ):
                frames.append(
                    _Frame(
                        kind="indirect",
                        snapshot=state.snapshot(),
                        timing=timing_snapshot(),
                        resume_pc=branch.target,
                        squash_cycle=resolve_cycle,
                    )
                )
                return predicted
            return branch.target

        if branch.kind == "call":
            # the RSB is updated even on speculative paths (real hardware)
            self.rsb.push(branch.fallthrough)
            return branch.target

        if branch.kind == "ret":
            predicted = self.rsb.pop()
            if (
                predicted is not None
                and predicted != branch.target
                and config.return_stack_speculation
                and can_speculate
            ):
                frames.append(
                    _Frame(
                        kind="ret",
                        snapshot=state.snapshot(),
                        timing=timing_snapshot(),
                        resume_pc=branch.target,
                        squash_cycle=resolve_cycle,
                    )
                )
                return predicted
            return branch.target

        # unconditional direct jump: never mispredicted
        return branch.target


__all__ = ["RunInfo", "SpeculativeCPU", "DEFAULT_MAX_STEPS"]
