"""Set-associative L1D cache model with true LRU replacement.

The cache is the side channel: the executor mounts Prime+Probe /
Flush+Reload / Evict+Reload attacks against it (paper §5.3). Attacker
lines are modelled as negative tags so they can never collide with victim
lines.
"""

from __future__ import annotations

from typing import List, Set


class L1DCache:
    """A ``num_sets`` x ``ways`` cache of ``line_size``-byte lines.

    Each set is a list of tags in LRU order (most recently used first).
    The default geometry (64 sets, 8 ways, 64-byte lines) matches the
    Skylake/Coffee Lake L1D the paper measures.
    """

    def __init__(self, num_sets: int = 64, ways: int = 8, line_size: int = 64):
        self.num_sets = num_sets
        self.ways = ways
        self.line_size = line_size
        self._sets: List[List[int]] = [[] for _ in range(num_sets)]

    def set_index(self, address: int) -> int:
        """The cache set an address maps to."""
        return (address // self.line_size) % self.num_sets

    def tag(self, address: int) -> int:
        """The line tag of an address (full line number for simplicity)."""
        return address // self.line_size

    def access(self, address: int) -> bool:
        """Access one line: return True on hit; update LRU; fill on miss."""
        index = self.set_index(address)
        tag = self.tag(address)
        lines = self._sets[index]
        if tag in lines:
            lines.remove(tag)
            lines.insert(0, tag)
            return True
        lines.insert(0, tag)
        if len(lines) > self.ways:
            lines.pop()
        return False

    def contains(self, address: int) -> bool:
        """Is the line holding ``address`` currently cached? (no LRU update)"""
        return self.tag(address) in self._sets[self.set_index(address)]

    def flush_line(self, address: int) -> None:
        """CLFLUSH: evict the line holding ``address`` if present."""
        index = self.set_index(address)
        tag = self.tag(address)
        lines = self._sets[index]
        if tag in lines:
            lines.remove(tag)

    def flush_all(self) -> None:
        """WBINVD-style full flush."""
        self._sets = [[] for _ in range(self.num_sets)]

    # -- attacker primitives --------------------------------------------------

    def prime(self) -> None:
        """Prime+Probe step 1: fill every way of every set with attacker
        lines. Attacker tags are negative so they never alias victim lines."""
        for index in range(self.num_sets):
            self._sets[index] = [
                -(1 + index * self.ways + way) for way in range(self.ways)
            ]

    def probe(self) -> Set[int]:
        """Prime+Probe step 2: sets where at least one attacker line was
        evicted, i.e. sets the victim touched."""
        touched: Set[int] = set()
        for index, lines in enumerate(self._sets):
            attacker_lines = sum(1 for tag in lines if tag < 0)
            if attacker_lines < self.ways:
                touched.add(index)
        return touched

    def evict_region(self, base: int, size: int) -> None:
        """Evict+Reload preparation: evict every line of a memory region."""
        address = base - base % self.line_size
        while address < base + size:
            self.flush_line(address)
            address += self.line_size

    def cached_lines(self, base: int, size: int) -> Set[int]:
        """Flush/Evict+Reload probe: indices of region lines that are cached."""
        cached: Set[int] = set()
        first_line = base // self.line_size
        address = base - base % self.line_size
        while address < base + size:
            if self.contains(address):
                cached.add(address // self.line_size - first_line)
            address += self.line_size
        return cached

    def snapshot_tags(self) -> List[List[int]]:
        """Copy of the full tag state (tests and diagnostics)."""
        return [list(lines) for lines in self._sets]


__all__ = ["L1DCache"]
