"""Line-fill buffer: the stale-data store behind MDS-style leaks.

Every load and store deposits its value in the LFB. The buffer is *not*
cleared between inputs of a priming sequence (it is internal CPU state the
attacker cannot reset), so a microcode assist can forward data belonging
to a previous input — the cross-domain leak of RIDL/ZombieLoad that
Revizor surfaces as an MDS violation (Target 7).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple


class LineFillBuffer:
    """A small FIFO of recent ``(address, value)`` fill entries."""

    def __init__(self, num_entries: int = 10):
        self.num_entries = num_entries
        self._entries: Deque[Tuple[int, int]] = deque(maxlen=num_entries)

    def record(self, address: int, value: int) -> None:
        self._entries.append((address, value))

    def stale_value(self) -> Optional[int]:
        """The value a faulting load would receive from the LFB (newest
        entry), or None when the buffer is empty."""
        if not self._entries:
            return None
        return self._entries[-1][1]

    def entries(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(self._entries)

    def reset(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


__all__ = ["LineFillBuffer"]
