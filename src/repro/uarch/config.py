"""Microarchitecture configurations and the CPU presets of Table 2.

A :class:`UarchConfig` is the full description of a simulated CPU: which
speculation mechanisms exist, which patches are applied, and the timing
parameters that drive the race conditions of §6.3. Presets model the
paper's two machines:

- ``skylake(v4_patch=...)``: Intel Core i7-6700. MDS-vulnerable, stores
  update the cache only at retirement. The Spectre V4 microcode patch
  (SSBD) can be toggled, as in Targets 2-4.
- ``coffee_lake(v4_patch=True)``: Intel Core i7-9700. Hardware MDS patch
  (assists forward zeros -> LVI-Null), and speculative stores *do* modify
  the cache (the §6.4 finding).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple


@dataclass(frozen=True)
class UarchConfig:
    """Complete configuration of a simulated CPU."""

    name: str

    # --- speculation mechanisms ------------------------------------------
    conditional_branch_speculation: bool = True
    indirect_branch_speculation: bool = True
    return_stack_speculation: bool = True
    #: speculative store bypass; disabled by the V4 (SSBD) microcode patch
    store_bypass: bool = True
    #: microcode assists forward stale LFB/store-buffer data (MDS). When
    #: False (hardware MDS patch) assists forward zeros instead: LVI-Null.
    assists_leak_stale_data: bool = True
    #: do speculative (not yet retired) stores allocate cache lines?
    #: False on Skylake, True on Coffee Lake (§6.4).
    speculative_stores_update_cache: bool = False
    #: maximum depth of nested speculation frames
    max_speculation_depth: int = 4
    #: reorder-buffer size: upper bound on speculatively executed
    #: instructions per frame (paper footnote 3 uses 250 for Skylake)
    rob_size: int = 250

    # --- timing parameters (cycles) ---------------------------------------
    base_latency: int = 1
    multiply_latency: int = 3
    load_hit_latency: int = 4
    load_miss_latency: int = 30
    #: extra cycles between a store issuing and its address being resolved
    store_agu_latency: int = 3
    #: cycles from a branch issuing (flags ready) to squashing a wrong path
    branch_resolve_latency: int = 45
    #: cycles after an unresolved store's address resolves until a wrongly
    #: bypassed load is squashed and replayed (conflict detection plus
    #: pipeline-flush latency; must exceed the miss latency for dependent
    #: instructions of the bypassed load to leave cache traces, as they do
    #: on real parts)
    disambiguation_penalty: int = 40
    #: length of the transient window opened by a microcode assist
    assist_window: int = 60
    #: operand-independent part of the DIV/IDIV latency
    div_base_latency: int = 10
    #: operand-dependent part: one extra cycle per significant quotient bit
    div_per_bit_latency: int = 1
    #: memory-disambiguator global reset interval; 0 (default) relies on
    #: the per-PC counter decay only (see MemoryDisambiguator)
    disambiguator_reset_interval: int = 0

    def division_latency(self, dividend: int, divisor: int) -> int:
        """Operand-dependent DIV latency: the §6.3 leak source.

        Latency grows with the number of significant quotient bits,
        approximating the radix-16 divider of Skylake-class cores.
        """
        if divisor == 0:
            return self.div_base_latency
        quotient_bits = max(0, dividend.bit_length() - divisor.bit_length())
        return self.div_base_latency + self.div_per_bit_latency * quotient_bits

    def with_overrides(self, **overrides) -> "UarchConfig":
        """A copy with selected fields replaced."""
        return replace(self, **overrides)


def skylake(v4_patch: bool = False) -> UarchConfig:
    """Intel Core i7-6700 model (Targets 1-7 in Table 2)."""
    suffix = "+ssbd" if v4_patch else ""
    return UarchConfig(
        name=f"skylake{suffix}",
        store_bypass=not v4_patch,
        assists_leak_stale_data=True,
        speculative_stores_update_cache=False,
    )


def coffee_lake(v4_patch: bool = True) -> UarchConfig:
    """Intel Core i7-9700 model (Target 8): hardware MDS patch, and
    speculative stores modify the cache state (§6.4)."""
    suffix = "" if v4_patch else "-ssbd"
    return UarchConfig(
        name=f"coffee_lake{suffix}",
        store_bypass=not v4_patch,
        assists_leak_stale_data=False,
        speculative_stores_update_cache=True,
    )


_PRESETS = {
    "skylake": lambda: skylake(v4_patch=False),
    "skylake-v4-patched": lambda: skylake(v4_patch=True),
    "coffee-lake": lambda: coffee_lake(),
}


def preset_names() -> Tuple[str, ...]:
    """Names of the available CPU presets."""
    return tuple(_PRESETS)


def preset(name: str) -> UarchConfig:
    """Look up a CPU preset by name (``skylake``, ``skylake-v4-patched``,
    ``coffee-lake``)."""
    try:
        return _PRESETS[name.lower()]()
    except KeyError:
        raise KeyError(
            f"unknown CPU preset {name!r}; available: {', '.join(_PRESETS)}"
        ) from None


__all__ = ["UarchConfig", "coffee_lake", "preset", "preset_names", "skylake"]
