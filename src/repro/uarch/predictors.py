"""Branch predictors and the memory disambiguator.

These structures carry the *microarchitectural context* (``Ctx`` in the
paper's Definition 1): they persist across inputs within one priming
sequence, so earlier inputs train them for later ones — the priming
technique of §5.3 exploits exactly this.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class ConditionalBranchPredictor:
    """A GShare-style predictor: two-bit saturating counters indexed by
    (pc, global history).

    Counter values 0-1 predict not-taken, 2-3 predict taken; unknown
    (pc, history) contexts start weakly not-taken (1). The global history
    register persists across runs — it is microarchitectural context that
    earlier inputs of a priming sequence set for later ones.

    ``history_bits=0`` (the default) degenerates to plain per-PC two-bit
    counters. That is the right model for the executor's repeated-
    measurement scheme: with history enabled, a *fixed* priming sequence
    is perfectly learnable, so after the warm-up pass the predictor stops
    mispredicting and steady-state transient leakage disappears; per-PC
    counters keep mispredicting at direction switches forever, like the
    aliased and capacity-limited predictors of real parts. The history
    variant is kept for the predictor ablation benchmark.
    """

    def __init__(self, initial: int = 1, history_bits: int = 0):
        if not 0 <= initial <= 3:
            raise ValueError("two-bit counter must start in [0, 3]")
        self._initial = initial
        self._history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._history = 0
        self._counters: Dict[Tuple[int, int], int] = {}

    def _key(self, pc: int) -> Tuple[int, int]:
        return (pc, self._history)

    def predict(self, pc: int) -> bool:
        return self._counters.get(self._key(pc), self._initial) >= 2

    def update(self, pc: int, taken: bool) -> None:
        key = self._key(pc)
        counter = self._counters.get(key, self._initial)
        counter = min(3, counter + 1) if taken else max(0, counter - 1)
        self._counters[key] = counter
        self._history = ((self._history << 1) | int(taken)) & self._history_mask

    def reset(self) -> None:
        self._counters.clear()
        self._history = 0


class BranchTargetBuffer:
    """Last-target predictor for indirect branches (Spectre V2 substrate)."""

    def __init__(self):
        self._targets: Dict[int, int] = {}

    def predict(self, pc: int) -> Optional[int]:
        return self._targets.get(pc)

    def update(self, pc: int, target: int) -> None:
        self._targets[pc] = target

    def reset(self) -> None:
        self._targets.clear()


class ReturnStackBuffer:
    """A bounded return-address stack (Spectre V5/ret2spec substrate).

    Updated speculatively (pushes and pops are not rolled back on squash),
    matching real hardware.
    """

    def __init__(self, depth: int = 16):
        self.depth = depth
        self._stack: List[int] = []

    def push(self, return_address: int) -> None:
        self._stack.append(return_address)
        if len(self._stack) > self.depth:
            self._stack.pop(0)

    def pop(self) -> Optional[int]:
        return self._stack.pop() if self._stack else None

    def reset(self) -> None:
        self._stack.clear()


class MemoryDisambiguator:
    """Predicts whether a load aliases an older, unresolved store.

    Optimistic: unknown loads are predicted not to alias, enabling
    speculative store bypass (Spectre V4). A wrong bypass trains the
    per-PC counter toward "alias"; every prediction decays it back toward
    "no alias", modelling the periodic re-enabling of speculative bypass
    on Intel parts. The decay is a *per-PC* counter (not a global timer)
    so that, for a fixed priming sequence, the same inputs bypass in every
    measurement pass — repeatable traces are what the executor's warm-up
    and outlier filtering rely on.
    """

    def __init__(self, reset_interval: int = 0):
        # reset_interval kept for ablation experiments: when nonzero, the
        # whole table is additionally cleared every N predictions.
        self.reset_interval = reset_interval
        self._counters: Dict[int, int] = {}
        self._predictions = 0

    def predict_no_alias(self, pc: int) -> bool:
        self._predictions += 1
        if self.reset_interval and self._predictions % self.reset_interval == 0:
            self._counters.clear()
        counter = self._counters.get(pc, 0)
        prediction = counter < 2
        self._counters[pc] = max(0, counter - 1)  # decay toward "no alias"
        return prediction

    def update(self, pc: int, aliased: bool) -> None:
        counter = self._counters.get(pc, 0)
        counter = min(3, counter + 2) if aliased else max(0, counter - 1)
        self._counters[pc] = counter

    def reset(self) -> None:
        self._counters.clear()
        self._predictions = 0


__all__ = [
    "BranchTargetBuffer",
    "ConditionalBranchPredictor",
    "MemoryDisambiguator",
    "ReturnStackBuffer",
]
