"""The executor: collecting stable hardware traces (paper §5.3).

One call to :meth:`Executor.collect_hardware_traces` performs a full
*priming sequence*: it measures all inputs of a test case in order against
one microarchitectural context, so that the execution with each input sets
the context for the next. The sequence is repeated — warm-up passes first,
then recorded passes — and per input the one-off outlier traces are
discarded before the remaining traces are unioned (paper's
"reducing nondeterminism" step).

:meth:`Executor.priming_swap_check` implements the swap verification:
when two inputs of the same contract-equivalence class disagree on their
hardware traces, the executor re-measures with the inputs swapped in the
priming sequence; if each input reproduces the other's trace under the
other's context, the divergence is context-caused and discarded as a
false positive.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Set, Union

from repro.isa.instruction import LinearProgram, TestCaseProgram
from repro.emulator.compiled import (
    CompiledProgram,
    as_compiled,
    program_digest,
    shared_compiled_cache,
)
from repro.emulator.errors import EmulationError
from repro.emulator.state import InputData, SandboxLayout
from repro.traces import HTrace
from repro.uarch.config import UarchConfig
from repro.uarch.cpu import RunInfo, SpeculativeCPU
from repro.executor.modes import MeasurementMode, PRIME_PROBE
from repro.executor.noise import NO_NOISE, NoiseModel


@dataclass(frozen=True)
class ExecutorConfig:
    """Measurement parameters (paper defaults in §5.3)."""

    #: recorded passes over the input sequence (the paper repeats each
    #: measurement 50 times on noisy silicon; the simulator is
    #: deterministic, so fewer repetitions suffice unless noise is injected)
    repetitions: int = 3
    #: unrecorded warm-up passes before measuring
    warmup_passes: int = 1
    #: traces observed at most this many times across repetitions are
    #: discarded as outliers (0 disables outlier filtering)
    outlier_threshold: int = 1
    noise: NoiseModel = NO_NOISE
    noise_seed: int = 0
    #: lower each measured program to the compile-once IR
    #: (:mod:`repro.emulator.compiled`) and reuse it across every
    #: warm-up, repetition and priming input of a collection; False
    #: keeps the per-step interpretive decode (bit-identical traces
    #: either way — this is the reference path of the equality tests)
    compile_programs: bool = True


@dataclass
class MeasurementStats:
    """Bookkeeping for diagnostics and the fuzzing-speed benchmark."""

    measurements: int = 0
    discarded_smi: int = 0
    discarded_outliers: int = 0
    run_infos: List[RunInfo] = field(default_factory=list)


class Executor:
    """Runs test cases on a simulated CPU and collects hardware traces."""

    def __init__(
        self,
        cpu_config: UarchConfig,
        mode: MeasurementMode = PRIME_PROBE,
        layout: Optional[SandboxLayout] = None,
        config: Optional[ExecutorConfig] = None,
        arch=None,
    ):
        self.cpu_config = cpu_config
        self.mode = mode
        self.layout = layout or SandboxLayout()
        self.config = config or ExecutorConfig()
        self.cpu = SpeculativeCPU(cpu_config, self.layout, arch)
        self.arch = self.cpu.arch
        self._rng = random.Random(self.config.noise_seed)
        # One noise-calibration pass, reused across every measurement
        # batch: the model parameters are frozen for the executor's
        # lifetime, so the former per-input re-derivation inside
        # _measure_once was pure hot-path overhead (executor/noise.py).
        self._calibration = self.config.noise.calibrate()
        self._prime_probe = mode.technique == "prime_probe"
        self.stats = MeasurementStats()
        #: per-input run info of the most recent priming sequence, used by
        #: the fuzzer to classify speculation provenance
        self.last_run_infos: List[List[RunInfo]] = []
        #: per-item run infos of the most recent batched collection
        #: (``None`` entries mirror skipped, faulting batch items)
        self.last_batch_run_infos: List[Optional[List[List[RunInfo]]]] = []

    # -- one measurement ------------------------------------------------------

    def _prepare_side_channel(self) -> None:
        if self._prime_probe:
            self.cpu.cache.prime()
        else:  # flush_reload / evict_reload: clear the monitored region
            self.cpu.cache.evict_region(self.layout.base, self.layout.size)

    def _probe_side_channel(self) -> Set[int]:
        if self._prime_probe:
            return self.cpu.cache.probe()
        return self.cpu.cache.cached_lines(self.layout.base, self.layout.size)

    def _lower(self, program) -> CompiledProgram:
        """Lower a program to the IR exactly once per collection.

        With ``config.compile_programs`` (the default) the handlers are
        the compiled closures; otherwise the interpretive fallbacks —
        either way the CPU loop runs the same IR records, so the
        repeated measurements of a priming sequence never re-decode.
        Test-case programs route through the process-global
        digest-keyed IR cache, so an executor handed a raw program (no
        pipeline pre-lowering, e.g. the gallery tools) still reuses any
        equal-text compilation in this process.
        """
        if isinstance(program, TestCaseProgram):
            interpretive = not self.config.compile_programs
            cache = shared_compiled_cache()
            key = (
                program_digest(program, self.arch.name),
                ("executor", interpretive),
            )
            compiled = cache.get(key)
            if compiled is None:
                compiled = as_compiled(
                    program, self.arch, interpretive=interpretive
                )
                cache.put(key, compiled)
            return compiled
        return as_compiled(
            program, self.arch,
            interpretive=not self.config.compile_programs,
        )

    def _measure_once(
        self, program: CompiledProgram, input_data: InputData
    ) -> Optional[Set[int]]:
        """One measurement: prepare, run, probe. None when SMI-polluted."""
        self._prepare_side_channel()
        if self.mode.assists:
            self.cpu.clear_accessed_bit(self.layout.assist_page_index)
        info = self.cpu.run(program, input_data)
        self.stats.measurements += 1
        self.stats.run_infos.append(info)
        if len(self.stats.run_infos) > 8192:  # bound memory on long campaigns
            del self.stats.run_infos[:4096]
        signals = self._probe_side_channel()
        signals, smi_detected = self._calibration.perturb(signals, self._rng)
        if smi_detected:
            self.stats.discarded_smi += 1
            return None
        return signals

    # -- priming sequences ------------------------------------------------------

    def collect_hardware_traces(
        self,
        program: Union[TestCaseProgram, CompiledProgram],
        inputs: Sequence[InputData],
        fresh_context: bool = True,
    ) -> List[HTrace]:
        """Collect one merged hardware trace per input (paper §5.3).

        The input sequence is executed in order (priming); the whole
        sequence is repeated ``warmup_passes + repetitions`` times; per
        input, one-off traces are discarded and the rest are unioned.
        ``program`` may be a pre-compiled
        :class:`~repro.emulator.compiled.CompiledProgram` (the pipeline
        compiles each test case once and threads the IR through).
        """
        return self.collect_hardware_traces_linearized(
            program, inputs, fresh_context
        )

    def collect_hardware_traces_linearized(
        self,
        linear: Union[LinearProgram, CompiledProgram, TestCaseProgram],
        inputs: Sequence[InputData],
        fresh_context: bool = True,
    ) -> List[HTrace]:
        """Batch-friendly variant of :meth:`collect_hardware_traces`.

        Callers that measure the same program against several input
        sequences (the priming-swap check, campaign batching) lower
        once and reuse the compiled stream across all measurements.
        """
        program = self._lower(linear)
        if fresh_context:
            self.cpu.reset_context()
        per_input_traces: List[List[frozenset]] = [[] for _ in inputs]
        self.last_run_infos = [[] for _ in inputs]

        for _ in range(self.config.warmup_passes):
            for input_data in inputs:
                self._measure_once(program, input_data)

        for _ in range(max(1, self.config.repetitions)):
            for position, input_data in enumerate(inputs):
                signals = self._measure_once(program, input_data)
                self.last_run_infos[position].append(self.stats.run_infos[-1])
                if signals is not None:
                    per_input_traces[position].append(frozenset(signals))

        return [self._merge(traces) for traces in per_input_traces]

    def collect_hardware_traces_batched(
        self,
        programs: Sequence[Union[TestCaseProgram, LinearProgram,
                                 CompiledProgram]],
        input_batches: Sequence[Sequence[InputData]],
        fresh_context: bool = True,
        skip_faulting: bool = False,
    ) -> List[Optional[List[HTrace]]]:
        """Measure a batch of (program, input sequence) pairs in one call.

        The batch path of the campaign shards and the priming-swap
        check: each distinct program is compiled exactly once (repeats
        — the swap check measures one program against three sequences —
        reuse the lowered IR, and pre-compiled programs pass through),
        the noise calibration and side-channel dispatch are shared
        across the whole batch, and each pair is still measured against
        a fresh microarchitectural context, so a batch produces
        bit-identical traces to one :meth:`collect_hardware_traces`
        call per pair.

        Returns one trace list per pair, in order. With ``skip_faulting``
        a pair whose measurement faults architecturally (an
        :class:`~repro.emulator.errors.EmulationError` — instrumentation
        gap or runaway control flow) yields ``None`` instead of aborting
        the batch; without it the error propagates, matching the
        unbatched path. Per-item run infos are kept in
        ``last_batch_run_infos`` (``None`` for skipped items).
        """
        if len(programs) != len(input_batches):
            raise ValueError(
                f"batch shape mismatch: {len(programs)} program(s) vs "
                f"{len(input_batches)} input sequence(s)"
            )
        compiled_by_id = {}
        results: List[Optional[List[HTrace]]] = []
        batch_run_infos: List[Optional[List[List[RunInfo]]]] = []
        for program, inputs in zip(programs, input_batches):
            if isinstance(program, CompiledProgram):
                lowered = program
            else:
                lowered = compiled_by_id.get(id(program))
                if lowered is None:
                    lowered = self._lower(program)
                    compiled_by_id[id(program)] = lowered
            try:
                traces = self.collect_hardware_traces_linearized(
                    lowered, inputs, fresh_context
                )
            except EmulationError:
                if not skip_faulting:
                    self.last_batch_run_infos = batch_run_infos
                    raise
                self.last_run_infos = []
                results.append(None)
                batch_run_infos.append(None)
                continue
            results.append(traces)
            batch_run_infos.append(
                [list(infos) for infos in self.last_run_infos]
            )
        self.last_batch_run_infos = batch_run_infos
        return results

    def _merge(self, traces: List[frozenset]) -> HTrace:
        """Discard one-off outliers, then union (paper §5.3 step 3)."""
        if not traces:
            return HTrace.empty()
        threshold = self.config.outlier_threshold
        if threshold and len(traces) > threshold:
            counts = Counter(traces)
            kept = [t for t in traces if counts[t] > threshold]
            self.stats.discarded_outliers += len(traces) - len(kept)
            if not kept:  # everything was a one-off: keep the majority trace
                kept = [counts.most_common(1)[0][0]]
            traces = kept
        merged: Set[int] = set()
        for trace in traces:
            merged |= trace
        return HTrace.from_signals(merged)

    # -- priming-swap verification (paper §5.3) ---------------------------------

    def priming_swap_check(
        self,
        program: TestCaseProgram,
        inputs: Sequence[InputData],
        position_a: int,
        position_b: int,
        equivalent: Callable[[HTrace, HTrace], bool],
        compiled: Optional[CompiledProgram] = None,
    ) -> bool:
        """Return True when the divergence between the inputs at
        ``position_a`` and ``position_b`` is *input-caused*, i.e. a real
        violation; False when swapping contexts explains it away.

        Implements the paper's example: for inputs at positions 100 and
        200, it measures the sequences ``(i1..i99, i200, i101..i199,
        i200)`` and ``(i1..i99, i100, i101..i199, i100)``, and discards
        the violation if each input reproduces the other's trace when
        measured in the other's context.
        """
        if position_a > position_b:
            position_a, position_b = position_b, position_a
        swapped_to_a = list(inputs)
        swapped_to_a[position_a] = inputs[position_b]
        swapped_to_b = list(inputs)
        swapped_to_b[position_b] = inputs[position_a]
        # one batch: the program is compiled once (or the pipeline's
        # pre-compiled IR is reused) and the calibration is shared
        # across the three priming sequences
        lowered = compiled if compiled is not None else self._lower(program)
        original, traces_a, traces_b = self.collect_hardware_traces_batched(
            [lowered, lowered, lowered], [inputs, swapped_to_a, swapped_to_b]
        )

        # input_b measured in context of position_a vs. input_a there:
        b_reproduces_a = equivalent(traces_a[position_a], original[position_a])
        # input_a measured in context of position_b vs. input_b there:
        a_reproduces_b = equivalent(traces_b[position_b], original[position_b])
        false_positive = b_reproduces_a and a_reproduces_b
        return not false_positive


__all__ = ["Executor", "ExecutorConfig", "MeasurementStats"]
