"""Hardware-trace collection (paper §5.3).

The executor runs test cases on the simulated CPU and measures the
microarchitectural state changes with a side-channel attack, in a fully
controlled environment. It implements the paper's measurement pipeline:
priming sequences (inputs measured in order so that each input sets the
context for the next), repeated measurements with warm-up rounds, one-off
outlier filtering, trace unioning, and the priming-swap verification that
distinguishes input-caused from context-caused trace divergence.
"""

from repro.executor.modes import (
    EVICT_RELOAD,
    EVICT_RELOAD_ASSIST,
    FLUSH_RELOAD,
    FLUSH_RELOAD_ASSIST,
    PRIME_PROBE,
    PRIME_PROBE_ASSIST,
    MeasurementMode,
    mode_names,
    measurement_mode,
)
from repro.executor.noise import NO_NOISE, NoiseModel
from repro.executor.executor import Executor, ExecutorConfig

__all__ = [
    "EVICT_RELOAD",
    "EVICT_RELOAD_ASSIST",
    "Executor",
    "ExecutorConfig",
    "FLUSH_RELOAD",
    "FLUSH_RELOAD_ASSIST",
    "MeasurementMode",
    "NO_NOISE",
    "NoiseModel",
    "PRIME_PROBE",
    "PRIME_PROBE_ASSIST",
    "measurement_mode",
    "mode_names",
]
