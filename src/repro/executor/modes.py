"""Measurement modes (paper §5.3).

``Prime+Probe``, ``Flush+Reload`` and ``Evict+Reload`` mount the
corresponding attack on the simulated L1D cache. ``*+Assist`` variants
additionally clear the accessed bit of one sandbox page before every
measurement, so that the first load or store to it triggers a microcode
assist (the Target 7/8 threat model).

As the paper notes (§6.1), with a 4KB sandbox the 64 L1D sets observed by
Prime+Probe correspond one-to-one to the 64 monitored blocks of
Flush/Evict+Reload, so all techniques yield equivalent traces here too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class MeasurementMode:
    """One executor measurement configuration."""

    name: str
    technique: str  # "prime_probe" | "flush_reload" | "evict_reload"
    assists: bool = False

    def with_assists(self) -> "MeasurementMode":
        return MeasurementMode(self.name + "+Assist", self.technique, True)


PRIME_PROBE = MeasurementMode("Prime+Probe", "prime_probe")
FLUSH_RELOAD = MeasurementMode("Flush+Reload", "flush_reload")
EVICT_RELOAD = MeasurementMode("Evict+Reload", "evict_reload")
PRIME_PROBE_ASSIST = PRIME_PROBE.with_assists()
FLUSH_RELOAD_ASSIST = FLUSH_RELOAD.with_assists()
EVICT_RELOAD_ASSIST = EVICT_RELOAD.with_assists()

_MODES: Dict[str, MeasurementMode] = {
    "P+P": PRIME_PROBE,
    "F+R": FLUSH_RELOAD,
    "E+R": EVICT_RELOAD,
    "P+P+A": PRIME_PROBE_ASSIST,
    "F+R+A": FLUSH_RELOAD_ASSIST,
    "E+R+A": EVICT_RELOAD_ASSIST,
    "PRIME+PROBE": PRIME_PROBE,
    "FLUSH+RELOAD": FLUSH_RELOAD,
    "EVICT+RELOAD": EVICT_RELOAD,
    "PRIME+PROBE+ASSIST": PRIME_PROBE_ASSIST,
    "FLUSH+RELOAD+ASSIST": FLUSH_RELOAD_ASSIST,
    "EVICT+RELOAD+ASSIST": EVICT_RELOAD_ASSIST,
}


def mode_names() -> Tuple[str, ...]:
    """Canonical short names of all measurement modes."""
    return ("P+P", "F+R", "E+R", "P+P+A", "F+R+A", "E+R+A")


def measurement_mode(name: str) -> MeasurementMode:
    """Look up a mode by its short or long name (case-insensitive)."""
    try:
        return _MODES[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown measurement mode {name!r}; available: {', '.join(mode_names())}"
        ) from None


__all__ = [
    "EVICT_RELOAD",
    "EVICT_RELOAD_ASSIST",
    "FLUSH_RELOAD",
    "FLUSH_RELOAD_ASSIST",
    "MeasurementMode",
    "PRIME_PROBE",
    "PRIME_PROBE_ASSIST",
    "measurement_mode",
    "mode_names",
]
