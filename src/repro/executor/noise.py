"""Synthetic measurement-noise models (paper challenge CH5).

On real hardware, measurements are polluted by neighbour processes,
prefetchers, imprecise timers and System Management Interrupts. The
simulated CPU is deterministic, so noise is injected synthetically to
exercise the executor's filtering machinery (repetition, one-off outlier
discarding, SMI detection) and the ablation benchmarks.

The executor's measurement loop is the hottest path of a campaign
(``repetitions x inputs x test cases`` calls), so the per-measurement
decision "does noise apply at all, and with which parameters?" is
factored out into a :class:`NoiseCalibration`: the model is calibrated
once per measurement batch (:meth:`NoiseModel.calibrate`) and the
resulting flat object is consulted per measurement, instead of
re-deriving the silence check and rate lookups from the dataclass on
every input. Calibration never consumes PRNG state, so a calibrated
executor produces bit-identical traces to the uncalibrated one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set, Tuple

import random


@dataclass(frozen=True)
class NoiseCalibration:
    """Per-batch snapshot of one :class:`NoiseModel`'s decisions.

    A flat, attribute-cheap object the executor derives once per
    measurement batch and consults on every measurement: the ``silent``
    short-circuit and the rate parameters are precomputed here, so the
    hot path performs no dataclass-property evaluation per input.
    """

    silent: bool
    spurious_rate: float
    drop_rate: float
    smi_rate: float
    num_slots: int

    def perturb(
        self, signals: Set[int], rng: random.Random
    ) -> Tuple[Set[int], bool]:
        """Return (perturbed signals, smi_detected).

        Consumes PRNG state exactly like :meth:`NoiseModel.perturb`
        (and nothing at all when silent), so swapping the calibrated
        path in changes no collected trace.
        """
        if self.silent:
            return signals, False
        if self.smi_rate and rng.random() < self.smi_rate:
            # an SMI pollutes the measurement arbitrarily; the executor
            # detects it via the SMI counter and discards the measurement
            polluted = set(signals)
            polluted.add(rng.randrange(self.num_slots))
            return polluted, True
        perturbed = set(signals)
        if self.spurious_rate and rng.random() < self.spurious_rate:
            perturbed.add(rng.randrange(self.num_slots))
        if self.drop_rate and perturbed and rng.random() < self.drop_rate:
            perturbed.discard(rng.choice(sorted(perturbed)))
        return perturbed, False


@dataclass(frozen=True)
class NoiseModel:
    """Perturbs one measurement's signal set.

    - ``spurious_rate``: probability of adding one random spurious signal
      (models prefetching / co-tenant cache activity);
    - ``drop_rate``: probability of losing one real signal (models probe
      imprecision);
    - ``smi_rate``: probability that the whole measurement is polluted by
      an SMI; the executor's SMI detector discards such measurements.
    """

    spurious_rate: float = 0.0
    drop_rate: float = 0.0
    smi_rate: float = 0.0
    num_slots: int = 64

    @property
    def is_silent(self) -> bool:
        return not (self.spurious_rate or self.drop_rate or self.smi_rate)

    def calibrate(self) -> NoiseCalibration:
        """One calibration pass: precompute the per-measurement decisions.

        Call once per measurement batch; the returned calibration is
        valid for as long as the model's parameters are (they are frozen,
        so for the owning executor's lifetime).
        """
        return NoiseCalibration(
            silent=self.is_silent,
            spurious_rate=self.spurious_rate,
            drop_rate=self.drop_rate,
            smi_rate=self.smi_rate,
            num_slots=self.num_slots,
        )

    def perturb(
        self, signals: Set[int], rng: random.Random
    ) -> Tuple[Set[int], bool]:
        """Return (perturbed signals, smi_detected).

        Convenience single-shot path; batch callers calibrate once and
        reuse :meth:`NoiseCalibration.perturb` instead.
        """
        return self.calibrate().perturb(signals, rng)


NO_NOISE = NoiseModel()

__all__ = ["NO_NOISE", "NoiseCalibration", "NoiseModel"]
