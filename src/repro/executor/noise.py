"""Synthetic measurement-noise models (paper challenge CH5).

On real hardware, measurements are polluted by neighbour processes,
prefetchers, imprecise timers and System Management Interrupts. The
simulated CPU is deterministic, so noise is injected synthetically to
exercise the executor's filtering machinery (repetition, one-off outlier
discarding, SMI detection) and the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set, Tuple

import random


@dataclass(frozen=True)
class NoiseModel:
    """Perturbs one measurement's signal set.

    - ``spurious_rate``: probability of adding one random spurious signal
      (models prefetching / co-tenant cache activity);
    - ``drop_rate``: probability of losing one real signal (models probe
      imprecision);
    - ``smi_rate``: probability that the whole measurement is polluted by
      an SMI; the executor's SMI detector discards such measurements.
    """

    spurious_rate: float = 0.0
    drop_rate: float = 0.0
    smi_rate: float = 0.0
    num_slots: int = 64

    @property
    def is_silent(self) -> bool:
        return not (self.spurious_rate or self.drop_rate or self.smi_rate)

    def perturb(
        self, signals: Set[int], rng: random.Random
    ) -> Tuple[Set[int], bool]:
        """Return (perturbed signals, smi_detected)."""
        if self.is_silent:
            return signals, False
        if self.smi_rate and rng.random() < self.smi_rate:
            # an SMI pollutes the measurement arbitrarily; the executor
            # detects it via the SMI counter and discards the measurement
            polluted = set(signals)
            polluted.add(rng.randrange(self.num_slots))
            return polluted, True
        perturbed = set(signals)
        if self.spurious_rate and rng.random() < self.spurious_rate:
            perturbed.add(rng.randrange(self.num_slots))
        if self.drop_rate and perturbed and rng.random() < self.drop_rate:
            perturbed.discard(rng.choice(sorted(perturbed)))
        return perturbed, False


NO_NOISE = NoiseModel()

__all__ = ["NO_NOISE", "NoiseModel"]
