"""Peephole specialization of the mask-then-access idiom.

Revizor's sandboxing (paper §5.1) instruments every memory access with
an address-masking instruction — ``AND reg64, #mask`` on x86,
``AND Xd, Xn, #mask`` (plus an optional ``ADD Xd, Xn, #offset``) on
AArch64 — so masking ops whose result feeds address generation are by
far the most common arithmetic in generated test cases. Their generic
handlers still route through bound operand accessor closures (a reader
call per operand, a writer call, a width re-mask each). This pass
proves the shape statically and swaps in a direct register-file
specialization: one dict operation, no accessor indirection.

What qualifies (all conditions checked per op):

- a 64-bit ``AND``/``ADD`` whose destination is a register and whose
  final source operand is an immediate (the §5.1 instrumentation
  shapes: x86 two-operand ``AND r64, imm``; AArch64 three-operand
  ``AND``/``ADD Xd, Xn, imm``);
- the op writes **no live flags**: either its spec writes none (the
  AArch64 non-``S`` variants) or the dead-flag pass already proved
  every flag write dead and swapped in the no-flag handler
  (``dead_flag_pcs`` — see :data:`repro.analysis.passes.DEAD_FLAG_PCS`);
- the def-use chains prove the defined register **feeds a later op's
  address generation** (``DecodedOp.addr_regs``) — the pass targets
  the sandboxing idiom, not arbitrary arithmetic.

Soundness: the specialization computes bit-identical results. Register
reads mask with ``MASK64`` and immediates are pre-masked to their
template width, so ``AND`` absorbs the read mask (``imm <= MASK64``)
and ``ADD`` commutes with it (addition mod 2^64). The fused body is
wrapped by the same ``make_step`` as every generic straight-line
handler, so its :class:`StepResult` (no accesses, no branch, ``pc +
1``) and its published ``run.body`` are indistinguishable from the
original's; only ``run`` is replaced, never op metadata, so logs,
traces and battery plans are unaffected. Programs with statically
unresolved flow or interpretive handlers are refused wholesale.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, List, Tuple

from repro.analysis.cfg import build_cfg
from repro.analysis.defuse import compute_def_use
from repro.analysis.liveness import REG
from repro.emulator.compiled import CompiledProgram, StepFn, make_step
from repro.emulator.semantics import MASK64, mask
from repro.isa.operands import ImmediateOperand, RegisterOperand

_FUSIBLE_MNEMONICS = ("AND", "ADD")


@dataclass(frozen=True)
class FusionReport:
    """What the pass did to one program."""

    program: CompiledProgram
    #: op indices whose handler was replaced by a fused specialization
    fused: Tuple[int, ...]
    #: matching ops left alone (live flags / result never feeds an address)
    skipped: Tuple[int, ...]


def _masked_immediate(instruction, position: int) -> int:
    """The immediate exactly as the generic reader delivers it."""
    operand = instruction.operands[position]
    template = instruction.spec.operands[position]
    return operand.value & mask(max(template.width, 8))


def _match_shape(instruction):
    """``(dest, source, mnemonic, immediate)`` when the op is a 64-bit
    reg-dest, immediate-source ``AND``/``ADD``; ``None`` otherwise."""
    mnemonic = instruction.mnemonic
    if mnemonic not in _FUSIBLE_MNEMONICS:
        return None
    operands = instruction.operands
    dest = operands[0] if operands else None
    if not isinstance(dest, RegisterOperand) or dest.width != 64:
        return None
    if len(operands) == 2:  # x86: dest doubles as the left source
        source = dest
        immediate = operands[1]
    elif len(operands) == 3:  # aarch64: Xd, Xn, #imm
        source = operands[1]
        immediate = operands[2]
        if not isinstance(source, RegisterOperand) or source.width != 64:
            return None
    else:
        return None
    if not isinstance(immediate, ImmediateOperand):
        return None
    return dest.canonical, source.canonical, mnemonic, immediate


def _specialize(op, shape) -> StepFn:
    """Build the fused ``run`` closure for a matched op."""
    dest, source, mnemonic, _ = shape
    value = _masked_immediate(op.instruction, len(op.instruction.operands) - 1)

    if mnemonic == "AND":
        # reads mask with MASK64 and value <= MASK64, so the read and
        # write masks are absorbed: regs[source] & value is exact
        def body(state, accesses, _d=dest, _s=source, _v=value):
            registers = state.registers
            registers[_d] = registers[_s] & _v

    else:  # ADD: & MASK64 commutes through addition mod 2^64
        def body(state, accesses, _d=dest, _s=source, _v=value):
            registers = state.registers
            registers[_d] = (registers[_s] + _v) & MASK64

    return make_step(op.instruction, op.pc, body)


def _feeds_address(defuse, ops, def_pc: int, dest: str) -> bool:
    """Does the register defined at ``def_pc`` reach an address use?"""
    location = (REG, dest)
    definition = (def_pc, location)
    for use_pc, chains in enumerate(defuse.defs_of_use):
        reaching = chains.get(location)
        if reaching and definition in reaching and dest in ops[use_pc].addr_regs:
            return True
    return False


def fuse_masked_access(
    compiled: CompiledProgram,
    dead_flag_pcs: FrozenSet[int] = frozenset(),
) -> FusionReport:
    """Return ``compiled`` with §5.1 masking ops specialized.

    ``dead_flag_pcs`` names op indices whose flag writes the dead-flag
    pass already proved dead; flag-writing candidates (x86 ``AND``)
    outside that set are skipped. The input program is never mutated.
    """
    if compiled.interpretive:
        # the interpretive path is the reference semantics — leave it
        return FusionReport(compiled, (), ())
    cfg = build_cfg(compiled)
    if cfg.has_unresolved_flow:
        return FusionReport(compiled, (), ())

    candidates = []
    for index, op in enumerate(compiled.ops):
        if op.mem_operands or op.category != "AR":
            continue
        shape = _match_shape(op.instruction)
        if shape is not None:
            candidates.append((index, op, shape))
    if not candidates:
        return FusionReport(compiled, (), ())

    defuse = compute_def_use(cfg)
    ops = list(compiled.ops)
    fused: List[int] = []
    skipped: List[int] = []
    for index, op, shape in candidates:
        if op.flags_written and index not in dead_flag_pcs:
            skipped.append(index)
            continue
        if not _feeds_address(defuse, compiled.ops, index, shape[0]):
            skipped.append(index)
            continue
        ops[index] = replace(op, run=_specialize(op, shape))
        fused.append(index)
    if not fused:
        return FusionReport(compiled, (), tuple(skipped))
    return FusionReport(
        replace(compiled, ops=tuple(ops)),
        tuple(fused),
        tuple(skipped),
    )


__all__ = ["FusionReport", "fuse_masked_access"]
