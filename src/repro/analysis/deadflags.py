"""Dead-flag elimination over a :class:`CompiledProgram`.

Flag algebra (x86 NZCV-equivalents in RFLAGS, AArch64 NZCV) dominates
the per-op cost of the arithmetic handlers, yet most flag writes are
dead: the next compare overwrites them before any conditional reads
them. This pass proves that statically and swaps in the backend's
flag-skipping handler variants
(:meth:`repro.arch.base.Architecture.compile_instruction_no_flags`).

Soundness argument (why the optimized program is byte-identical):

- liveness runs over the op CFG with *everything* live at exit, so a
  flag write is only considered dead when every CFG path overwrites it
  before any read and before the program ends;
- every dynamically executed pc sequence — architectural or
  speculative — is a path prefix in that CFG: conditional branches
  contribute both successors, and store-bypass/assist wrong paths
  re-run the same architectural sequence (the speculative CPU resumes
  at ``resume_pc``), so they follow existing edges;
- programs with indirect branches, calls or returns have statically
  unresolved flow (BTB/RSB predictions can target *any* pc), so the
  pass refuses to touch them (``CFG.has_unresolved_flow``);
- only the ``run`` closure is replaced. All metadata — in particular
  ``flags_written``, which drives the speculative CPU's flag-readiness
  timing, and the pre-bound ``log_entry`` — stays untouched, so htraces
  and execution logs cannot shift;
- no observation clause and no log field exposes flag *values*, so the
  only way a skipped flag write could surface is through a later read
  or the final state — both excluded by liveness.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from repro.analysis.cfg import build_cfg
from repro.analysis.liveness import compute_liveness
from repro.emulator.compiled import CompiledProgram


@dataclass(frozen=True)
class DeadFlagReport:
    """What the pass did to one program."""

    program: CompiledProgram
    #: op indices whose handler was replaced by a no-flag variant
    optimized: Tuple[int, ...]
    #: dead flag writes left alone (no backend variant / unresolved flow)
    skipped: Tuple[int, ...]


def eliminate_dead_flags(compiled: CompiledProgram) -> DeadFlagReport:
    """Return ``compiled`` with provably-dead flag computation removed.

    The input program is never mutated; when nothing is optimizable the
    original object is returned inside the report.
    """
    if compiled.interpretive:
        # the interpretive path is the reference semantics — leave it
        return DeadFlagReport(compiled, (), ())
    cfg = build_cfg(compiled)
    if cfg.has_unresolved_flow:
        return DeadFlagReport(compiled, (), ())
    liveness = compute_liveness(cfg)
    dead = liveness.dead_flag_writes(cfg)
    if not dead:
        return DeadFlagReport(compiled, (), ())

    arch = compiled.arch
    label_to_index = compiled.label_to_index
    ops = list(compiled.ops)
    optimized = []
    skipped = []
    for index in dead:
        op = ops[index]
        run = arch.compile_instruction_no_flags(
            op.instruction, op.pc, label_to_index
        )
        if run is None:
            skipped.append(index)
            continue
        ops[index] = replace(op, run=run)
        optimized.append(index)
    if not optimized:
        return DeadFlagReport(compiled, (), tuple(skipped))
    return DeadFlagReport(
        replace(compiled, ops=tuple(ops)),
        tuple(optimized),
        tuple(skipped),
    )


__all__ = ["DeadFlagReport", "eliminate_dead_flags"]
