"""Static analysis over compiled programs (CFG + dataflow + clients).

The package analyses :class:`~repro.emulator.compiled.CompiledProgram`
IR — the same op records both execution engines run — so every client
reasons about exactly what executes:

- :mod:`repro.analysis.cfg` — control-flow graph construction and the
  speculative-window reachability used by the pre-screen;
- :mod:`repro.analysis.dataflow` — the generic worklist solver;
- :mod:`repro.analysis.liveness` — backward register+flag liveness;
- :mod:`repro.analysis.defuse` — reaching definitions / def-use chains;
- :mod:`repro.analysis.taint` — forward taint from input-controlled
  locations;
- :mod:`repro.analysis.deadflags` — dead-flag elimination pass;
- :mod:`repro.analysis.prescreen` — static leak pre-screen for the
  fuzzing pipeline;
- :mod:`repro.analysis.fence_advisor` — fence-placement advice for the
  §5.7 minimizer;
- :mod:`repro.analysis.metadata_lint` — differential linter checking
  static RW metadata against observed dynamic behaviour.

See ``docs/analysis.md`` for the contracts and soundness arguments.
"""

from repro.analysis.cfg import (
    CFG,
    SpeculationModel,
    SpeculationSource,
    build_cfg,
    reachable_within,
    speculation_sources,
    speculative_ops,
)
from repro.analysis.dataflow import Analysis, DataflowResult, solve
from repro.analysis.deadflags import DeadFlagReport, eliminate_dead_flags
from repro.analysis.defuse import DefUse, compute_def_use
from repro.analysis.liveness import Liveness, compute_liveness
from repro.analysis.taint import Taint, TaintSeed, compute_taint

__all__ = [
    "Analysis",
    "CFG",
    "DataflowResult",
    "DeadFlagReport",
    "DefUse",
    "Liveness",
    "SpeculationModel",
    "SpeculationSource",
    "Taint",
    "TaintSeed",
    "build_cfg",
    "compute_def_use",
    "compute_liveness",
    "compute_taint",
    "eliminate_dead_flags",
    "reachable_within",
    "solve",
    "speculation_sources",
    "speculative_ops",
]
