"""Control-flow graph over the :class:`~repro.emulator.compiled.CompiledProgram` IR.

The CFG is the substrate of every static analysis in this package. Its
nodes are the :class:`~repro.emulator.compiled.DecodedOp` records of one
compiled program (indexed by ``pc``) plus a virtual *exit* node at index
``len(ops)``; its edges over-approximate every path either execution
engine can take:

- straight-line ops fall through to ``pc + 1``;
- conditional branches have **both** successors (target and
  fallthrough) — this single rule already covers conditional-branch
  misprediction, because the wrong path of a mispredicted branch is
  always the *other* architectural successor
  (:meth:`repro.uarch.cpu.SpeculativeCPU._handle_branch`);
- unconditional direct branches have only their resolved target (the
  CPU model never mispredicts them);
- indirect branches, calls and returns have *unknown* dynamic targets
  (the BTB and RSB persist across programs, so a predicted target can
  be any instruction index): their successor set is conservatively
  every node, and the CFG is flagged ``has_unresolved_flow`` so clients
  that need precision (the dead-flag pass, the pre-screen) can bail out
  instead of trusting a lossy approximation.

Speculative *wrong-path entry* edges are modelled separately by
:class:`SpeculationModel` + :func:`speculation_sources`: store-bypass
and microcode-assist windows re-execute the same architectural
instruction sequence (the speculative path follows ordinary CFG edges
from the entry), so the extra information is only *where* a window can
open and how many instructions it spans — which
:func:`reachable_within` turns into the per-window reachable op set.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.emulator.compiled import CompiledProgram

#: ROB-bound ceiling on any hardware speculation window, in instructions.
#: ``CPUConfig.rob_size`` caps the wrong-path length on every preset; the
#: default model window (250) is already chosen to dominate it.
MAX_HARDWARE_WINDOW = 250


@dataclass(frozen=True)
class SpeculationModel:
    """Which speculation mechanisms can open a window, and how long it is.

    ``of_contract`` mirrors the *model's* execution clause (what the
    contract permits); ``hardware`` over-approximates the *simulated
    CPU* (what can actually happen), which is what soundness arguments
    about hardware behaviour must use: the CPU always speculates over
    conditional branches and store-to-load aliases, and additionally
    over microcode assists when the executor runs a ``*+Assist`` mode.
    """

    speculate_cond: bool = True
    speculate_bypass: bool = True
    speculate_assists: bool = False
    window: int = MAX_HARDWARE_WINDOW

    @classmethod
    def of_contract(cls, contract) -> "SpeculationModel":
        execution = contract.execution
        return cls(
            speculate_cond=execution.speculate_conditional_branches,
            speculate_bypass=execution.speculate_store_bypass,
            speculate_assists=False,
            window=contract.speculation_window,
        )

    @classmethod
    def hardware(cls, executor_mode: str = "P+P",
                 window: Optional[int] = None) -> "SpeculationModel":
        from repro.executor.modes import measurement_mode

        assists = measurement_mode(executor_mode).assists
        if window is None:
            window = MAX_HARDWARE_WINDOW
        return cls(
            speculate_cond=True,
            speculate_bypass=True,
            speculate_assists=assists,
            window=max(window, MAX_HARDWARE_WINDOW),
        )


@dataclass(frozen=True)
class SpeculationSource:
    """One op that can open a speculation window.

    ``entries`` are the instruction indices a wrong path can start at;
    from there it follows ordinary CFG edges for up to ``window`` ops.
    """

    pc: int
    kind: str  # "cond" | "bypass" | "assist"
    entries: Tuple[int, ...]


@dataclass
class CFG:
    """Op-level control-flow graph of one compiled program."""

    program: CompiledProgram
    #: per-op successor indices; ``exit_index`` marks program exit
    successors: Tuple[Tuple[int, ...], ...]
    predecessors: Tuple[Tuple[int, ...], ...]
    exit_index: int
    #: True when an IND/CALL/RET op made the edge set conservative
    has_unresolved_flow: bool

    def __len__(self) -> int:
        return len(self.successors)

    @property
    def ops(self):
        return self.program.ops


def build_cfg(program: CompiledProgram) -> CFG:
    """Construct the over-approximating CFG of a compiled program."""
    ops = program.ops
    count = len(ops)
    exit_index = count
    has_unresolved_flow = False
    successors: List[Tuple[int, ...]] = []

    def clamp(index: int) -> int:
        return index if 0 <= index <= count else exit_index

    for pc, op in enumerate(ops):
        if op.is_cond_branch and op.target is not None:
            succ = {clamp(op.target), clamp(pc + 1)}
        elif op.is_uncond_branch and op.target is not None:
            succ = {clamp(op.target)}
        elif op.is_indirect_branch or op.category in ("CALL", "RET"):
            # dynamic targets (BTB/RSB predictions included) can be any
            # instruction index; CALL at least has its static target but
            # the matching RET makes the pair unresolvable anyway
            has_unresolved_flow = True
            succ = set(range(count + 1))
            if op.target is not None:
                succ.add(clamp(op.target))
        else:
            succ = {clamp(pc + 1)}
        successors.append(tuple(sorted(succ)))

    predecessors: List[List[int]] = [[] for _ in range(count + 1)]
    for pc, succ in enumerate(successors):
        for index in succ:
            predecessors[index].append(pc)

    return CFG(
        program=program,
        successors=tuple(successors),
        predecessors=tuple(tuple(pred) for pred in predecessors[:count]),
        exit_index=exit_index,
        has_unresolved_flow=has_unresolved_flow,
    )


def speculation_sources(cfg: CFG, model: SpeculationModel) -> List[SpeculationSource]:
    """Every op that can open a speculation window under ``model``.

    - a conditional branch's wrong path starts at either architectural
      successor (whichever the prediction picked while being wrong);
    - a store can be bypassed: a younger load speculatively skips it and
      the wrong path re-runs the same sequence from the next op (the
      model forks at the store; the CPU forks at the load — starting the
      window at the store's fallthrough covers both, since the load is
      downstream of the store on that same path);
    - with assists enabled, any load can take a microcode assist and
      forward an injected value down the same sequence from the load on.
    """
    sources: List[SpeculationSource] = []
    exit_index = cfg.exit_index
    for pc, op in enumerate(cfg.ops):
        if model.speculate_cond and op.is_cond_branch and op.target is not None:
            sources.append(SpeculationSource(pc, "cond", cfg.successors[pc]))
        if model.speculate_bypass and op.is_store:
            entry = pc + 1 if pc + 1 <= exit_index else exit_index
            sources.append(SpeculationSource(pc, "bypass", (entry,)))
        if model.speculate_assists and op.is_load:
            # the assist re-executes the load itself with an injected
            # value, so the window includes the load's own op
            sources.append(SpeculationSource(pc, "assist", (pc,)))
    return sources


def reachable_within(cfg: CFG, entries: Tuple[int, ...],
                     window: int) -> Dict[int, int]:
    """Ops reachable from ``entries`` in at most ``window`` executed
    instructions, mapped to their minimum depth (1 = the entry op)."""
    depths: Dict[int, int] = {}
    frontier = deque(
        (entry, 1) for entry in entries if 0 <= entry < cfg.exit_index
    )
    while frontier:
        index, depth = frontier.popleft()
        if depth > window:
            continue
        known = depths.get(index)
        if known is not None and known <= depth:
            continue
        depths[index] = depth
        for succ in cfg.successors[index]:
            if succ < cfg.exit_index:
                frontier.append((succ, depth + 1))
    return depths


def speculative_ops(cfg: CFG, model: SpeculationModel) -> Dict[int, int]:
    """Union of all speculation windows: op index -> minimum depth at
    which some wrong path can reach it. Nested speculation needs no
    special casing — a window opened inside another window still follows
    CFG edges, and both conditional-branch successors are always edges."""
    combined: Dict[int, int] = {}
    for source in speculation_sources(cfg, model):
        for index, depth in reachable_within(
            cfg, source.entries, model.window
        ).items():
            known = combined.get(index)
            if known is None or depth < known:
                combined[index] = depth
    return combined


__all__ = [
    "CFG",
    "MAX_HARDWARE_WINDOW",
    "SpeculationModel",
    "SpeculationSource",
    "build_cfg",
    "reachable_within",
    "speculation_sources",
    "speculative_ops",
]
