"""Generic worklist dataflow solver over set lattices.

Every analysis in this package is a may-analysis over finite sets
(powerset lattice, union merge), so the framework is deliberately
small: an :class:`Analysis` names its direction, boundary and transfer
function; :func:`solve` iterates a worklist to the least fixpoint.

The solver treats the CFG's virtual exit node as the boundary of
backward problems and node 0 (plus any node without predecessors, e.g.
targets only reachable speculatively in a malformed DAG) as entries of
forward problems. Transfer functions must be monotone; with a finite
element universe termination is then guaranteed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import FrozenSet, List, Tuple

from repro.analysis.cfg import CFG

EMPTY: FrozenSet = frozenset()


class Analysis:
    """One dataflow problem: direction, boundary and transfer function."""

    #: "forward" or "backward"
    direction: str = "forward"

    def boundary(self) -> FrozenSet:
        """Value at the program boundary (entry or exit by direction)."""
        return EMPTY

    def transfer(self, index: int, value: FrozenSet) -> FrozenSet:
        """Flow ``value`` through op ``index`` (in-to-out for forward
        problems, out-to-in for backward ones)."""
        raise NotImplementedError


@dataclass
class DataflowResult:
    """Fixpoint in/out sets, indexed by op."""

    in_sets: Tuple[FrozenSet, ...]
    out_sets: Tuple[FrozenSet, ...]


def solve(cfg: CFG, analysis: Analysis) -> DataflowResult:
    """Iterate ``analysis`` over ``cfg`` to its least fixpoint."""
    count = len(cfg.successors)
    boundary = frozenset(analysis.boundary())
    in_sets: List[FrozenSet] = [EMPTY] * count
    out_sets: List[FrozenSet] = [EMPTY] * count
    forward = analysis.direction == "forward"

    if forward:
        order = range(count)
    else:
        order = range(count - 1, -1, -1)
    worklist = deque(order)
    queued = [True] * count

    while worklist:
        index = worklist.popleft()
        queued[index] = False
        if forward:
            value = boundary if index == 0 else EMPTY
            merged = set(value)
            for pred in cfg.predecessors[index]:
                merged |= out_sets[pred]
            if not cfg.predecessors[index] and index != 0:
                merged |= boundary  # unreachable-from-entry safety net
            in_sets[index] = frozenset(merged)
            new_out = analysis.transfer(index, in_sets[index])
            if new_out != out_sets[index]:
                out_sets[index] = new_out
                for succ in cfg.successors[index]:
                    if succ < count and not queued[succ]:
                        worklist.append(succ)
                        queued[succ] = True
        else:
            merged = set()
            for succ in cfg.successors[index]:
                if succ == cfg.exit_index:
                    merged |= boundary
                else:
                    merged |= in_sets[succ]
            out_sets[index] = frozenset(merged)
            new_in = analysis.transfer(index, out_sets[index])
            if new_in != in_sets[index]:
                in_sets[index] = new_in
                for pred in cfg.predecessors[index]:
                    if not queued[pred]:
                        worklist.append(pred)
                        queued[pred] = True

    return DataflowResult(tuple(in_sets), tuple(out_sets))


__all__ = ["Analysis", "DataflowResult", "solve"]
