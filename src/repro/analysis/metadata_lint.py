"""Differential linter for catalog instruction metadata.

Every static analysis in this package (and the speculative CPU's
scheduling) trusts the catalog's declared read/write sets. A wrong
``flags_read`` silently breaks the dead-flag pass; a wrong
``addr_regs``/``data_regs`` split breaks the pre-screen's taint rules.
This linter validates the metadata of **every catalog form** against
the instruction's *observed* behaviour on randomized architectural
states:

- ``reg-partition`` (static): the decoded op's ``registers_read`` must
  equal ``addr_regs | data_regs`` — every read register feeds address
  generation, data, or both; nothing may fall between the two sets;
- ``undeclared-write`` (dynamic): a register or flag that changes
  value during execution must be in the declared write set;
- ``undeclared-read`` (dynamic, perturbation-based): perturbing a
  location *outside* the declared read set must not change any
  architectural effect (register/flag/memory deltas, memory accesses,
  branch outcome, next pc);
- ``phantom-access`` / ``missing-access`` (dynamic): observed
  loads/stores must match ``is_load``/``is_store``.

Deliberate exemptions, mirroring design decisions documented elsewhere:

- CALL/RET stack traffic is dispatched by the emulator directly and
  intentionally absent from ``memory_accesses()`` (see
  :meth:`repro.isa.instruction.Instruction.memory_accesses`), so those
  categories skip the access checks;
- destination registers are never perturbed: sub-32-bit destinations
  merge and conditional moves pass the old value through, so a
  destination is legitimately outcome-relevant without being a *read*
  in the dependence sense the metadata encodes;
- the sandbox-base and stack registers are pinned by the ABI and never
  perturbed;
- VAR (division) trials run on constrained states (zeroed high
  dividend half, small dividend, nonzero divisor) so no trial faults;
  faulting base runs of any form are skipped, never reported.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.emulator.compiled import decode_op
from repro.emulator.errors import EmulationError
from repro.emulator.state import ArchState
from repro.isa.instruction import Instruction, InstructionSpec
from repro.isa.operands import (
    AgenOperand,
    ImmediateOperand,
    LabelOperand,
    MemoryOperand,
    RegisterOperand,
)

#: label used for LABEL operands; resolved to instruction index 1
LINT_LABEL = "lint0"


@dataclass(frozen=True)
class LintFinding:
    """One metadata violation of one catalog form."""

    arch: str
    form: str  # spec.name, e.g. "ADD_reg64_mem64"
    instruction: str  # the rendered concrete instruction
    invariant: str  # "reg-partition" | "undeclared-write" | ...
    message: str

    def __str__(self) -> str:
        return (
            f"[{self.arch}] {self.form}: {self.invariant}: {self.message} "
            f"(e.g. `{self.instruction}`)"
        )


def _materialize(
    spec: InstructionSpec, arch, rng: random.Random
) -> Optional[Instruction]:
    """One concrete instruction of a form, generator-style operands."""
    regfile = arch.registers
    pool = [
        name
        for name in regfile.gpr_names
        if name != regfile.sandbox_base_register
        and name != regfile.stack_register
    ]
    operands = []
    for template in spec.operands:
        if template.kind == "REG":
            choices = pool
            if spec.category == "VAR":
                choices = arch.division_register_pool(pool)
            register = rng.choice(list(choices))
            operands.append(
                RegisterOperand(regfile.view_name(register, template.width))
            )
        elif template.kind == "IMM":
            operands.append(
                ImmediateOperand(rng.getrandbits(min(template.width, 8)))
            )
        elif template.kind == "MEM":
            operands.append(
                MemoryOperand(
                    regfile.sandbox_base_register,
                    rng.choice(pool),
                    displacement=rng.randrange(64),
                    width=template.width,
                )
            )
        elif template.kind == "AGEN":
            operands.append(
                AgenOperand(
                    regfile.sandbox_base_register,
                    rng.choice(pool),
                    rng.randrange(64),
                )
            )
        elif template.kind == "LABEL":
            operands.append(LabelOperand(LINT_LABEL))
        else:  # unknown operand kind: nothing to lint
            return None
    return Instruction(spec, tuple(operands))


def _random_state(arch, instruction: Instruction, rng: random.Random) -> ArchState:
    """A randomized state constrained to keep the instruction fault-free."""
    state = ArchState(arch=arch)
    regfile = arch.registers
    fixed = {regfile.sandbox_base_register, regfile.stack_register}
    for name in regfile.gpr_names:
        if name not in fixed:
            state.registers[name] = rng.getrandbits(64)
    for flag in regfile.flag_bits:
        state.flags[flag] = bool(rng.getrandbits(1))
    state.memory[:] = rng.randbytes(state.layout.size)

    spec = instruction.spec
    # memory operands: keep base + index + displacement inside the main page
    for operand in instruction.operands:
        if isinstance(operand, MemoryOperand) and operand.index is not None:
            state.write_register(operand.index, rng.randrange(0, 2048))
    if spec.category == "VAR":
        # small positive dividend, nonzero divisor: no quotient overflow
        # on any ISA's division (AArch64 UDIV cannot fault regardless)
        for position, name in enumerate(spec.implicit_reads):
            state.write_register(name, rng.getrandbits(12) if position == 0 else 0)
        for operand, template in zip(instruction.operands, spec.operands):
            if isinstance(operand, RegisterOperand) and template.src:
                state.write_register(operand.name, rng.randrange(1, 200))
    if spec.category == "RET" and regfile.stack_register is not None:
        # the popped return target must be a sane instruction index
        state.write_memory(
            state.read_register(regfile.stack_register), 8, rng.randrange(4)
        )
    return state


def _run_effect(arch, instruction: Instruction, state: ArchState):
    """Execute once; return (effect, error_name). The effect captures
    every architectural consequence: per-location deltas, accesses,
    branch outcome and next pc."""
    regs0 = dict(state.registers)
    flags0 = dict(state.flags)
    mem0 = bytes(state.memory)
    try:
        result = arch.execute(
            instruction, state, 0, lambda _name: 1
        )
    except EmulationError as error:
        return None, type(error).__name__
    effect = {
        "regs0": regs0,
        "flags0": flags0,
        "reg_delta": {
            name: value
            for name, value in state.registers.items()
            if regs0[name] != value
        },
        "flag_delta": {
            flag: value
            for flag, value in state.flags.items()
            if flags0[flag] != value
        },
        "mem_delta": {
            index: byte
            for index, byte in enumerate(state.memory)
            if mem0[index] != byte
        },
        "accesses": tuple(
            (access.address, access.size, access.is_write, access.value)
            for access in result.mem_accesses
        ),
        "loads": bool(result.loads),
        "stores": bool(result.stores),
        "branch": (
            (
                result.branch.kind,
                result.branch.taken,
                result.branch.target,
                result.branch.fallthrough,
            )
            if result.branch is not None
            else None
        ),
        "next_pc": result.next_pc,
        "regs1": dict(state.registers),
        "flags1": dict(state.flags),
    }
    return effect, None


def _effects_equal_modulo(base, perturbed, kind: str, location: str) -> bool:
    """Are two effects identical except (possibly) at the perturbed
    location itself? The location's final value must agree whenever
    either run modified it."""
    comparable = ("mem_delta", "accesses", "loads", "stores", "branch", "next_pc")
    if any(base[key] != perturbed[key] for key in comparable):
        return False

    def final(effect, space):
        return effect[space]

    if kind == "reg":
        spaces = ("regs0", "regs1")
    else:
        spaces = ("flags0", "flags1")
    base0, base1 = final(base, spaces[0]), final(base, spaces[1])
    pert0, pert1 = final(perturbed, spaces[0]), final(perturbed, spaces[1])
    names = set(base1)
    for name in names:
        if name == location:
            continue
        if base1[name] != pert1[name]:
            return False
    modified_base = base1[location] != base0[location]
    modified_pert = pert1[location] != pert0[location]
    if (modified_base or modified_pert) and base1[location] != pert1[location]:
        return False
    return True


def _lint_one(
    arch, spec: InstructionSpec, rng: random.Random, trials: int
) -> List[LintFinding]:
    findings: Dict[Tuple[str, str], LintFinding] = {}
    instruction = _materialize(spec, arch, rng)
    if instruction is None:
        return []
    rendered = str(instruction)

    def report(invariant: str, message: str) -> None:
        findings.setdefault(
            (spec.name, invariant),
            LintFinding(arch.name, spec.name, rendered, invariant, message),
        )

    # -- static invariant: read partition ---------------------------------
    op = decode_op(instruction, 0, arch, {LINT_LABEL: 1})
    partition = set(op.addr_regs) | set(op.data_regs)
    declared_read = set(op.registers_read)
    if declared_read != partition:
        missing = sorted(declared_read - partition)
        extra = sorted(partition - declared_read)
        report(
            "reg-partition",
            f"registers_read != addr_regs | data_regs "
            f"(unpartitioned: {missing}, spurious: {extra})",
        )

    regfile = arch.registers
    declared_written = {
        regfile.canonical(name) for name in instruction.registers_written()
    }
    declared_read_canonical = {
        regfile.canonical(name) for name in instruction.registers_read()
    }
    dest_registers = {
        operand.canonical
        for operand, template in zip(instruction.operands, spec.operands)
        if template.dest and isinstance(operand, RegisterOperand)
    }
    fixed = {
        name
        for name in (
            regfile.sandbox_base_register,
            regfile.stack_register,
        )
        if name is not None
    }
    perturbable_registers = [
        name
        for name in regfile.gpr_names
        if name
        not in declared_read_canonical | dest_registers | fixed | declared_written
    ]
    perturbable_flags = [
        flag for flag in regfile.flag_bits if flag not in set(spec.flags_read)
    ]
    access_checks = spec.category not in ("CALL", "RET")

    for _trial in range(trials):
        state = _random_state(arch, instruction, rng)
        snapshot = state.snapshot()
        base, error = _run_effect(arch, instruction, state)
        if error is not None:
            continue  # constrained states should not fault; never report

        # -- dynamic writes ⊆ declared --------------------------------
        for name in base["reg_delta"]:
            if name not in declared_written:
                report(
                    "undeclared-write",
                    f"register {name} changed but is not in "
                    f"registers_written",
                )
        for flag in base["flag_delta"]:
            if flag not in set(spec.flags_written):
                report(
                    "undeclared-write",
                    f"flag {flag} changed but is not in flags_written",
                )

        # -- access flags ----------------------------------------------
        if access_checks:
            if base["loads"] and not op.is_load:
                report("phantom-access", "observed a load but is_load is False")
            if base["stores"] and not op.is_store:
                report("phantom-access", "observed a store but is_store is False")
            if base["mem_delta"] and not op.is_store:
                report("phantom-access", "memory changed but is_store is False")
            if op.is_load and not base["loads"]:
                report("missing-access", "is_load is True but no load observed")
            if op.is_store and not base["stores"]:
                report("missing-access", "is_store is True but no store observed")

        # -- undeclared reads (perturbation) ---------------------------
        for name in perturbable_registers:
            state.restore(snapshot)
            state.registers[name] = rng.getrandbits(64)
            perturbed, error = _run_effect(arch, instruction, state)
            if error is not None or not _effects_equal_modulo(
                base, perturbed, "reg", name
            ):
                report(
                    "undeclared-read",
                    f"perturbing register {name} (not in registers_read) "
                    f"changed the outcome",
                )
        for flag in perturbable_flags:
            state.restore(snapshot)
            state.flags[flag] = not state.flags[flag]
            perturbed, error = _run_effect(arch, instruction, state)
            if error is not None or not _effects_equal_modulo(
                base, perturbed, "flag", flag
            ):
                report(
                    "undeclared-read",
                    f"perturbing flag {flag} (not in flags_read) "
                    f"changed the outcome",
                )
        state.restore(snapshot)
    return list(findings.values())


def lint_architecture(
    arch,
    trials: int = 3,
    seed: int = 0,
    specs: Optional[Sequence[InstructionSpec]] = None,
) -> List[LintFinding]:
    """Lint every form of one architecture's catalog (or ``specs``)."""
    findings: List[LintFinding] = []
    for spec in specs if specs is not None else arch.instruction_set.specs:
        rng = random.Random((seed, arch.name, spec.name).__repr__())
        findings.extend(_lint_one(arch, spec, rng, trials))
    return findings


__all__ = ["LINT_LABEL", "LintFinding", "lint_architecture"]
