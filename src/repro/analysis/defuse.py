"""Forward reaching definitions and def-use chains over the op CFG.

A *definition* is ``(def_pc, location)`` where ``location`` is a
``("reg", name)`` or ``("flag", bit)`` tuple and ``def_pc`` is the
defining op's index — or :data:`ENTRY` (-1) for the program-input
definition every location starts with.

Full-width register writes and flag writes are *strong* definitions
(they kill previous definitions of the location); sub-32-bit register
writes merge into the old value, so they generate a definition without
killing — both the narrow write and the definitions it merged over
reach every later use, which is exactly what a dependence-based client
(the fence advisor) wants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.analysis.cfg import CFG
from repro.analysis.dataflow import Analysis, solve
from repro.analysis.liveness import FLAG, REG, op_kills, op_uses

#: pseudo-pc of the program-input definition of every location
ENTRY = -1

Location = Tuple[str, str]
Definition = Tuple[int, Location]


def op_defs(op) -> FrozenSet[Location]:
    """All locations written by one op (strong or merging)."""
    defs = {(FLAG, flag) for flag in op.flags_written}
    defs.update((REG, register) for register in op.registers_written)
    return frozenset(defs)


class _ReachingDefinitions(Analysis):
    direction = "forward"

    def __init__(self, cfg: CFG):
        self._gens = [
            frozenset((index, location) for location in op_defs(op))
            for index, op in enumerate(cfg.ops)
        ]
        self._kills = [op_kills(op) for op in cfg.ops]
        regfile = cfg.program.arch.registers
        locations = {(REG, name) for name in regfile.gpr_names}
        locations |= {(FLAG, bit) for bit in regfile.flag_bits}
        self._boundary = frozenset(
            (ENTRY, location) for location in locations
        )

    def boundary(self) -> FrozenSet:
        return self._boundary

    def transfer(self, index: int, reaching_in: FrozenSet) -> FrozenSet:
        kills = self._kills[index]
        survived = frozenset(
            definition
            for definition in reaching_in
            if definition[1] not in kills
        )
        return survived | self._gens[index]


@dataclass
class DefUse:
    """Reaching definitions plus the derived def-use chains."""

    reach_in: Tuple[FrozenSet, ...]
    reach_out: Tuple[FrozenSet, ...]
    #: use site -> {definition}: which defs feed each location op ``pc`` reads
    defs_of_use: Tuple[Dict[Location, FrozenSet[Definition]], ...]

    def uses_of_def(self, def_pc: int) -> FrozenSet[int]:
        """Op indices whose reads are fed by a definition made at ``def_pc``."""
        uses: Set[int] = set()
        for use_pc, chains in enumerate(self.defs_of_use):
            for reaching in chains.values():
                if any(pc == def_pc for pc, _location in reaching):
                    uses.add(use_pc)
                    break
        return frozenset(uses)


def compute_def_use(cfg: CFG) -> DefUse:
    result = solve(cfg, _ReachingDefinitions(cfg))
    chains: List[Dict[Location, FrozenSet[Definition]]] = []
    for index, op in enumerate(cfg.ops):
        reaching = result.in_sets[index]
        per_location: Dict[Location, FrozenSet[Definition]] = {}
        for location in op_uses(op):
            per_location[location] = frozenset(
                definition
                for definition in reaching
                if definition[1] == location
            )
        chains.append(per_location)
    return DefUse(
        reach_in=result.in_sets,
        reach_out=result.out_sets,
        defs_of_use=tuple(chains),
    )


__all__ = [
    "DefUse",
    "Definition",
    "ENTRY",
    "Location",
    "compute_def_use",
    "op_defs",
]
