"""A small pass pipeline over :class:`CompiledProgram`.

The optimization passes (:mod:`repro.analysis.deadflags`,
:mod:`repro.analysis.fusion`) each transform a compiled program into an
equivalent one — same traces, same logs, same faults — by swapping
``run`` closures for cheaper specializations. This module sequences
them: a :class:`PassManager` runs a fixed pass list in order, threading
a shared **context** dict so later passes can consume facts proved by
earlier ones (the fusion pass, for instance, may only skip an x86
``AND``'s flag writes at pcs the dead-flag pass already proved dead).

The pipeline contract every pass must honor:

- **pure**: never mutate the input program; return it unchanged when
  nothing applies (``dataclasses.replace`` otherwise);
- **byte-identical**: the transformed program produces equal
  :class:`~repro.emulator.semantics.StepResult` streams, faults and
  execution logs on every input — handlers may only get faster;
- **metadata-stable**: only ``run`` closures change; static
  :class:`~repro.emulator.compiled.DecodedOp` metadata (flag sets,
  ``log_entry``, branch info) is never rewritten, so downstream
  consumers (speculative CPU timing, battery plans) stay valid;
- **self-gating**: a pass refuses programs it cannot prove safe
  (interpretive handlers, statically unresolved control flow) by
  reporting zero applications rather than raising.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.deadflags import eliminate_dead_flags
from repro.analysis.fusion import fuse_masked_access
from repro.emulator.compiled import CompiledProgram

#: context key: op indices whose flag writes were proven dead (and whose
#: handlers were swapped for no-flag variants) by :class:`DeadFlagPass`
DEAD_FLAG_PCS = "dead_flag_pcs"


@dataclass(frozen=True)
class PassResult:
    """One pass's effect on one program."""

    name: str
    #: op indices whose handler the pass replaced
    applied: Tuple[int, ...]
    #: op indices the pass matched but had to leave alone
    skipped: Tuple[int, ...]


@dataclass(frozen=True)
class PipelineReport:
    """The pipeline's output program plus per-pass accounting."""

    program: CompiledProgram
    results: Tuple[PassResult, ...]

    def applied(self, name: str) -> Tuple[int, ...]:
        """Op indices a named pass rewrote (empty if it did not run)."""
        for result in self.results:
            if result.name == name:
                return result.applied
        return ()


class DeadFlagPass:
    """Pipeline adapter for :func:`eliminate_dead_flags`.

    Publishes the optimized pc set under :data:`DEAD_FLAG_PCS` so the
    fusion pass can rely on those flag writes being provably dead.
    """

    name = "dead-flags"

    def run(self, compiled: CompiledProgram, context: Dict) -> PassResult:
        report = eliminate_dead_flags(compiled)
        context[DEAD_FLAG_PCS] = frozenset(report.optimized)
        context["program"] = report.program
        return PassResult(self.name, report.optimized, report.skipped)


class MaskedAccessFusionPass:
    """Pipeline adapter for :func:`fuse_masked_access` (§5.1 idiom)."""

    name = "masked-access-fusion"

    def run(self, compiled: CompiledProgram, context: Dict) -> PassResult:
        report = fuse_masked_access(
            compiled, dead_flag_pcs=context.get(DEAD_FLAG_PCS, frozenset())
        )
        context["program"] = report.program
        return PassResult(self.name, report.fused, report.skipped)


class PassManager:
    """Run a fixed pass sequence over one compiled program."""

    def __init__(self, passes):
        self.passes = tuple(passes)

    def run(self, compiled: CompiledProgram) -> PipelineReport:
        context: Dict = {"program": compiled}
        results: List[PassResult] = []
        for pipeline_pass in self.passes:
            program = context["program"]
            results.append(pipeline_pass.run(program, context))
        return PipelineReport(context["program"], tuple(results))


def default_pipeline(optimize_dead_flags: bool = True,
                     optimize_masked_access: bool = True) -> PassManager:
    """The standard pipeline, with each pass individually switchable.

    Order matters: dead-flag elimination runs first because the fusion
    pass consumes its proof set (an x86 ``AND``'s flag writes must be
    dead before its handler may stop computing them).
    """
    passes = []
    if optimize_dead_flags:
        passes.append(DeadFlagPass())
    if optimize_masked_access:
        passes.append(MaskedAccessFusionPass())
    return PassManager(passes)


__all__ = [
    "DEAD_FLAG_PCS",
    "DeadFlagPass",
    "MaskedAccessFusionPass",
    "PassManager",
    "PassResult",
    "PipelineReport",
    "default_pipeline",
]
