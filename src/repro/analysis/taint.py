"""Forward taint propagation over the op CFG.

Taint marks locations whose value can differ between two inputs the
*contract model* considers equivalent. Lattice elements are
``("reg", name)``, ``("flag", bit)`` and the single abstract memory
cell ``("mem", "")`` (the sandbox is one allocation; one bit is
sound and keeps the lattice finite).

The default seed matches the tentpole description — every sandbox load
taints its destinations (memory contents are the secret) — while the
pre-screen instantiates the analysis with *everything* tainted at
entry (:meth:`TaintSeed.all_inputs`), because input registers and
flags also vary freely within a contract-equivalence class unless an
observation exposes them.

Transfer function:

- if any read location (``registers_read`` — which includes address
  registers — or ``flags_read``) is tainted, or the op loads from
  tainted memory, or the op is a load and loads are seeded: taint all
  written registers and flags, and taint memory if the op stores;
- otherwise the op *untaints* what it fully overwrites (full-width
  register destinations, implicit writes, written flags) — this is the
  strong update that makes ``MOV reg, imm`` and the sandbox
  address-masking ``AND reg, imm`` precise where possible (the AND
  keeps its register tainted because the register itself is read);
- sub-32-bit register writes merge and therefore never untaint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

from repro.analysis.cfg import CFG
from repro.analysis.dataflow import Analysis, solve
from repro.analysis.liveness import FLAG, REG, op_kills

MEM = ("mem", "")


@dataclass(frozen=True)
class TaintSeed:
    """What is tainted before the first instruction executes."""

    registers: FrozenSet[str] = frozenset()
    flags: FrozenSet[str] = frozenset()
    memory: bool = True
    #: every load's destinations become tainted regardless of address
    loads: bool = True

    @classmethod
    def all_inputs(cls, arch) -> "TaintSeed":
        """Everything input-controlled: all registers, flags and memory."""
        regfile = arch.registers
        return cls(
            registers=frozenset(regfile.gpr_names),
            flags=frozenset(regfile.flag_bits),
            memory=True,
            loads=True,
        )


class _TaintAnalysis(Analysis):
    direction = "forward"

    def __init__(self, cfg: CFG, seed: TaintSeed):
        self._ops = cfg.ops
        self._kills = [op_kills(op) for op in cfg.ops]
        self._seed = seed
        boundary = {(REG, name) for name in seed.registers}
        boundary |= {(FLAG, bit) for bit in seed.flags}
        if seed.memory:
            boundary.add(MEM)
        self._boundary = frozenset(boundary)

    def boundary(self) -> FrozenSet:
        return self._boundary

    def transfer(self, index: int, tainted_in: FrozenSet) -> FrozenSet:
        op = self._ops[index]
        sources_tainted = (
            any((REG, register) in tainted_in for register in op.registers_read)
            or any((FLAG, flag) in tainted_in for flag in op.flags_read)
            or (op.is_load and (MEM in tainted_in or self._seed.loads))
        )
        if sources_tainted:
            tainted = set(tainted_in)
            tainted.update((REG, r) for r in op.registers_written)
            tainted.update((FLAG, f) for f in op.flags_written)
            if op.is_store:
                tainted.add(MEM)
            return frozenset(tainted)
        # untainted sources: full-width writes strongly untaint
        return frozenset(tainted_in - self._kills[index])


@dataclass
class Taint:
    """Fixpoint taint: per-op tainted-location sets before/after."""

    tainted_in: Tuple[FrozenSet, ...]
    tainted_out: Tuple[FrozenSet, ...]
    seed: TaintSeed = field(default_factory=TaintSeed)

    def reg_tainted(self, index: int, register: str) -> bool:
        return (REG, register) in self.tainted_in[index]

    def address_tainted(self, index: int, op) -> bool:
        """Can this op's memory address vary within an equivalence class?"""
        return any(
            (REG, register) in self.tainted_in[index]
            for register in op.addr_regs
        )

    def condition_tainted(self, index: int, op) -> bool:
        return any(
            (FLAG, flag) in self.tainted_in[index] for flag in op.flags_read
        )


def compute_taint(cfg: CFG, seed: TaintSeed = TaintSeed()) -> Taint:
    result = solve(cfg, _TaintAnalysis(cfg, seed))
    return Taint(
        tainted_in=result.in_sets, tainted_out=result.out_sets, seed=seed
    )


__all__ = ["MEM", "Taint", "TaintSeed", "compute_taint"]
