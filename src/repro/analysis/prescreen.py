"""Static leak pre-screen: can this test case violate *at all*?

``classify(compiled, contract)`` decides, before any emulation or
measurement, whether a generated test case could possibly produce a
contract violation under the given contract and executor mode. Programs
classified :data:`INERT` can be skipped by the fuzzing loop (§4's
outermost rejection filter, moved before trace collection).

Soundness argument (why INERT programs cannot produce violations; the
full version lives in ``docs/analysis.md``):

A violation is a pair of inputs with *equal* contract traces and
*distinct* hardware traces. Hardware traces are sets of cache-set
signals derived exclusively from load/store addresses (architectural
and speculative); every observation clause in the catalog exposes the
addresses of the model's load/store accesses. Contract-trace equality
therefore pins the architectural access sequence, so distinct htraces
require some *speculative-only* access to differ between the two
inputs — in address, or in whether it executes:

- an access differs in address only if its address registers can vary
  within a contract-equivalence class — forward taint from all input
  locations (:meth:`~repro.analysis.taint.TaintSeed.all_inputs`)
  over-approximates exactly that;
- an access differs in occurrence only if (a) a conditional branch
  inside a window resolves differently (tainted condition), (b) the
  dynamic window length races a data-dependent latency (the only
  data-dependent latency in the CPU model is division), or (c) the
  architectural path itself varies unobserved — impossible when the
  clause exposes the pc, hence the extra rule for pc-blind clauses;
- indirect branches, calls and returns make the speculative target set
  statically unknown (BTB/RSB persist across programs), so such
  programs are never screened.

Misprediction artifacts caused purely by *predictor state* (not input
data) affect screened and unscreened programs alike and are eliminated
downstream by the priming-swap check, exactly as in the unscreened
pipeline.

The pre-screen must model the **hardware's** speculation
(:meth:`~repro.analysis.cfg.SpeculationModel.hardware`), not the
contract's: screening is about what the simulated CPU could leak.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg import SpeculationModel, build_cfg, speculative_ops
from repro.analysis.taint import TaintSeed, compute_taint
from repro.emulator.compiled import CompiledProgram

#: the program may be able to violate — run the full pipeline
ACTIVE = "active"
#: the program provably cannot violate — safe to skip
INERT = "inert"


class PrescreenSoundnessError(RuntimeError):
    """An INERT-classified program produced a confirmed violation.

    Raised by the fuzzing loop's safety sampling — this is a bug in the
    pre-screen (or in the soundness argument above), never a property of
    the test case, and must fail the run loudly rather than silently
    losing violations."""


@dataclass(frozen=True)
class PrescreenResult:
    """Verdict of one classification, with the rule that fired."""

    verdict: str
    #: short machine-readable rule name (stable across releases):
    #: "unresolved-flow" | "pc-blind-tainted-branch" |
    #: "tainted-window-access" | "latency-race" |
    #: "tainted-window-branch" | "no-speculative-leak"
    reason: str
    detail: str = ""

    @property
    def active(self) -> bool:
        return self.verdict == ACTIVE


def classify(
    compiled: CompiledProgram,
    contract,
    executor_mode: str = "P+P",
) -> PrescreenResult:
    """Statically classify one compiled test case as ACTIVE or INERT."""
    cfg = build_cfg(compiled)
    if cfg.has_unresolved_flow:
        return PrescreenResult(
            ACTIVE,
            "unresolved-flow",
            "indirect branch / call / return: speculative targets unknown",
        )

    taint = compute_taint(
        cfg, TaintSeed.all_inputs(compiled.arch)
    )
    observation = contract.observation

    if not observation.expose_pc:
        for index, op in enumerate(cfg.ops):
            if op.is_cond_branch and taint.condition_tainted(index, op):
                return PrescreenResult(
                    ACTIVE,
                    "pc-blind-tainted-branch",
                    f"op {index}: architectural path can vary unobserved",
                )

    model = SpeculationModel.hardware(executor_mode)
    window_ops = speculative_ops(cfg, model)

    window_has_access = False
    for index in window_ops:
        op = cfg.ops[index]
        if not (op.is_load or op.is_store):
            continue
        window_has_access = True
        if taint.address_tainted(index, op):
            return PrescreenResult(
                ACTIVE,
                "tainted-window-access",
                f"op {index}: speculative access with input-dependent address",
            )

    if window_has_access:
        for index, op in enumerate(cfg.ops):
            if op.latency_class != "division":
                continue
            if any(
                taint.reg_tainted(index, register)
                for register in op.registers_read
            ):
                return PrescreenResult(
                    ACTIVE,
                    "latency-race",
                    f"op {index}: data-dependent latency can resize a window",
                )
        for index in window_ops:
            op = cfg.ops[index]
            if op.is_cond_branch and taint.condition_tainted(index, op):
                return PrescreenResult(
                    ACTIVE,
                    "tainted-window-branch",
                    f"op {index}: wrong-path direction can vary",
                )

    return PrescreenResult(INERT, "no-speculative-leak")


__all__ = ["ACTIVE", "INERT", "PrescreenResult", "classify"]
