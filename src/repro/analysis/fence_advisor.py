"""Fence-placement advice for the §5.7 minimizer's stage 3.

The postprocessor's fence stage tries every insertion point in reverse
and keeps each fence that leaves the violation intact — quadratic in
program length, with most probes wasted far from the leak. This advisor
uses the package's analyses to predict where a serializing fence can
actually matter:

- taint (seeded from all inputs) + the hardware speculation windows
  locate the *leaking accesses*: speculative loads/stores whose address
  can differ between contract-equivalent inputs — the same rule the
  pre-screen's ACTIVE verdict uses;
- def-use chains walk back from each leaking access's address registers
  to the ops that computed them, giving the span a fence must cut: a
  fence placed at or before the access but after the window opens
  serializes the wrong path before the access issues.

The advice is a hint, not a proof — the minimizer still validates every
insertion dynamically; advice only reorders which probes run first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.cfg import SpeculationModel, build_cfg, speculative_ops
from repro.analysis.defuse import ENTRY, compute_def_use
from repro.analysis.liveness import REG
from repro.analysis.taint import TaintSeed, compute_taint
from repro.emulator.compiled import CompiledProgram
from repro.isa.instruction import TestCaseProgram


@dataclass(frozen=True)
class FencePlan:
    """Advised fence insertion points for one (program, mode) pair."""

    #: linear op indices of speculative accesses with tainted addresses
    leak_ops: Tuple[int, ...]
    #: linear op indices of the defs feeding those accesses' addresses
    feeding_defs: Tuple[int, ...]
    #: advised insertion points as ``(block_index, body_index)`` — the
    #: coordinates :meth:`Postprocessor.insert_fences` probes; a fence
    #: at each point lands immediately before a leaking access or one
    #: of its address-feeding defs
    positions: Tuple[Tuple[int, int], ...]

    @property
    def empty(self) -> bool:
        return not self.positions


def _body_positions(program: TestCaseProgram) -> Dict[int, Tuple[int, int]]:
    """linear pc -> (block_index, body_index) for body instructions.

    Terminators have no insertion coordinate (stage 3 only probes body
    slots), so they are absent from the map."""
    mapping: Dict[int, Tuple[int, int]] = {}
    pc = 0
    for block_index, block in enumerate(program.blocks):
        for body_index in range(len(block.body)):
            mapping[pc] = (block_index, body_index)
            pc += 1
        pc += len(block.terminators)
    return mapping


def advise_fences(
    compiled: CompiledProgram,
    program: TestCaseProgram,
    executor_mode: str = "P+P",
) -> FencePlan:
    """Propose fence positions likely to delimit the leak.

    Returns an empty plan for programs with statically unresolved
    control flow (the minimizer then falls back to its exhaustive
    order)."""
    cfg = build_cfg(compiled)
    if cfg.has_unresolved_flow:
        return FencePlan((), (), ())

    taint = compute_taint(cfg, TaintSeed.all_inputs(compiled.arch))
    window_ops = speculative_ops(
        cfg, SpeculationModel.hardware(executor_mode)
    )
    leak_ops = sorted(
        index
        for index in window_ops
        if (cfg.ops[index].is_load or cfg.ops[index].is_store)
        and taint.address_tainted(index, cfg.ops[index])
    )
    if not leak_ops:
        return FencePlan((), (), ())

    defuse = compute_def_use(cfg)
    feeding: List[int] = []
    for index in leak_ops:
        chains = defuse.defs_of_use[index]
        for register in cfg.ops[index].addr_regs:
            for def_pc, _location in chains.get((REG, register), ()):
                if def_pc != ENTRY:
                    feeding.append(def_pc)
    feeding_defs = sorted(set(feeding))

    coordinates = _body_positions(program)
    positions = []
    for pc in sorted(set(leak_ops) | set(feeding_defs)):
        coordinate = coordinates.get(pc)
        if coordinate is not None and coordinate not in positions:
            positions.append(coordinate)
    return FencePlan(
        leak_ops=tuple(leak_ops),
        feeding_defs=tuple(feeding_defs),
        positions=tuple(positions),
    )


__all__ = ["FencePlan", "advise_fences"]
