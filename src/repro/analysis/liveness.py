"""Backward liveness of registers *and* flags over the op CFG.

Lattice elements are ``("reg", canonical_name)`` and ``("flag", bit)``
tuples. The exit boundary is **everything live**: the fuzzer compares
final architectural states byte-for-byte (and the input generator may
feed any register into the next measurement), so no location may be
considered dead past the last instruction. That choice is what lets the
dead-flag elimination pass guarantee byte-identical final states.

Per-op behaviour:

- *uses* are ``registers_read`` (which already includes address
  registers and implicit reads) plus ``flags_read`` — plus the
  destination register of any sub-32-bit register write, because
  narrow writes merge into the old value
  (:meth:`repro.emulator.compiled.CompiledOperands.writer`) and are
  therefore read-modify-write;
- *kills* are ``flags_written`` and the registers fully replaced:
  register destinations of width >= 32 (which zero-extend) and the
  spec's implicit writes (always full-width in both catalogs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Tuple

from repro.analysis.cfg import CFG
from repro.analysis.dataflow import Analysis, solve
from repro.isa.operands import RegisterOperand

REG = "reg"
FLAG = "flag"


def op_uses(op) -> FrozenSet[Tuple[str, str]]:
    """Locations read by one op, including read-modify-write dests."""
    uses = {(REG, register) for register in op.registers_read}
    uses.update((FLAG, flag) for flag in op.flags_read)
    instruction = op.instruction
    for operand, template in zip(
        instruction.operands, instruction.spec.operands
    ):
        if (
            template.dest
            and isinstance(operand, RegisterOperand)
            and operand.width < 32
        ):
            uses.add((REG, operand.canonical))
    return frozenset(uses)


def op_kills(op) -> FrozenSet[Tuple[str, str]]:
    """Locations fully overwritten by one op (strong updates only)."""
    kills = {(FLAG, flag) for flag in op.flags_written}
    instruction = op.instruction
    kills.update(
        (REG, register) for register in instruction.spec.implicit_writes
    )
    for operand, template in zip(
        instruction.operands, instruction.spec.operands
    ):
        if (
            template.dest
            and isinstance(operand, RegisterOperand)
            and operand.width >= 32
        ):
            kills.add((REG, operand.canonical))
    return frozenset(kills)


class _LivenessAnalysis(Analysis):
    direction = "backward"

    def __init__(self, cfg: CFG):
        self._uses = [op_uses(op) for op in cfg.ops]
        self._kills = [op_kills(op) for op in cfg.ops]
        regfile = cfg.program.arch.registers
        self._boundary = frozenset(
            {(REG, name) for name in regfile.gpr_names}
            | {(FLAG, bit) for bit in regfile.flag_bits}
        )

    def boundary(self) -> FrozenSet:
        return self._boundary

    def transfer(self, index: int, live_out: FrozenSet) -> FrozenSet:
        return self._uses[index] | (live_out - self._kills[index])


@dataclass
class Liveness:
    """Fixpoint liveness: per-op live-in/live-out location sets."""

    live_in: Tuple[FrozenSet, ...]
    live_out: Tuple[FrozenSet, ...]

    def live_flags_out(self, index: int) -> FrozenSet[str]:
        return frozenset(
            name for kind, name in self.live_out[index] if kind == FLAG
        )

    def live_regs_out(self, index: int) -> FrozenSet[str]:
        return frozenset(
            name for kind, name in self.live_out[index] if kind == REG
        )

    def dead_flag_writes(self, cfg: CFG) -> List[int]:
        """Ops whose *entire* flag write-set is dead on every path."""
        dead: List[int] = []
        for index, op in enumerate(cfg.ops):
            if not op.flags_written:
                continue
            live = self.live_flags_out(index)
            if not any(flag in live for flag in op.flags_written):
                dead.append(index)
        return dead


def compute_liveness(cfg: CFG) -> Liveness:
    result = solve(cfg, _LivenessAnalysis(cfg))
    return Liveness(live_in=result.in_sets, live_out=result.out_sets)


__all__ = [
    "FLAG",
    "Liveness",
    "REG",
    "compute_liveness",
    "op_kills",
    "op_uses",
]
