"""Executable speculation contracts (paper §2 and §5.4).

A contract pairs an *observation clause* (what information each instruction
may expose) with an *execution clause* (which speculative control/data flow
the CPU may exhibit). :class:`~repro.contracts.contract.Contract` turns a
test-case program and an input into a contract trace by running the
functional emulator with checkpoint-based speculative exploration, exactly
like the paper's Unicorn instrumentation.
"""

from repro.contracts.observation import (
    ARCH,
    CT,
    CT_NONSPEC_STORE,
    MEM,
    ObservationClause,
)
from repro.contracts.execution import (
    BPAS,
    COND,
    COND_BPAS,
    SEQ,
    ExecutionClause,
)
from repro.contracts.contract import (
    Contract,
    contract_names,
    get_contract,
)

__all__ = [
    "ARCH",
    "BPAS",
    "COND",
    "COND_BPAS",
    "CT",
    "CT_NONSPEC_STORE",
    "Contract",
    "ExecutionClause",
    "MEM",
    "ObservationClause",
    "SEQ",
    "contract_names",
    "get_contract",
]
