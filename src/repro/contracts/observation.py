"""Observation clauses (paper §2.3).

- ``MEM``: addresses of loads and stores (data-cache side channel);
- ``CT``: MEM plus the program counter (constant-time threat model);
- ``ARCH``: CT plus loaded values (same-address-space observer, as assumed
  by Speculative Taint Tracking);
- ``CT-NONSPEC-STORE``: the §6.4 variant of CT that does *not* expose
  speculative stores, capturing the "stores do not modify the cache until
  they retire" assumption of STT/KLEESpectre.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.emulator.semantics import StepResult
from repro.traces import Observation


@dataclass(frozen=True)
class ObservationClause:
    """Declarative description of what each instruction exposes."""

    name: str
    expose_load_addresses: bool = False
    expose_store_addresses: bool = False
    expose_pc: bool = False
    expose_load_values: bool = False
    #: when False, stores on speculative paths are not observed (§6.4)
    expose_speculative_stores: bool = True

    def observe(
        self,
        step: StepResult,
        speculative: bool,
        observations: List[Observation],
    ) -> None:
        """Append the observations this clause prescribes for ``step``."""
        if self.expose_pc:
            observations.append(("pc", step.pc))
        for access in step.mem_accesses:
            if access.is_write:
                if not self.expose_store_addresses:
                    continue
                if speculative and not self.expose_speculative_stores:
                    continue
                observations.append(("st", access.address))
            else:
                if self.expose_load_addresses:
                    observations.append(("ld", access.address))
                if self.expose_load_values:
                    observations.append(("val", access.value))


MEM = ObservationClause(
    "MEM",
    expose_load_addresses=True,
    expose_store_addresses=True,
)

CT = ObservationClause(
    "CT",
    expose_load_addresses=True,
    expose_store_addresses=True,
    expose_pc=True,
)

ARCH = ObservationClause(
    "ARCH",
    expose_load_addresses=True,
    expose_store_addresses=True,
    expose_pc=True,
    expose_load_values=True,
)

CT_NONSPEC_STORE = ObservationClause(
    "CT-NONSPEC-STORE",
    expose_load_addresses=True,
    expose_store_addresses=True,
    expose_pc=True,
    expose_speculative_stores=False,
)

OBSERVATION_CLAUSES = {
    clause.name: clause for clause in (MEM, CT, ARCH, CT_NONSPEC_STORE)
}

__all__ = [
    "ARCH",
    "CT",
    "CT_NONSPEC_STORE",
    "MEM",
    "OBSERVATION_CLAUSES",
    "ObservationClause",
]
