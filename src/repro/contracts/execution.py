"""Execution clauses (paper §2.3).

- ``SEQ``: observations are collected during sequential execution only;
- ``COND``: conditional branches are additionally explored down their
  *mispredicted* path (Table 1: the jump is taken iff the condition is
  false) up to a speculation window, then rolled back;
- ``BPAS``: every store is speculatively *skipped* (store bypass), the
  mis-speculated path rolls back after the window;
- ``COND-BPAS``: both of the above.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExecutionClause:
    """Which speculative behaviours the contract permits (and thus models)."""

    name: str
    speculate_conditional_branches: bool = False
    speculate_store_bypass: bool = False

    @property
    def is_sequential(self) -> bool:
        return not (
            self.speculate_conditional_branches or self.speculate_store_bypass
        )


SEQ = ExecutionClause("SEQ")
COND = ExecutionClause("COND", speculate_conditional_branches=True)
BPAS = ExecutionClause("BPAS", speculate_store_bypass=True)
COND_BPAS = ExecutionClause(
    "COND-BPAS",
    speculate_conditional_branches=True,
    speculate_store_bypass=True,
)

EXECUTION_CLAUSES = {
    clause.name: clause for clause in (SEQ, COND, BPAS, COND_BPAS)
}

__all__ = ["BPAS", "COND", "COND_BPAS", "EXECUTION_CLAUSES", "ExecutionClause", "SEQ"]
