"""Contracts and contract-trace collection (paper §5.4).

The tracer executes a test case on the functional emulator. On every
instruction with a non-empty execution clause it pushes a checkpoint and
simulates the mis-speculated path until the speculation window closes, a
serializing instruction is reached, or the test case ends — then rolls back
(the SpecFuzz-style exposure mechanism the paper adopts). Observations are
recorded according to the observation clause on both correct and
mis-speculated paths.

Which instructions serialize — i.e. close a speculation window — is
*architecture-declared* (x86: LFENCE/MFENCE; AArch64: DSB/ISB), not a
hard-coded mnemonic: the tracer consults
``arch.is_serializing(instruction)`` on the resolved
:class:`~repro.arch.base.Architecture`. Note this deliberately excludes
x86 SFENCE, which orders stores but does not serialize execution.

Nested speculation is supported through a stack of checkpoints but disabled
by default (``max_nesting=1``), matching §5.4; detected violations are
re-validated with nesting enabled by the fuzzer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.instruction import TestCaseProgram
from repro.emulator.battery import BatteryFallback, run_battery
from repro.emulator.compiled import CompiledProgram
from repro.emulator.errors import EmulationFault, ExecutionLimitExceeded
from repro.emulator.machine import Emulator
from repro.emulator.state import ArchState, InputData, SandboxLayout, Snapshot
from repro.contracts.execution import EXECUTION_CLAUSES, ExecutionClause
from repro.contracts.observation import OBSERVATION_CLAUSES, ObservationClause
from repro.traces import CTrace, ExecutionLog, ExecutionLogEntry, Observation

#: Default speculation window in instructions: the paper uses 250, based on
#: the reorder-buffer size of Skylake CPUs (§5.4, footnote 3).
DEFAULT_SPECULATION_WINDOW = 250

_MAX_TRACE_STEPS = 200_000


@dataclass
class _SpeculationFrame:
    """A checkpoint for one open speculative path."""

    snapshot: Snapshot
    resume_pc: int
    window_left: int


@dataclass(frozen=True)
class Contract:
    """An executable speculation contract.

    ``collect_trace`` maps ``(program, input)`` to a contract trace, i.e. it
    implements the paper's ``Contract(Prog, Data) -> CTrace`` function.
    """

    observation: ObservationClause
    execution: ExecutionClause
    speculation_window: int = DEFAULT_SPECULATION_WINDOW
    max_nesting: int = 1

    @property
    def name(self) -> str:
        return f"{self.observation.name}-{self.execution.name}"

    @property
    def cache_key(self) -> Tuple[str, int, int]:
        """Identity of this contract for trace memoization.

        Every parameter that affects ``collect_trace_and_log`` output
        participates: the clause pair (via :attr:`name`), the speculation
        window, and the nesting depth — so the §5.4 revalidation, which
        reruns the same-named contract with deeper nesting, never shares
        entries with the base model in a
        :class:`repro.core.trace_cache.ContractTraceCache`.
        """
        return (self.name, self.speculation_window, self.max_nesting)

    def with_nesting(self, max_nesting: int) -> "Contract":
        """A copy with a different nesting depth (violation re-validation)."""
        return replace(self, max_nesting=max_nesting)

    def collect_trace(
        self,
        program: TestCaseProgram,
        input_data: InputData,
        layout: Optional[SandboxLayout] = None,
        arch=None,
        compiled: Optional[CompiledProgram] = None,
    ) -> CTrace:
        trace, _ = self.collect_trace_and_log(
            program, input_data, layout, arch, compiled
        )
        return trace

    def collect_trace_and_log(
        self,
        program: TestCaseProgram,
        input_data: InputData,
        layout: Optional[SandboxLayout] = None,
        arch=None,
        compiled: Optional[CompiledProgram] = None,
    ) -> Tuple[CTrace, ExecutionLog]:
        """Collect the contract trace plus the model's execution log.

        The log records executed instructions and their memory addresses;
        the diversity analysis (§5.6) mines it for hazard patterns.
        ``arch`` selects the backend (default: x86-64); its serializing
        set decides which instructions close a speculation window.

        ``compiled`` runs the collection over a pre-lowered
        :class:`~repro.emulator.compiled.CompiledProgram` — the pipeline
        compiles each test case once and reuses the IR across every
        input, contract parameterization and nesting revalidation.
        Traces and logs are byte-identical to the interpretive path
        (the seed behaviour, kept for reference and equality testing).
        """
        if compiled is not None:
            if arch is not None and compiled.arch is not arch:
                raise ValueError(
                    f"program compiled for {compiled.arch!r}, trace "
                    f"requested for {arch!r}"
                )
            return self._collect_compiled(compiled, input_data, layout)
        emulator = Emulator(program, layout, arch)
        arch = emulator.arch
        emulator.state.load_input(input_data)
        observations: List[Observation] = []
        log = ExecutionLog()
        stack: List[_SpeculationFrame] = []
        pc = 0
        steps = 0
        end = len(emulator.linear)

        def rollback() -> int:
            frame = stack.pop()
            emulator.rollback(frame.snapshot)
            return frame.resume_pc

        while True:
            if steps >= _MAX_TRACE_STEPS:
                raise ExecutionLimitExceeded(
                    f"contract trace exceeded {_MAX_TRACE_STEPS} steps"
                )
            if not 0 <= pc < end:
                if stack:
                    pc = rollback()
                    continue
                break
            speculative = bool(stack)
            instruction = emulator.linear.instructions[pc]
            if speculative:
                if arch.is_serializing(instruction):
                    pc = rollback()
                    continue
                frame = stack[-1]
                if frame.window_left <= 0:
                    pc = rollback()
                    continue
                frame.window_left -= 1
            try:
                result = emulator.step(pc)
            except EmulationFault:
                if stack:
                    pc = rollback()
                    continue
                raise
            steps += 1
            self.observation.observe(result, speculative, observations)
            log.entries.append(
                ExecutionLogEntry(
                    pc=pc,
                    mnemonic=instruction.mnemonic,
                    registers_read=instruction.registers_read(),
                    registers_written=instruction.registers_written(),
                    flags_read=instruction.flags_read,
                    flags_written=instruction.flags_written,
                    is_load=instruction.is_load,
                    is_store=instruction.is_store,
                    is_cond_branch=instruction.is_cond_branch,
                    is_uncond_branch=instruction.is_uncond_branch
                    or instruction.is_indirect_branch,
                    addresses=tuple(a.address for a in result.mem_accesses),
                    speculative=speculative,
                )
            )

            may_fork = len(stack) < self.max_nesting
            if (
                instruction.is_cond_branch
                and self.execution.speculate_conditional_branches
                and may_fork
            ):
                # Table 1: simulate the inverted branch outcome.
                branch = result.branch
                stack.append(
                    _SpeculationFrame(
                        snapshot=emulator.checkpoint(),
                        resume_pc=result.next_pc,
                        window_left=self.speculation_window,
                    )
                )
                pc = branch.fallthrough if branch.taken else branch.target
                continue
            if (
                result.stores
                and self.execution.speculate_store_bypass
                and may_fork
            ):
                # BPAS: the store is speculatively skipped. Checkpoint the
                # post-store state for the rollback, then undo the store's
                # memory effects for the speculative path.
                stack.append(
                    _SpeculationFrame(
                        snapshot=emulator.checkpoint(),
                        resume_pc=result.next_pc,
                        window_left=self.speculation_window,
                    )
                )
                for access in reversed(result.stores):
                    emulator.state.write_memory(
                        access.address, access.size, access.old_value
                    )
                pc = result.next_pc
                continue
            pc = result.next_pc

        return CTrace(tuple(observations)), log

    def collect_traces_battery(
        self,
        compiled: CompiledProgram,
        inputs: Sequence[InputData],
        layout: Optional[SandboxLayout] = None,
        strict: bool = False,
    ) -> List[Tuple[CTrace, ExecutionLog]]:
        """Collect the whole input battery in one batched pass.

        Runs the group-lockstep engine of :mod:`repro.emulator.battery`:
        one plan dispatch per op per battery instead of per input, with
        lane splitting on divergence. Results are equal, entry for
        entry, to ``collect_trace_and_log`` per input.

        When the engine declines (architectural fault, step budget —
        conditions whose exception protocol the per-input loop defines),
        the battery is rerun input by input, so faults surface with the
        identical type and ordering. ``strict=True`` propagates
        :class:`~repro.emulator.battery.BatteryFallback` instead, for
        callers that interleave their own bookkeeping (the pipeline's
        trace-cache replay) with the per-input rerun.
        """
        try:
            return run_battery(
                compiled,
                inputs,
                observation=self.observation,
                execution=self.execution,
                speculation_window=self.speculation_window,
                max_nesting=self.max_nesting,
                layout=layout,
                max_steps=_MAX_TRACE_STEPS,
            )
        except BatteryFallback:
            if strict:
                raise
            return [
                self._collect_compiled(compiled, input_data, layout)
                for input_data in inputs
            ]

    def _collect_compiled(
        self,
        compiled: CompiledProgram,
        input_data: InputData,
        layout: Optional[SandboxLayout] = None,
    ) -> Tuple[CTrace, ExecutionLog]:
        """The compile-once twin of the interpretive collection loop.

        Speculation control flow is identical statement for statement;
        the per-step decode work (mnemonic dispatch, operand contexts,
        ``condition_of``, the log entry's register/flag sets) comes
        precomputed from the :class:`DecodedOp` records instead.
        """
        state = ArchState(layout, compiled.arch)
        state.load_input(input_data)
        observations: List[Observation] = []
        observe = self.observation.observe
        log = ExecutionLog()
        entries = log.entries
        stack: List[_SpeculationFrame] = []
        ops = compiled.ops
        pc = 0
        steps = 0
        end = len(ops)
        speculate_cond = self.execution.speculate_conditional_branches
        speculate_bypass = self.execution.speculate_store_bypass
        max_nesting = self.max_nesting

        def rollback() -> int:
            frame = stack.pop()
            state.restore(frame.snapshot)
            return frame.resume_pc

        while True:
            if steps >= _MAX_TRACE_STEPS:
                raise ExecutionLimitExceeded(
                    f"contract trace exceeded {_MAX_TRACE_STEPS} steps"
                )
            if not 0 <= pc < end:
                if stack:
                    pc = rollback()
                    continue
                break
            speculative = bool(stack)
            op = ops[pc]
            if speculative:
                if op.is_serializing:
                    pc = rollback()
                    continue
                frame = stack[-1]
                if frame.window_left <= 0:
                    pc = rollback()
                    continue
                frame.window_left -= 1
            try:
                result = op.run(state)
            except EmulationFault:
                if stack:
                    pc = rollback()
                    continue
                raise
            steps += 1
            observe(result, speculative, observations)
            entries.append(
                op.log_entry(
                    addresses=tuple(a.address for a in result.mem_accesses),
                    speculative=speculative,
                )
            )

            may_fork = len(stack) < max_nesting
            if op.is_cond_branch and speculate_cond and may_fork:
                # Table 1: simulate the inverted branch outcome.
                branch = result.branch
                stack.append(
                    _SpeculationFrame(
                        snapshot=state.snapshot(),
                        resume_pc=result.next_pc,
                        window_left=self.speculation_window,
                    )
                )
                pc = branch.fallthrough if branch.taken else branch.target
                continue
            if speculate_bypass and may_fork and result.stores:
                # BPAS: the store is speculatively skipped. Checkpoint the
                # post-store state for the rollback, then undo the store's
                # memory effects for the speculative path.
                stack.append(
                    _SpeculationFrame(
                        snapshot=state.snapshot(),
                        resume_pc=result.next_pc,
                        window_left=self.speculation_window,
                    )
                )
                for access in reversed(result.stores):
                    state.write_memory(
                        access.address, access.size, access.old_value
                    )
                pc = result.next_pc
                continue
            pc = result.next_pc

        return CTrace(tuple(observations)), log


def _build_registry() -> Dict[str, Contract]:
    registry: Dict[str, Contract] = {}
    for obs_name, obs in OBSERVATION_CLAUSES.items():
        for exec_name, execution in EXECUTION_CLAUSES.items():
            contract = Contract(obs, execution)
            registry[f"{obs_name}-{exec_name}"] = contract
    return registry


_REGISTRY = _build_registry()


def contract_names() -> Tuple[str, ...]:
    """All registered contract names (observation x execution clauses)."""
    return tuple(sorted(_REGISTRY))


def get_contract(
    name: str,
    speculation_window: int = DEFAULT_SPECULATION_WINDOW,
    max_nesting: int = 1,
) -> Contract:
    """Look up a contract by name, e.g. ``"CT-SEQ"`` or ``"ARCH-SEQ"``.

    >>> get_contract("CT-COND").execution.speculate_conditional_branches
    True
    """
    try:
        base = _REGISTRY[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown contract {name!r}; available: {', '.join(contract_names())}"
        ) from None
    return replace(
        base, speculation_window=speculation_window, max_nesting=max_nesting
    )


__all__ = [
    "Contract",
    "DEFAULT_SPECULATION_WINDOW",
    "contract_names",
    "get_contract",
]
