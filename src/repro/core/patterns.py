"""Test diversity analysis via pattern coverage (paper §5.6).

Without coverage feedback from a black-box CPU, the fuzzer estimates how
likely the current generator configuration is to exercise new speculative
paths by counting *patterns*: pairs of consecutive instructions whose
data/control dependencies are likely to cause pipeline hazards.

- memory-dependency patterns: two consecutive accesses to the same
  address — ``store-after-store``, ``store-after-load``,
  ``load-after-store``, ``load-after-load``;
- register-dependency patterns: the second instruction consumes a result
  of the first — over a GPR (``reg-dep``) or over FLAGS (``flag-dep``);
- control-dependency patterns: a control-flow instruction followed by any
  instruction — ``cond-branch``, ``uncond-branch``.

A pattern is *covered* once a program and two inputs of the same input
class both match it (a single input can never form a counterexample).
Combinations of patterns within one test case are tracked too, to capture
interactions between speculation types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.traces import ExecutionLog, ExecutionLogEntry

MEMORY_PATTERNS = (
    "store-after-store",
    "store-after-load",
    "load-after-store",
    "load-after-load",
)
REGISTER_PATTERNS = ("reg-dep", "flag-dep")
CONTROL_PATTERNS = ("cond-branch", "uncond-branch")

ALL_PATTERNS: Tuple[str, ...] = MEMORY_PATTERNS + REGISTER_PATTERNS + CONTROL_PATTERNS


def _pair_patterns(
    first: ExecutionLogEntry, second: ExecutionLogEntry
) -> Set[str]:
    """Patterns matched by one consecutive instruction pair."""
    patterns: Set[str] = set()
    if first.addresses and second.addresses:
        shared = set(first.addresses) & set(second.addresses)
        if shared:
            if first.is_store and second.is_store:
                patterns.add("store-after-store")
            if first.is_load and second.is_store:
                patterns.add("store-after-load")
            if first.is_store and second.is_load:
                patterns.add("load-after-store")
            if first.is_load and second.is_load:
                patterns.add("load-after-load")
    if set(first.registers_written) & set(second.registers_read):
        patterns.add("reg-dep")
    if set(first.flags_written) & set(second.flags_read):
        patterns.add("flag-dep")
    if first.is_cond_branch:
        patterns.add("cond-branch")
    if first.is_uncond_branch:
        patterns.add("uncond-branch")
    return patterns


def patterns_in_log(log: ExecutionLog) -> Set[str]:
    """All patterns matched anywhere in one execution's instruction stream."""
    matched: Set[str] = set()
    entries = log.entries
    for first, second in zip(entries, entries[1:]):
        matched |= _pair_patterns(first, second)
    return matched


@dataclass
class PatternCoverage:
    """Accumulates covered patterns and pattern combinations across rounds.

    ``max_combination_size`` bounds the tracked co-occurrence sets; the
    paper counts individual patterns and their pairs.
    """

    max_combination_size: int = 2
    covered: Set[FrozenSet[str]] = field(default_factory=set)

    def update_from_class(self, member_patterns: Sequence[Set[str]]) -> Set[FrozenSet[str]]:
        """Record coverage from one input class.

        ``member_patterns`` holds the per-input pattern sets of the class
        members; a pattern (or combination) counts as covered when at
        least two members match it.
        """
        newly: Set[FrozenSet[str]] = set()
        if len(member_patterns) < 2:
            return newly
        counts: Dict[FrozenSet[str], int] = {}
        for patterns in member_patterns:
            for combo in self._combinations(patterns):
                counts[combo] = counts.get(combo, 0) + 1
        for combo, count in counts.items():
            if count >= 2 and combo not in self.covered:
                self.covered.add(combo)
                newly.add(combo)
        return newly

    def _combinations(self, patterns: Set[str]) -> Iterable[FrozenSet[str]]:
        for size in range(1, self.max_combination_size + 1):
            for combo in combinations(sorted(patterns), size):
                yield frozenset(combo)

    # -- coverage targets (feedback thresholds, §5.6) --------------------------

    def individual_coverage(self) -> float:
        """Fraction of individual patterns covered."""
        singles = sum(1 for combo in self.covered if len(combo) == 1)
        return singles / len(ALL_PATTERNS)

    def pair_coverage(self, available_patterns: Sequence[str] = ALL_PATTERNS) -> float:
        """Fraction of pattern pairs covered (of those expressible)."""
        total = len(list(combinations(available_patterns, 2)))
        pairs = sum(1 for combo in self.covered if len(combo) == 2)
        return pairs / total if total else 1.0

    def all_individuals_covered(self, available_patterns: Sequence[str]) -> bool:
        covered_singles = {
            next(iter(combo)) for combo in self.covered if len(combo) == 1
        }
        return set(available_patterns) <= covered_singles

    def all_pairs_covered(self, available_patterns: Sequence[str]) -> bool:
        covered_pairs = {combo for combo in self.covered if len(combo) == 2}
        wanted = {
            frozenset(pair) for pair in combinations(sorted(available_patterns), 2)
        }
        return wanted <= covered_pairs


def available_patterns_for_subsets(subsets: Sequence[str]) -> Tuple[str, ...]:
    """The patterns expressible by a given instruction-subset selection.

    An AR-only target can never produce memory-dependency patterns, so
    demanding their coverage would stall the feedback loop forever.
    """
    names: List[str] = list(REGISTER_PATTERNS)
    upper = {name.upper() for name in subsets}
    if "MEM" in upper or "VAR" in upper:
        names.extend(MEMORY_PATTERNS)
    if "CB" in upper:
        names.extend(CONTROL_PATTERNS)
    return tuple(names)


__all__ = [
    "ALL_PATTERNS",
    "CONTROL_PATTERNS",
    "MEMORY_PATTERNS",
    "PatternCoverage",
    "REGISTER_PATTERNS",
    "available_patterns_for_subsets",
    "patterns_in_log",
]
