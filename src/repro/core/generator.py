"""Randomized DAG-based test-case generation (paper §5.1).

The generator samples the program search space under constraints that keep
test cases well-formed and effective:

1. generate a random DAG of basic blocks;
2. place conditional/direct jump terminators matching the DAG;
3. fill blocks with random instructions from the tested ISA subset;
4. instrument to avoid faults: mask memory offsets into the sandbox
   (cache-line aligned, plus one per-test-case offset in [0, 64)), and
   rewrite division operands so division can never fault;
5. emit the final :class:`~repro.isa.instruction.TestCaseProgram`.

Only four registers are used and the sandbox is confined to one or two 4KB
pages, raising input effectiveness (CH2).

All ISA specifics — condition codes, branch mnemonics, the sandbox base
register, masking and division-guard instrumentation — come from the
:class:`~repro.arch.base.Architecture` descriptor, so the same generator
serves every registered backend.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.isa.instruction import (
    BasicBlock,
    Instruction,
    InstructionSet,
    InstructionSpec,
    TestCaseProgram,
)
from repro.isa.operands import (
    AgenOperand,
    ImmediateOperand,
    LabelOperand,
    MemoryOperand,
    Operand,
    RegisterOperand,
)
from repro.emulator.state import PAGE_SIZE, SandboxLayout
from repro.core.config import GeneratorConfig


class TestCaseGenerator:
    """Samples random, fault-free test-case programs."""

    def __init__(
        self,
        instruction_set: InstructionSet,
        config: Optional[GeneratorConfig] = None,
        layout: Optional[SandboxLayout] = None,
        seed: int = 0,
        arch=None,
    ):
        if arch is None:
            from repro.arch import get_architecture

            arch = get_architecture("x86_64")
        self.arch = arch
        self.instruction_set = instruction_set
        self.config = config or GeneratorConfig()
        self.layout = layout or SandboxLayout()
        self._rng = random.Random(seed)
        self._counter = 0

        body = [
            spec
            for spec in instruction_set
            if spec.category in ("AR", "MEM", "VAR")
            and not any(t.kind == "LABEL" for t in spec.operands)
        ]
        self._memory_specs = [s for s in body if s.has_memory_operand]
        self._plain_specs = [s for s in body if not s.has_memory_operand]
        self._cond_branch_specs = instruction_set.by_category("CB")
        try:
            self._jmp_spec = instruction_set.find(
                arch.uncond_branch_mnemonic, ("LABEL",)
            )
        except KeyError:
            # subsets without control flow (AR, AR+MEM, ...): blocks are
            # connected by fallthrough only
            self._jmp_spec = None
        if not self._plain_specs:
            raise ValueError("instruction set has no usable body instructions")

    @property
    def register_pool(self) -> Sequence[str]:
        return self.config.register_pool or self.arch.default_register_pool

    # -- configuration hooks (diversity feedback, §5.6) ------------------------

    def reconfigure(self, config: GeneratorConfig) -> None:
        self.config = config

    # -- generation -------------------------------------------------------------

    def generate(self, name: Optional[str] = None) -> TestCaseProgram:
        """Generate one instrumented test-case program."""
        rng = self._rng
        config = self.config
        self._counter += 1
        name = name or f"tc{self._counter}"

        offset = self._pick_offset(rng)
        num_blocks = max(1, config.basic_blocks)
        blocks = [BasicBlock(f"bb{i}") for i in range(num_blocks)]

        # 1-2: DAG edges and terminators
        for index, block in enumerate(blocks):
            candidates = list(range(index + 1, num_blocks))
            if not candidates or self._jmp_spec is None:
                continue  # fallthrough edge (or no control flow in subset)
            if self._cond_branch_specs and rng.random() < 0.7:
                cond_target = rng.choice(candidates)
                fall_target = rng.choice(candidates)
                code = rng.choice(self.arch.condition_codes)
                spec = self.instruction_set.find(
                    self.arch.cond_branch_mnemonic(code), ("LABEL",)
                )
                block.terminators.append(
                    Instruction(spec, (LabelOperand(f"bb{cond_target}"),))
                )
                if fall_target != index + 1:
                    block.terminators.append(
                        Instruction(
                            self._jmp_spec, (LabelOperand(f"bb{fall_target}"),)
                        )
                    )
            else:
                target = rng.choice(candidates)
                if target != index + 1:
                    block.terminators.append(
                        Instruction(
                            self._jmp_spec, (LabelOperand(f"bb{target}"),)
                        )
                    )

        # 3: random body instructions with a memory-access quota
        slots = config.instructions_per_test
        memory_quota = min(config.memory_accesses, slots)
        placements = [rng.randrange(num_blocks) for _ in range(slots)]
        if placements:
            # keep the entry block non-empty so rendered programs
            # round-trip through the assembler (the unlabeled first block)
            placements[0] = 0
        memory_slots = set(
            rng.sample(range(slots), memory_quota) if memory_quota else []
        )
        for slot, block_index in enumerate(placements):
            use_memory = slot in memory_slots and self._memory_specs
            pool = self._memory_specs if use_memory else self._plain_specs
            spec = rng.choice(pool)
            instructions = self._instantiate(spec, rng, offset)
            blocks[block_index].body.extend(instructions)

        program = TestCaseProgram(blocks=blocks, name=name)
        program.validate_dag()
        return program

    # -- operand instantiation and instrumentation ------------------------------

    def _pick_offset(self, rng: random.Random) -> int:
        """The per-test-case intra-line offset (§5.1: 0..63)."""
        if not self.config.randomize_offset:
            return 0
        max_masked = self._address_mask()
        room = self.layout.size - max_masked - 8
        return rng.randrange(0, max(1, min(64, room + 1)))

    def _address_mask(self) -> int:
        """Cache-line-aligned mask confining offsets to the used pages,
        e.g. 0b111111000000 for one 4KB page (the paper's Figure 3)."""
        pages = min(self.config.sandbox_pages, self.layout.num_pages)
        return pages * PAGE_SIZE - self.layout.main_area_size // 64  # = n*4096 - 64

    def _instantiate(
        self, spec: InstructionSpec, rng: random.Random, offset: int
    ) -> List[Instruction]:
        """Build one concrete instruction plus its instrumentation."""
        arch = self.arch
        instrumentation: List[Instruction] = []
        operands: List[Operand] = []
        pool = self.register_pool
        mask = self._address_mask()

        for template in spec.operands:
            if template.kind == "REG":
                choices = pool
                if spec.category == "VAR":
                    choices = arch.division_register_pool(pool)
                register = rng.choice(choices)
                operands.append(
                    RegisterOperand(
                        arch.registers.view_name(register, template.width)
                    )
                )
            elif template.kind == "IMM":
                operands.append(
                    ImmediateOperand(rng.getrandbits(min(template.width, 31)))
                )
            elif template.kind == "MEM":
                index = rng.choice(pool)
                masking, displacement = arch.address_instrumentation(
                    index, mask, offset
                )
                instrumentation.extend(masking)
                operands.append(
                    MemoryOperand(
                        arch.registers.sandbox_base_register,
                        index,
                        displacement=displacement,
                        width=template.width,
                    )
                )
            elif template.kind == "AGEN":
                index = rng.choice(pool)
                operands.append(
                    AgenOperand(
                        arch.registers.sandbox_base_register,
                        index,
                        rng.randrange(64),
                    )
                )
            else:  # pragma: no cover - LABEL specs are filtered out
                raise AssertionError(f"unexpected operand kind {template.kind}")

        lock = bool(spec.lockable and rng.random() < 0.2)
        instruction = Instruction(spec, tuple(operands), lock=lock)

        if spec.category == "VAR":
            instrumentation.extend(arch.division_guards(instruction))
        instrumentation.append(instruction)
        return instrumentation


__all__ = ["TestCaseGenerator"]
