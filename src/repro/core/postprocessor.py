"""Counterexample minimization (paper §5.7).

Three stages:

1. **input-sequence minimization** — remove inputs while the violation
   still reproduces, finding the smallest priming sequence;
2. **test-case minimization** — remove one instruction at a time while
   re-checking the violation;
3. **speculative-part minimization** — insert serializing fences
   (LFENCE on x86-64, DSB on AArch64; the architecture descriptor says
   which) starting from the last instruction while the violation
   persists; the remaining fence-free region is the location of the
   leakage (paper Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.isa.instruction import Instruction, TestCaseProgram
from repro.analysis.fence_advisor import FencePlan, advise_fences as advise
from repro.emulator.compiled import compile_program
from repro.emulator.errors import EmulationError
from repro.emulator.state import InputData
from repro.core.fuzzer import TestingPipeline


@dataclass
class MinimizationResult:
    """Outcome of postprocessing one violation."""

    program: TestCaseProgram
    inputs: List[InputData]
    original_instruction_count: int
    original_input_count: int
    fences_inserted: int = 0
    #: rendered minimized test case, Figure 4 style
    text: str = ""
    #: the architecture's serializing-instruction set (close the leak
    #: region); ``None`` falls back to the default (x86-64) backend's set
    serializing: Optional[FrozenSet[str]] = None

    @property
    def instruction_count(self) -> int:
        return self.program.num_instructions

    def leak_region(self) -> List[str]:
        """The instructions not shielded by fences (the leak location).

        A serializing fence closes the region: speculation cannot flow
        past it, so the instructions that follow — however many — are
        shielded until an instruction that can itself *start* a new
        speculative path (a branch, store, call or return) reopens it.
        Figure 4's minimized test cases read exactly this way: the
        surviving fences bracket the speculation source and the leaking
        accesses, and everything behind a fence is out of the region.

        Which mnemonics serialize is architecture-declared (x86:
        LFENCE/MFENCE, AArch64: DSB/ISB) — a hard-coded ``"LFENCE"``
        check here would silently mis-report the region on any other
        backend (or any renamed fence).
        """
        serializing = self.serializing
        if serializing is None:
            from repro.arch import get_architecture

            serializing = get_architecture("x86_64").serializing_instructions
        region: List[str] = []
        in_region = True
        for instruction in self.program.all_instructions():
            if instruction.mnemonic in serializing:
                in_region = False
                continue
            if not in_region and self._starts_speculation(instruction):
                in_region = True
            if in_region:
                region.append(str(instruction))
        return region

    @staticmethod
    def _starts_speculation(instruction: Instruction) -> bool:
        """Can this instruction open a speculative path of its own?"""
        return (
            instruction.is_cond_branch
            or instruction.is_indirect_branch
            or instruction.is_store
            or instruction.is_call
            or instruction.is_ret
        )


class Postprocessor:
    """Shrinks a violating (program, input sequence) pair."""

    def __init__(self, pipeline: TestingPipeline, confirm: bool = False):
        self.pipeline = pipeline
        self.arch = pipeline.arch
        #: when True, every shrink step re-runs the full confirmation
        #: (priming swap + nesting); much slower, used for final validation
        self.confirm = confirm
        self._fence = self.arch.fence_instruction()

    # -- public API ---------------------------------------------------------------

    def minimize(
        self,
        program: TestCaseProgram,
        inputs: Sequence[InputData],
        max_passes: int = 3,
        advise_fences: bool = False,
    ) -> MinimizationResult:
        """Run all three minimization stages.

        With ``advise_fences``, stage 3 probes the insertion points the
        static fence advisor (:mod:`repro.analysis.fence_advisor`)
        flags first — same validation per probe, different order, so
        the surviving fence set can differ from the default exhaustive
        reverse order (which is why the default stays off)."""
        inputs = list(inputs)
        if not self._violates(program, inputs):
            raise ValueError("the provided test case does not violate")
        original_instructions = program.num_instructions
        original_inputs = len(inputs)

        inputs = self.minimize_inputs(program, inputs)
        program = self.minimize_instructions(program, inputs, max_passes)
        advice = None
        if advise_fences:
            advice = advise(
                self.pipeline.compiled_for(program)
                or compile_program(program, self.arch),
                program,
                self.pipeline.config.executor_mode,
            )
        pre_fence_program = program
        program, fences = self.insert_fences(program, inputs, advice)

        result = MinimizationResult(
            program=program,
            inputs=inputs,
            original_instruction_count=original_instructions,
            original_input_count=original_inputs,
            fences_inserted=fences,
            text=self.arch.render_program(program),
            serializing=self.arch.serializing_instructions,
        )
        if self.pipeline.config.corpus_dir is not None:
            self._persist(pre_fence_program, result)
        return result

    def _persist(
        self, program: TestCaseProgram, result: MinimizationResult
    ) -> Optional[str]:
        """Record the minimized counterexample in the corpus.

        The fenced program no longer violates (that is the point of
        stage 3), so the replayable record stores the *pre-fence*
        shrunk program: the smallest (program, battery) pair that still
        detects. Re-detection here also yields the Violation the record
        digest pins. Local import: repro.corpus builds pipelines from
        records, importing this module's package."""
        from repro.corpus import CounterexampleCorpus, record_from_violation

        try:
            outcome = self.pipeline.test_program(program, result.inputs)
        except EmulationError:
            return None
        violation = None
        for candidate in outcome.analysis.candidates:
            if not self.confirm or self.pipeline.confirm_candidate(
                outcome, candidate
            ):
                violation = self.pipeline.build_violation(outcome, candidate)
                break
        if violation is None:
            return None
        record = record_from_violation(
            violation,
            self.pipeline.config,
            provenance={
                "found_by": "minimize",
                "original_instruction_count": result.original_instruction_count,
                "original_input_count": result.original_input_count,
            },
            confirmed=self.confirm
            and (
                self.pipeline.config.verify_with_priming
                or self.pipeline.config.revalidate_with_nesting
            ),
        )
        return CounterexampleCorpus(
            self.pipeline.config.corpus_dir
        ).add(record)

    # -- stage 1: inputs ------------------------------------------------------------

    def minimize_inputs(
        self, program: TestCaseProgram, inputs: List[InputData]
    ) -> List[InputData]:
        """Find a minimal priming sequence that still violates (§5.7)."""
        current = list(inputs)
        index = len(current) - 1
        while index >= 0 and len(current) > 2:
            shrunk = current[:index] + current[index + 1 :]
            if self._violates(program, shrunk):
                current = shrunk
            index -= 1
        return current

    # -- stage 2: instructions ---------------------------------------------------------

    def minimize_instructions(
        self,
        program: TestCaseProgram,
        inputs: Sequence[InputData],
        max_passes: int = 3,
    ) -> TestCaseProgram:
        """Remove instructions one at a time while the violation persists."""
        current = program.clone()
        for _ in range(max_passes):
            changed = False
            for block_index in range(len(current.blocks)):
                body = current.blocks[block_index].body
                position = len(body) - 1
                while position >= 0:
                    candidate = current.clone()
                    del candidate.blocks[block_index].body[position]
                    if self._violates(candidate, inputs):
                        current = candidate
                        changed = True
                    position -= 1
            # also try dropping terminators (a branch may be irrelevant)
            for block_index in range(len(current.blocks)):
                terms = current.blocks[block_index].terminators
                position = len(terms) - 1
                while position >= 0:
                    candidate = current.clone()
                    del candidate.blocks[block_index].terminators[position]
                    if self._still_valid(candidate) and self._violates(
                        candidate, inputs
                    ):
                        current = candidate
                        changed = True
                    position -= 1
            if not changed:
                break
        return current

    # -- stage 3: fence boundaries -------------------------------------------------------

    def insert_fences(
        self,
        program: TestCaseProgram,
        inputs: Sequence[InputData],
        advice: Optional[FencePlan] = None,
    ) -> Tuple[TestCaseProgram, int]:
        """Insert serializing fences from the last instruction backwards
        while the violation persists; survivors delimit the leaking
        region.

        ``advice`` (from :func:`repro.analysis.fence_advisor.advise_fences`)
        reorders the probes: the advised points — where a fence is
        predicted to kill the violation, i.e. the leak region — are
        probed last, so the shielding fences around the region are
        already in place when the region itself is probed."""
        current = program.clone()
        fences = 0
        positions: List[Tuple[int, int]] = []
        for block_index, block in enumerate(current.blocks):
            for body_index in range(len(block.body) + 1):
                positions.append((block_index, body_index))
        probe_order = list(reversed(positions))
        if advice is not None and not advice.empty:
            advised = set(advice.positions)
            probe_order = [p for p in probe_order if p not in advised] + [
                p for p in probe_order if p in advised
            ]
        for block_index, body_index in probe_order:
            candidate = current.clone()
            candidate.blocks[block_index].body.insert(
                body_index, self._fence
            )
            if self._violates(candidate, inputs):
                current = candidate
                fences += 1
        return current, fences

    # -- helpers ----------------------------------------------------------------------

    def _violates(
        self, program: TestCaseProgram, inputs: Sequence[InputData]
    ) -> bool:
        if len(inputs) < 2 or program.num_instructions == 0:
            return False
        candidate = self.pipeline.check_violation(
            program, inputs, confirm=self.confirm
        )
        return candidate is not None

    @staticmethod
    def _still_valid(program: TestCaseProgram) -> bool:
        try:
            program.validate_dag()
        except ValueError:
            return False
        return True


__all__ = ["MinimizationResult", "Postprocessor"]
