"""The MRT fuzzing loop (paper §4 and Figure 2).

:class:`TestingPipeline` wires one target together — contract model,
executor against one simulated CPU, relational analyzer, and the two
false-positive filters (priming-swap verification, §5.3; nested-speculation
revalidation, §5.4).

:class:`Fuzzer` drives the pipeline in rounds: generate a test case and a
priming sequence of inputs, collect both trace kinds, analyze, and either
report a confirmed violation or feed pattern coverage into the diversity
analysis that widens the generator configuration (§5.6).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Set, Tuple

from repro.isa.assembler import render_program
from repro.isa.instruction import TestCaseProgram
from repro.analysis.passes import default_pipeline
from repro.analysis.prescreen import (
    PrescreenSoundnessError,
    classify as prescreen_classify,
)
from repro.emulator.battery import BatteryFallback
from repro.emulator.compiled import (
    CompiledProgram,
    compile_program,
    program_digest,
    shared_compiled_cache,
)
from repro.emulator.errors import EmulationError
from repro.emulator.state import InputData, SandboxLayout
from repro.contracts.contract import Contract, get_contract
from repro.executor.executor import Executor, ExecutorConfig
from repro.executor.modes import measurement_mode
from repro.executor.noise import NO_NOISE, NoiseModel
from repro.traces import CTrace, ExecutionLog, HTrace
from repro.uarch.cpu import RunInfo
from repro.core.analyzer import (
    AnalysisResult,
    RelationalAnalyzer,
    ViolationCandidate,
)
from repro.core.config import FuzzerConfig
from repro.core.generator import TestCaseGenerator
from repro.core.input_gen import InputGenerator
from repro.core.patterns import (
    PatternCoverage,
    available_patterns_for_subsets,
    patterns_in_log,
)
from repro.core.trace_cache import (
    ContractTraceCache,
    PersistentTraceCache,
    make_trace_cache,
    program_fingerprint,
)
from repro.core.violation import Violation, classify_speculation_kinds


@dataclass
class TestOutcome:
    """Everything collected for one test case."""

    program: TestCaseProgram
    inputs: Sequence[InputData]
    ctraces: List[CTrace]
    htraces: List[HTrace]
    logs: List[ExecutionLog]
    analysis: AnalysisResult
    #: per-input run infos of the *original* priming sequence, snapshotted
    #: before any re-measurement (the priming-swap check overwrites the
    #: executor's ``last_run_infos`` with swapped-sequence runs)
    run_infos: List[List[RunInfo]] = field(default_factory=list)


class TestingPipeline:
    """One target (CPU x contract x threat model), end to end.

    When ``config.contract_trace_cache`` is set (or a cache instance is
    passed explicitly), contract-trace collection is memoized across
    calls in a :class:`ContractTraceCache`; repeated collections for the
    same (program, input, contract) triple — the nesting revalidation and
    the postprocessor's shrinking loops — skip the model emulation.
    ``contract_emulations`` counts the emulations actually performed.
    """

    def __init__(
        self,
        config: FuzzerConfig,
        noise: NoiseModel = NO_NOISE,
        trace_cache: Optional[ContractTraceCache] = None,
    ):
        self.config = config
        self.arch = config.resolve_arch()
        self.layout = SandboxLayout()
        self.cpu_config = config.resolve_cpu()
        self.contract: Contract = get_contract(
            config.contract_name, speculation_window=config.speculation_window
        )
        if trace_cache is None:
            trace_cache = make_trace_cache(
                config.contract_trace_cache,
                config.trace_cache_dir,
                config.trace_cache_entries,
                config.trace_cache_max_bytes,
                config.trace_cache_compress,
            )
        self.trace_cache = trace_cache
        self.contract_emulations = 0
        self.analyzer = RelationalAnalyzer(config.analyzer_mode)
        self.executor = Executor(
            self.cpu_config,
            measurement_mode(config.executor_mode),
            self.layout,
            ExecutorConfig(
                repetitions=config.executor_repetitions,
                warmup_passes=config.executor_warmups,
                outlier_threshold=config.outlier_threshold,
                noise=noise,
                noise_seed=config.seed,
                compile_programs=config.compile_programs,
            ),
            arch=self.arch,
        )
        self.discarded_by_priming = 0
        self.discarded_by_nesting = 0
        #: the per-object fast path over the digest-keyed shared cache:
        #: id(program) -> (program, CompiledProgram). The stored program
        #: reference both keeps the id from being recycled while the
        #: entry lives and guards against aliasing (an entry only
        #: answers for the *same object*, so a recycled id can never
        #: serve another program's IR); a handful of entries cover the
        #: pipeline's access pattern (the current test case, the swap
        #: check, the postprocessor's current shrink candidate).
        self._compiled: "OrderedDict[int, Tuple[TestCaseProgram, CompiledProgram]]" = (
            OrderedDict()
        )
        self._pass_pipeline = default_pipeline(
            optimize_dead_flags=config.optimize_dead_flags,
            optimize_masked_access=config.optimize_masked_access,
        )

    def compiled_for(
        self, program: TestCaseProgram
    ) -> Optional[CompiledProgram]:
        """The compile-once IR of a test case (``None`` when disabled).

        Each distinct program is lowered (and optimized by the pass
        pipeline) exactly once and the IR is threaded through contract
        emulation, hardware-trace collection, the priming-swap check and
        the nesting revalidation. Lowerings live in the process-global
        :func:`~repro.emulator.compiled.shared_compiled_cache`, keyed by
        content digest plus the pass configuration — so every pipeline
        in the process (campaign shard workers and sweep cells run many
        per worker) reuses one compilation of equal-text programs, and
        a recycled ``id()`` can never alias a stale entry.
        """
        if not self.config.compile_programs:
            return None
        key = id(program)
        entry = self._compiled.get(key)
        if entry is not None and entry[0] is program:
            self._compiled.move_to_end(key)
            return entry[1]
        cache = shared_compiled_cache()
        digest_key = (
            program_digest(program, self.arch.name),
            (
                self.config.optimize_dead_flags,
                self.config.optimize_masked_access,
            ),
        )
        compiled = cache.get(digest_key)
        if compiled is None:
            compiled = self._pass_pipeline.run(
                compile_program(program, self.arch)
            ).program
            cache.put(digest_key, compiled)
        self._compiled[key] = (program, compiled)
        # one measurement batch holds up to round_size distinct programs
        # whose contract halves run after the whole batch measured, so
        # the memo must outlive a full round
        capacity = max(16, self.config.round_size + 1)
        while len(self._compiled) > capacity:
            self._compiled.popitem(last=False)
        return compiled

    # -- trace collection -------------------------------------------------------

    def collect_contract_traces(
        self, program: TestCaseProgram, inputs: Sequence[InputData]
    ) -> Tuple[List[CTrace], List[ExecutionLog]]:
        """Pure trace collection: one ``(CTrace, ExecutionLog)`` per input.

        The program fingerprint is computed once per call (so cache
        lookups cost a hash per input rather than an emulation) and the
        program is compiled once, shared by every input's collection.
        With ``config.battery_eval`` the whole battery runs through the
        group-lockstep engine (:mod:`repro.emulator.battery`) first;
        whenever that engine declines, this falls through to the
        per-input loop, which remains the behavioural referee.
        """
        if self.config.battery_eval and len(inputs) > 1:
            compiled = self.compiled_for(program)
            if compiled is not None:
                collected = self._collect_battery(compiled, program, inputs)
                if collected is not None:
                    return collected
        fingerprint = (
            program_fingerprint(program, self.arch.name)
            if self.trace_cache is not None
            else None
        )
        ctraces: List[CTrace] = []
        logs: List[ExecutionLog] = []
        for input_data in inputs:
            ctrace, log = self._trace_and_log(
                self.contract, program, fingerprint, input_data
            )
            ctraces.append(ctrace)
            logs.append(log)
        return ctraces, logs

    def _collect_battery(
        self,
        compiled: CompiledProgram,
        program: TestCaseProgram,
        inputs: Sequence[InputData],
    ) -> Optional[Tuple[List[CTrace], List[ExecutionLog]]]:
        """Battery-batched collection, or ``None`` to use the per-input
        loop (the engine declined: architectural fault, step budget).

        Counter and cache behaviour is byte-identical to the per-input
        loop. Without a trace cache, every input is one emulation. With
        one, the cache is *peeked* first (no stats, no LRU movement),
        only the missing lanes are battery-emulated, and then the
        per-input ``get``/``put`` protocol replays in input order — so
        hit/miss counters, ``contract_emulations``, LRU order and disk
        publications match the per-input loop exactly (duplicate inputs
        included: the first occurrence misses and publishes, the second
        hits). A lane whose peek hit but whose ``get`` then missed (a
        racing GC evicted the disk entry) is re-emulated individually —
        the same single emulation the per-input loop would perform.
        """
        contract = self.contract
        cache = self.trace_cache
        if cache is None:
            try:
                results = contract.collect_traces_battery(
                    compiled, inputs, self.layout, strict=True
                )
            except BatteryFallback:
                return None
            self.contract_emulations += len(inputs)
            return [t for t, _ in results], [log for _, log in results]
        fingerprint = program_fingerprint(program, self.arch.name)
        keys = [cache.key(fingerprint, x, contract) for x in inputs]
        missing = [
            position
            for position, key in enumerate(keys)
            if not cache.peek(key)
        ]
        computed = {}
        if missing:
            try:
                results = contract.collect_traces_battery(
                    compiled,
                    [inputs[position] for position in missing],
                    self.layout,
                    strict=True,
                )
            except BatteryFallback:
                return None
            computed = dict(zip(missing, results))
        ctraces: List[CTrace] = []
        logs: List[ExecutionLog] = []
        for position, key in enumerate(keys):
            entry = cache.get(key)
            if entry is None:
                entry = computed.get(position)
                if entry is None:
                    entry = contract.collect_trace_and_log(
                        program, inputs[position], self.layout, self.arch,
                        compiled,
                    )
                self.contract_emulations += 1
                cache.put(key, entry)
            ctraces.append(entry[0])
            logs.append(entry[1])
        return ctraces, logs

    def _trace_and_log(
        self,
        contract: Contract,
        program: TestCaseProgram,
        fingerprint: Optional[str],
        input_data: InputData,
    ) -> Tuple[CTrace, ExecutionLog]:
        """One memoized contract-trace collection."""
        if self.trace_cache is None:
            self.contract_emulations += 1
            return contract.collect_trace_and_log(
                program, input_data, self.layout, self.arch,
                self.compiled_for(program),
            )
        if fingerprint is None:
            fingerprint = program_fingerprint(program, self.arch.name)
        key = self.trace_cache.key(fingerprint, input_data, contract)
        entry = self.trace_cache.get(key)
        if entry is None:
            entry = contract.collect_trace_and_log(
                program, input_data, self.layout, self.arch,
                self.compiled_for(program),
            )
            self.contract_emulations += 1
            self.trace_cache.put(key, entry)
        return entry

    def test_program(
        self, program: TestCaseProgram, inputs: Sequence[InputData]
    ) -> TestOutcome:
        """Collect both trace kinds and run the relational analysis."""
        ctraces, logs = self.collect_contract_traces(program, inputs)
        compiled = self.compiled_for(program)
        htraces = self.executor.collect_hardware_traces(
            program if compiled is None else compiled, inputs
        )
        analysis = self.analyzer.analyze(ctraces, htraces)
        run_infos = [list(infos) for infos in self.executor.last_run_infos]
        return TestOutcome(
            program, inputs, ctraces, htraces, logs, analysis, run_infos
        )

    def measure_batch(self, cases):
        """Hardware half of a batched round: one executor batch over
        every case (each case's program compiled once, reused by the
        contract half). Returns ``(htraces, run_infos)`` per case,
        ``None`` traces where the measurement faulted (the sequential
        skip)."""
        lowered = [
            (program, self.compiled_for(program))
            for program, _inputs in cases
        ]
        trace_batches = self.executor.collect_hardware_traces_batched(
            [
                program if compiled is None else compiled
                for program, compiled in lowered
            ],
            [inputs for _program, inputs in cases],
            skip_faulting=True,
        )
        return list(zip(trace_batches, self.executor.last_batch_run_infos))

    def outcome_from_measurement(
        self,
        program: TestCaseProgram,
        inputs: Sequence[InputData],
        htraces: Optional[List[HTrace]],
        run_infos,
    ) -> Optional[TestOutcome]:
        """Contract half of a batched round, per case: collect the
        model traces and analyze against already-measured hardware
        traces. ``None`` when either side faulted — exactly the case
        the sequential loop skips. Deferring this per case is what
        keeps batched campaigns' contract-emulation counts identical to
        sequential ones: a violation stops the round before the
        remaining cases' models are ever emulated."""
        if htraces is None:
            return None
        try:
            ctraces, logs = self.collect_contract_traces(program, inputs)
        except EmulationError:
            return None  # instrumentation gap: the sequential skip
        analysis = self.analyzer.analyze(ctraces, htraces)
        return TestOutcome(
            program, inputs, ctraces, htraces, logs, analysis, run_infos
        )

    def test_programs(
        self, cases: Sequence[Tuple[TestCaseProgram, Sequence[InputData]]]
    ) -> List[Optional[TestOutcome]]:
        """Batched :meth:`test_program`: one entry per case, in order.

        Hardware traces of the whole batch are collected in a single
        executor batch (:meth:`~repro.executor.executor.Executor
        .collect_hardware_traces_batched`), then each case's contract
        traces and analysis follow. A case whose measurement or
        contract emulation faults yields ``None`` — exactly the case
        the sequential loop would skip. Traces and analyses are
        identical to per-case :meth:`test_program` calls.
        """
        return [
            self.outcome_from_measurement(program, inputs, htraces, run_infos)
            for (program, inputs), (htraces, run_infos) in zip(
                cases, self.measure_batch(cases)
            )
        ]

    # -- false-positive filters ----------------------------------------------------

    def confirm_candidate(
        self, outcome: TestOutcome, candidate: ViolationCandidate
    ) -> bool:
        """Apply the priming-swap check and nesting revalidation."""
        if self.config.revalidate_with_nesting:
            nested = self.contract.with_nesting(
                self.config.nesting_depth_for_revalidation
            )
            fingerprint = (
                program_fingerprint(outcome.program, self.arch.name)
                if self.trace_cache is not None
                else None
            )
            trace_a, _ = self._trace_and_log(
                nested,
                outcome.program,
                fingerprint,
                outcome.inputs[candidate.position_a],
            )
            trace_b, _ = self._trace_and_log(
                nested,
                outcome.program,
                fingerprint,
                outcome.inputs[candidate.position_b],
            )
            if trace_a != trace_b:
                # with nesting modelled, the contract separates the inputs:
                # the divergence was permitted leakage after all (§5.4)
                self.discarded_by_nesting += 1
                return False
        if self.config.verify_with_priming:
            confirmed = self.executor.priming_swap_check(
                outcome.program,
                outcome.inputs,
                candidate.position_a,
                candidate.position_b,
                self.analyzer.equivalent,
                compiled=self.compiled_for(outcome.program),
            )
            if not confirmed:
                self.discarded_by_priming += 1
                return False
        return True

    def check_violation(
        self,
        program: TestCaseProgram,
        inputs: Sequence[InputData],
        confirm: bool = False,
    ) -> Optional[ViolationCandidate]:
        """Test one program; return the first (optionally confirmed)
        candidate. Used by the postprocessor's shrinking loops."""
        try:
            outcome = self.test_program(program, inputs)
        except EmulationError:
            return None
        for candidate in outcome.analysis.candidates:
            if not confirm or self.confirm_candidate(outcome, candidate):
                return candidate
        return None

    # -- violation construction ------------------------------------------------------

    def build_violation(
        self, outcome: TestOutcome, candidate: ViolationCandidate
    ) -> Violation:
        kinds = self._speculation_kinds(
            outcome, candidate.position_a
        ) | self._speculation_kinds(outcome, candidate.position_b)
        has_division = any(
            instruction.category == "VAR"
            for instruction in outcome.program.all_instructions()
        )
        classification = classify_speculation_kinds(
            kinds, self.cpu_config, program_has_division=has_division
        )
        return Violation(
            program=outcome.program,
            contract_name=self.contract.name,
            cpu_name=self.cpu_config.name,
            arch_name=self.arch.name,
            ctrace=candidate.ctrace,
            input_sequence=list(outcome.inputs),
            position_a=candidate.position_a,
            position_b=candidate.position_b,
            htrace_a=candidate.htrace_a,
            htrace_b=candidate.htrace_b,
            classification=classification,
            speculation_kinds=kinds,
        )

    def _speculation_kinds(
        self, outcome: TestOutcome, position: int
    ) -> Set[str]:
        """Speculation provenance of one input, from the outcome's own
        run-info snapshot — the executor's ``last_run_infos`` may by now
        describe a priming-swap re-measurement, not this sequence."""
        kinds: Set[str] = set()
        infos = outcome.run_infos
        if position < len(infos):
            for info in infos[position]:
                kinds |= info.speculation_kinds
        return kinds


@dataclass
class FuzzingReport:
    """Result of one fuzzing campaign."""

    violation: Optional[Violation] = None
    test_cases: int = 0
    inputs_tested: int = 0
    duration_seconds: float = 0.0
    rounds: int = 0
    reconfigurations: int = 0
    mean_effectiveness: float = 0.0
    coverage: Optional[PatternCoverage] = None
    discarded_by_priming: int = 0
    discarded_by_nesting: int = 0
    unconfirmed_candidates: int = 0
    #: test cases the static pre-screen classified INERT and skipped
    #: (still counted in ``test_cases``, so campaign positions match a
    #: run without the pre-screen; their inputs are not ``inputs_tested``)
    prescreened_inert: int = 0
    #: INERT-classified cases measured anyway by the safety sampling
    prescreen_safety_checked: int = 0
    #: True when the campaign stopped early on an external stop signal
    #: (first-violation campaign mode) before draining its budget
    cancelled: bool = False
    #: contract-model emulations actually performed (cache misses + all
    #: collections when the trace cache is disabled)
    contract_emulations: int = 0
    #: emulations skipped by the contract-trace cache
    trace_cache_hits: int = 0
    #: subset of the hits served from the persistent on-disk tier, i.e.
    #: traces computed by another process or an earlier run
    trace_cache_disk_hits: int = 0
    #: disk entries evicted by this run's trace-cache GC passes (only
    #: nonzero when ``trace_cache_max_bytes`` bounds the disk tier)
    trace_cache_gc_evictions: int = 0
    #: bytes those GC passes reclaimed
    trace_cache_gc_bytes: int = 0
    #: disk-tier publications/GC passes that failed with an ``OSError``
    #: (ENOSPC, EACCES, ...) and degraded to counted no-persist instead
    #: of failing the run
    trace_cache_disk_write_errors: int = 0

    @property
    def found(self) -> bool:
        return self.violation is not None

    def summary(self) -> str:
        outcome = (
            f"VIOLATION ({self.violation.classification})"
            if self.violation
            else "no violation"
        )
        screened = (
            f", {self.prescreened_inert} pre-screened"
            if self.prescreened_inert
            else ""
        )
        return (
            f"{outcome} after {self.test_cases} test cases / "
            f"{self.inputs_tested} inputs in {self.duration_seconds:.2f}s "
            f"(effectiveness {self.mean_effectiveness:.2f}, "
            f"{self.reconfigurations} reconfigurations{screened})"
        )


class Fuzzer:
    """The MRT campaign driver with diversity-guided generation."""

    def __init__(self, config: FuzzerConfig, noise: NoiseModel = NO_NOISE):
        self.config = config
        self.noise = noise
        self.pipeline = TestingPipeline(config, noise)
        self.arch = self.pipeline.arch
        self.instruction_set = self.arch.instruction_subset(
            config.instruction_subsets
        )
        self.generator = TestCaseGenerator(
            self.instruction_set,
            config.generator,
            self.pipeline.layout,
            seed=config.seed,
            arch=self.arch,
        )
        self.input_generator = InputGenerator(
            seed=config.seed + 1,
            entropy_bits=config.entropy_bits,
            registers=config.generator.register_pool
            or self.arch.default_register_pool,
            layout=self.pipeline.layout,
            flag_bits=self.arch.registers.flag_bits,
        )
        self.coverage = PatternCoverage()
        self._available_patterns = available_patterns_for_subsets(
            config.instruction_subsets
        )
        self._inputs_per_case = config.inputs_per_test_case
        self._feedback_stage = 0  # 0: individuals, 1: pairs, 2: saturated

    def run(self, should_stop=None) -> FuzzingReport:
        """Fuzz until the first confirmed violation or budget exhaustion.

        ``should_stop`` is an optional zero-argument callable polled
        between measurement batches (at most ``round_size`` test cases
        apart; every case when batching is off); when it returns True
        the campaign stops early with ``report.cancelled`` set (the
        campaign runner's first-violation early-cancel signal).

        With ``config.batch_measurements`` (the default) the hardware
        traces of one diversity round's test cases are collected in a
        single executor batch. Generation order, analysis order and the
        round-boundary reconfiguration points are unchanged, so the
        report is identical to the case-by-case loop (the one corner
        that can differ: a case whose *hardware* run faults while its
        contract model would not — the batch skips it before any
        contract emulation, so only the emulation/cache counters move,
        never a finding). Timed campaigns (``timeout_seconds``) and
        noisy executors (an armed :class:`NoiseModel` draws from one
        RNG stream, which measurement reordering would shift) fall back
        to per-case measurement.
        """
        config = self.config
        report = FuzzingReport(coverage=self.coverage)
        start = time.perf_counter()
        effectiveness_sum = 0.0
        measured_cases = 0
        new_coverage_this_round = False
        # Batch only when the round's measurement order cannot matter:
        # an armed noise model draws from one RNG stream, so reordering
        # measurements (the batch measures hardware before the swap
        # checks and contract collections) would change its draws.
        batch_limit = (
            max(1, config.round_size)
            if (
                config.batch_measurements
                and config.timeout_seconds is None
                and self.noise.is_silent
            )
            else 1
        )

        case_index = 0
        inert_seen = 0
        while case_index < config.num_test_cases:
            if should_stop is not None and should_stop():
                report.cancelled = True
                break
            if (
                config.timeout_seconds is not None
                and time.perf_counter() - start > config.timeout_seconds
            ):
                break
            end = min(config.num_test_cases, case_index + batch_limit)
            if batch_limit > 1:
                # a batch never crosses a round boundary: the boundary's
                # reconfiguration changes the generator for later cases
                boundary = (
                    (case_index // config.round_size) + 1
                ) * config.round_size
                end = min(end, boundary)
            cases = [
                (
                    self.generator.generate(),
                    self.input_generator.generate(self._inputs_per_case),
                )
                for _ in range(case_index, end)
            ]
            # static pre-screen (repro.analysis.prescreen): INERT cases
            # are skipped before any emulation; the safety sampling
            # keeps measuring every Nth of them so a pre-screen
            # soundness bug fails loudly instead of losing violations
            screened = [False] * len(cases)
            safety = [False] * len(cases)
            if config.prescreen:
                for offset, (program, _inputs) in enumerate(cases):
                    if self._classify_case(program).active:
                        continue
                    inert_seen += 1
                    if (
                        config.prescreen_safety_rate
                        and inert_seen % config.prescreen_safety_rate == 0
                    ):
                        safety[offset] = True
                        report.prescreen_safety_checked += 1
                    else:
                        screened[offset] = True
                        report.prescreened_inert += 1
            # hardware first, in one batch; contract traces lazily per
            # case below, so a violation mid-round leaves the remaining
            # cases' models unemulated — as in the sequential loop
            measured = self.pipeline.measure_batch(
                [case for case, skip in zip(cases, screened) if not skip]
            )
            measured_iter = iter(measured)

            for offset, (program, inputs) in enumerate(cases):
                index = case_index + offset
                if screened[offset]:
                    # skipped before measurement but still a generated
                    # test case: counting it keeps campaign positions
                    # (test_cases_until_found) identical to a run
                    # without the pre-screen; round bookkeeping also
                    # advances so reconfiguration points match
                    report.test_cases += 1
                    if (
                        config.diversity_feedback
                        and (index + 1) % config.round_size == 0
                    ):
                        report.rounds += 1
                        if self._maybe_reconfigure(new_coverage_this_round):
                            report.reconfigurations += 1
                        new_coverage_this_round = False
                    continue
                htraces, run_infos = next(measured_iter)
                outcome = self.pipeline.outcome_from_measurement(
                    program, inputs, htraces, run_infos
                )
                if outcome is None:
                    # an instrumentation gap let a fault through: skip
                    continue
                report.test_cases += 1
                report.inputs_tested += len(outcome.inputs)
                effectiveness_sum += outcome.analysis.effectiveness
                measured_cases += 1

                candidates = outcome.analysis.candidates[
                    : config.max_candidates_per_test_case
                ]
                for candidate in candidates:
                    if self.pipeline.confirm_candidate(outcome, candidate):
                        if safety[offset]:
                            raise PrescreenSoundnessError(
                                "pre-screen classified a violating test "
                                "case INERT (safety sample at case "
                                f"{index}):\n{render_program(program)}"
                            )
                        violation = self.pipeline.build_violation(
                            outcome, candidate
                        )
                        violation.test_cases_until_found = report.test_cases
                        violation.inputs_until_found = report.inputs_tested
                        violation.seconds_until_found = (
                            time.perf_counter() - start
                        )
                        report.violation = violation
                        break
                    report.unconfirmed_candidates += 1
                if report.violation is not None:
                    break

                # diversity analysis (§5.6)
                if config.diversity_feedback:
                    if self._update_coverage(outcome):
                        new_coverage_this_round = True
                    if (index + 1) % config.round_size == 0:
                        report.rounds += 1
                        if self._maybe_reconfigure(new_coverage_this_round):
                            report.reconfigurations += 1
                        new_coverage_this_round = False
            if report.violation is not None:
                break
            case_index = end

        report.duration_seconds = time.perf_counter() - start
        if measured_cases:
            report.mean_effectiveness = effectiveness_sum / measured_cases
        report.discarded_by_priming = self.pipeline.discarded_by_priming
        report.discarded_by_nesting = self.pipeline.discarded_by_nesting
        report.contract_emulations = self.pipeline.contract_emulations
        cache = self.pipeline.trace_cache
        if cache is not None:
            if (
                isinstance(cache, PersistentTraceCache)
                and cache.max_bytes is not None
                and cache.stats.disk_writes > 0
            ):
                # leave the shared tier within its bound even when this
                # run's own writes never tripped the overflow check; a
                # run that wrote nothing cannot have grown the tier, so
                # it skips the directory scan (sibling writers and the
                # sweep runner's finalizing pass cover their own)
                cache.gc()
            report.trace_cache_hits = cache.stats.hits
            report.trace_cache_disk_hits = cache.stats.disk_hits
            report.trace_cache_gc_evictions = cache.stats.gc_evicted_entries
            report.trace_cache_gc_bytes = cache.stats.gc_evicted_bytes
            report.trace_cache_disk_write_errors = (
                cache.stats.disk_write_errors
            )
        if config.corpus_dir is not None and report.violation is not None:
            # persist the find as a replayable regression test; a local
            # import because repro.corpus builds pipelines from records
            from repro.corpus import CounterexampleCorpus

            CounterexampleCorpus(config.corpus_dir).add_violation(
                report.violation,
                config,
                provenance={
                    "found_by": "fuzz",
                    "test_cases_until_found": report.test_cases,
                    "inputs_until_found": report.inputs_tested,
                },
            )
        return report

    # -- static pre-screen -------------------------------------------------------

    def _classify_case(self, program: TestCaseProgram):
        """Run the static leak pre-screen on one generated test case."""
        compiled = self.pipeline.compiled_for(program)
        if compiled is None:
            # compile_programs is off: lower a throwaway IR just for
            # the analyses (the pipeline keeps interpreting)
            compiled = compile_program(program, self.arch)
        return prescreen_classify(
            compiled, self.pipeline.contract, self.config.executor_mode
        )

    # -- diversity feedback ------------------------------------------------------

    def _update_coverage(self, outcome: TestOutcome) -> bool:
        """Mine patterns from the model's execution logs, per input class."""
        pattern_sets = [patterns_in_log(log) for log in outcome.logs]
        newly_covered = False
        for cls in outcome.analysis.classes:
            members = [pattern_sets[position] for position in cls.positions]
            if self.coverage.update_from_class(members):
                newly_covered = True
        return newly_covered

    def _maybe_reconfigure(self, new_coverage: bool) -> bool:
        """Widen the generator when the coverage target for the current
        stage is met, or when a round brought no new coverage."""
        grow = False
        if self._feedback_stage == 0 and self.coverage.all_individuals_covered(
            self._available_patterns
        ):
            self._feedback_stage = 1
            grow = True
        elif self._feedback_stage == 1 and self.coverage.all_pairs_covered(
            self._available_patterns
        ):
            self._feedback_stage = 2
            grow = True
        elif not new_coverage:
            grow = True
        if grow:
            config = self.config
            grown = self.generator.config.grown()
            capped = replace(
                grown,
                instructions_per_test=min(
                    grown.instructions_per_test, config.max_instructions_per_test
                ),
                basic_blocks=min(grown.basic_blocks, config.max_basic_blocks),
                memory_accesses=min(
                    grown.memory_accesses, config.max_instructions_per_test // 2
                ),
            )
            if (
                capped == self.generator.config
                and self._inputs_per_case >= config.max_inputs_per_test_case
            ):
                return False  # saturated: nothing left to widen
            self.generator.reconfigure(capped)
            self._inputs_per_case = min(
                config.max_inputs_per_test_case,
                max(self._inputs_per_case + 1, int(self._inputs_per_case * 1.5)),
            )
        return grow


def fuzz(config: FuzzerConfig, noise: NoiseModel = NO_NOISE) -> FuzzingReport:
    """Convenience one-call campaign (the library's quickstart entry point)."""
    return Fuzzer(config, noise).run()


__all__ = [
    "Fuzzer",
    "FuzzingReport",
    "TestOutcome",
    "TestingPipeline",
    "fuzz",
]
