"""Cross-call memoization of contract traces.

The MRT loop re-emulates the contract model for the same ``(program,
input)`` pair in several places: the nesting revalidation of candidate
violations (§5.4), repeated :meth:`TestingPipeline.check_violation` calls
during the priming-swap re-measurements, and — most heavily — the
postprocessor's shrinking loops, which re-collect identical contract
traces for every shrink candidate (§5.7 re-checks the violation after
every removed input or instruction, against a mostly-unchanged program
and an unchanged input pool).

Contract emulation is deterministic: ``Contract(Prog, Data) -> CTrace``
is a pure function of the program text, the input assignment and the
contract parameters, so its results can be memoized safely.
:class:`ContractTraceCache` is a bounded LRU map from
``(program fingerprint, input identity, contract key)`` to the
``(CTrace, ExecutionLog)`` pair produced by
:meth:`Contract.collect_trace_and_log`. The contract key
(:attr:`Contract.cache_key`) includes the speculation window *and* the
nesting depth, so the §5.4 revalidation — which runs the same-named
contract with deeper nesting — never collides with the base model.

Knobs (also exposed on :class:`repro.core.config.FuzzerConfig` and the
CLI as ``--cache`` / ``--cache-entries``):

- ``max_entries`` bounds memory; the least recently used entry is
  evicted first. The default of 65536 entries comfortably covers a
  postprocessor run (one program family x a few hundred inputs).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.isa.instruction import TestCaseProgram
from repro.emulator.state import InputData
from repro.contracts.contract import Contract
from repro.traces import CTrace, ExecutionLog

#: (program fingerprint, input seed, input content hash, contract key)
CacheKey = Tuple[str, Optional[int], str, Tuple[str, int, int]]

TraceEntry = Tuple[CTrace, ExecutionLog]


def program_fingerprint(program: TestCaseProgram, arch_name: str = "") -> str:
    """A stable content fingerprint of a test case.

    Two programs with the same block structure and instruction text have
    identical semantics under every contract *within one architecture*,
    so block names plus instruction text are the right identity for
    memoization (clones share it; any mutation — removed instruction,
    inserted fence — changes it). ``arch_name`` namespaces the
    fingerprint so same-text programs of different backends (e.g. a
    NOP-only program) can never collide.
    """
    hasher = hashlib.sha1()
    hasher.update(arch_name.encode("utf-8"))
    for block in program.blocks:
        hasher.update(f"\n.{block.name}:".encode("utf-8"))
        for instruction in block.instructions():
            hasher.update(b"\n")
            hasher.update(str(instruction).encode("utf-8"))
    return hasher.hexdigest()


def input_identity(input_data: InputData) -> Tuple[Optional[int], str]:
    """Identity of one input: its PRNG seed plus a content digest.

    The seed alone is not sufficient — handwritten inputs share
    ``seed=None`` and generator seeds only determine the content for one
    (layout, register pool, entropy) combination — so the content digest
    always participates. A cryptographic digest (like the program side)
    rather than Python's salted 64-bit ``hash()``: a silent collision
    here would hand the analyzer a wrong trace, and sha1 is also stable
    across processes.
    """
    hasher = hashlib.sha1()
    for name, value in sorted(input_data.registers.items()):
        hasher.update(f"{name}={value:#x};".encode("utf-8"))
    hasher.update(b"|")
    for flag, value in sorted(input_data.flags.items()):
        hasher.update(f"{flag}={int(value)};".encode("utf-8"))
    hasher.update(b"|")
    hasher.update(input_data.memory)
    return (input_data.seed, hasher.hexdigest())


@dataclass
class CacheStats:
    """Hit/miss accounting; every hit is one skipped contract emulation."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def __str__(self) -> str:
        return (
            f"{self.hits} hits / {self.lookups} lookups "
            f"({self.hit_rate:.0%}), {self.evictions} evictions"
        )


class ContractTraceCache:
    """A bounded LRU cache of contract-trace collection results."""

    def __init__(self, max_entries: int = 65536):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: "OrderedDict[CacheKey, TraceEntry]" = OrderedDict()

    def key(
        self,
        program_fp: str,
        input_data: InputData,
        contract: Contract,
    ) -> CacheKey:
        """Build the cache key for one (program, input, contract) triple."""
        seed, content = input_identity(input_data)
        return (program_fp, seed, content, contract.cache_key)

    def get(self, key: CacheKey) -> Optional[TraceEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: CacheKey, entry: TraceEntry) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)


__all__ = [
    "CacheKey",
    "CacheStats",
    "ContractTraceCache",
    "input_identity",
    "program_fingerprint",
]
